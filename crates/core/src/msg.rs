//! Protocol messages — the four message types of Figure 4, at page
//! granularity.

use std::fmt;
use std::mem;
use std::sync::Arc;

use bytes::{BufMut, Bytes, BytesMut};
use memcore::{Location, NodeId, OwnerEpoch, PageId, Value, WriteId};
use simnet::codec::{CodecError, Wire};
use simnet::Tagged;
use vclock::VectorClock;

/// One slot of a transferred page: a value and the unique tag of the write
/// that produced it.
///
/// Values ride in messages behind [`Arc`], so moving a page from the
/// owner's memory into a reply (and from a reply into the reader's cache)
/// shares the stored values instead of deep-copying them; the codec
/// ([`Wire`] for `Arc<T>`) encodes through the pointer, so the wire shape
/// is unchanged.
pub type SlotData<V> = (Arc<V>, WriteId);

/// The owner's verdict on a remote write (§4.2 resolution policies).
#[derive(Clone, Debug, PartialEq)]
pub enum WriteVerdict<V> {
    /// The write was installed at the owner.
    Applied,
    /// The write lost to a concurrent write by the owner
    /// ([`WritePolicy::OwnerFavored`](crate::WritePolicy::OwnerFavored));
    /// the surviving value is returned so the writer's cache converges.
    Rejected {
        /// The value that remains installed.
        value: Arc<V>,
        /// The tag of the surviving write.
        wid: WriteId,
    },
}

/// The bit distinguishing a sparse stamp's leading word from a dense
/// clock's length prefix (process counts stay far below 2^31).
const SPARSE_BIT: u32 = 1 << 31;

/// A vector timestamp as it travels in a message, tagged with the wire
/// encoding it uses.
///
/// Dense (`u32` length + one `u64` per component) is Figure 4's historical
/// shape and the default — every existing construction site goes through
/// [`From<VectorClock>`], so configurations without interest scoping stay
/// byte-identical to the paper's protocol. Sparse writes only the nonzero
/// `(node, count)` pairs (see [`vclock::SparseClock`]); under interest
/// scoping a node's clock is nonzero only for the interest closure of the
/// pages it touched, so sparse stamps cost O(share graph) instead of O(n)
/// on the wire.
///
/// The two encodings are distinguished by the high bit of the leading
/// `u32` (`SPARSE_BIT`), carried per stamp, so a decoder reconstructs
/// exactly what was sent and mixed traffic stays unambiguous.
///
/// Equality compares the timestamp only: which encoding a stamp rode in
/// on is a transport detail, not protocol state.
#[derive(Clone, Debug)]
pub struct Stamp {
    vt: VectorClock,
    sparse: bool,
}

impl Stamp {
    /// Wraps `vt` with an explicit encoding choice.
    #[must_use]
    pub fn new(vt: VectorClock, sparse: bool) -> Self {
        Stamp { vt, sparse }
    }

    /// A dense stamp (the Figure-4 wire shape).
    #[must_use]
    pub fn dense(vt: VectorClock) -> Self {
        Stamp { vt, sparse: false }
    }

    /// A sparse stamp (nonzero pairs only).
    #[must_use]
    pub fn sparse(vt: VectorClock) -> Self {
        Stamp { vt, sparse: true }
    }

    /// The timestamp itself.
    #[must_use]
    pub fn clock(&self) -> &VectorClock {
        &self.vt
    }

    /// Unwraps into the timestamp.
    #[must_use]
    pub fn into_inner(self) -> VectorClock {
        self.vt
    }

    /// `true` if this stamp uses (or arrived in) the sparse encoding.
    #[must_use]
    pub fn is_sparse(&self) -> bool {
        self.sparse
    }
}

impl From<VectorClock> for Stamp {
    fn from(vt: VectorClock) -> Self {
        Stamp::dense(vt)
    }
}

impl std::ops::Deref for Stamp {
    type Target = VectorClock;
    fn deref(&self) -> &VectorClock {
        &self.vt
    }
}

impl PartialEq for Stamp {
    fn eq(&self, other: &Self) -> bool {
        self.vt == other.vt
    }
}

impl Eq for Stamp {}

impl PartialEq<VectorClock> for Stamp {
    fn eq(&self, other: &VectorClock) -> bool {
        self.vt == *other
    }
}

impl PartialEq<Stamp> for VectorClock {
    fn eq(&self, other: &Stamp) -> bool {
        *self == other.vt
    }
}

impl fmt::Display for Stamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.vt.fmt(f)
    }
}

impl Wire for Stamp {
    fn encode(&self, buf: &mut BytesMut) {
        if self.sparse {
            ((self.vt.len() as u32) | SPARSE_BIT).encode(buf);
            (self.vt.nonzero_count() as u32).encode(buf);
            for (i, c) in self.vt.nonzero() {
                i.encode(buf);
                c.encode(buf);
            }
        } else {
            self.vt.encode(buf);
        }
    }

    fn decode(buf: &mut Bytes) -> Result<Self, CodecError> {
        let head = u32::decode(buf)?;
        if head & SPARSE_BIT == 0 {
            let len = head as usize;
            let mut components = Vec::with_capacity(len.min(1 << 16));
            for _ in 0..len {
                components.push(u64::decode(buf)?);
            }
            Ok(Stamp {
                vt: VectorClock::from(components),
                sparse: false,
            })
        } else {
            let n = (head & !SPARSE_BIT) as usize;
            let nnz = u32::decode(buf)? as usize;
            let mut entries = Vec::with_capacity(nnz.min(1 << 16));
            for _ in 0..nnz {
                let i = u32::decode(buf)?;
                let c = u64::decode(buf)?;
                if i as usize >= n {
                    // A pair naming a process outside the declared count is
                    // malformed; fail cleanly rather than panic.
                    return Err(CodecError::Truncated);
                }
                entries.push((i, c));
            }
            Ok(Stamp {
                vt: VectorClock::from_sparse_entries(n, entries),
                sparse: true,
            })
        }
    }

    fn encoded_len(&self) -> usize {
        if self.sparse {
            8 + 12 * self.vt.nonzero_count()
        } else {
            self.vt.encoded_len()
        }
    }
}

/// A protocol message of the causal owner protocol.
///
/// `Read`/`ReadReply` and `Write`/`WriteReply` correspond one-to-one to the
/// paper's `[READ, x]`, `[R_REPLY, x, v, VT]`, `[WRITE, x, v, VT]` and
/// `[W_REPLY, x, v, VT]`; replies carry whole pages when the unit of
/// sharing is larger than one location. `Halt` is an engine-internal
/// shutdown sentinel and never appears in message counts attributed to the
/// protocol.
#[derive(Clone, Debug, PartialEq)]
pub enum Msg<V> {
    /// `[READ, x]` — request a current copy of a page from its owner.
    Read {
        /// The page being fetched.
        page: PageId,
    },
    /// `[R_REPLY, x, v, VT]` — the owner's copy of the page and its
    /// writestamp.
    ReadReply {
        /// The page transferred.
        page: PageId,
        /// The page's writestamp `VT'` at the owner.
        vt: Stamp,
        /// Per-location values and write tags.
        slots: Vec<SlotData<V>>,
    },
    /// `[WRITE, x, v, VT]` — ask the owner to certify a write.
    Write {
        /// The location written.
        loc: Location,
        /// The value written (shared, not copied, out of the writer).
        value: Arc<V>,
        /// The unique tag of this write.
        wid: WriteId,
        /// The writer's incremented timestamp (the write's origin stamp).
        vt: Stamp,
    },
    /// `[W_REPLY, x, v, VT]` — the owner's certification (or rejection).
    WriteReply {
        /// The location written.
        loc: Location,
        /// Echo of the certified write's unique tag (lets engines match
        /// replies to outstanding writes, needed for non-blocking writes).
        wid: WriteId,
        /// The owner's merged timestamp after servicing the write.
        vt: Stamp,
        /// Applied or rejected (owner-favored policy).
        verdict: WriteVerdict<V>,
    },
    /// Engine shutdown sentinel (not part of the paper's protocol).
    Halt,
    /// A transport envelope carrying several protocol messages (the
    /// batching enhancement; never sent unless
    /// [`batching`](crate::CausalConfig::batching) is on).
    ///
    /// Semantically transparent: receivers process the parts in order
    /// exactly as if each had arrived in its own envelope, and the logical
    /// per-kind message counters see only the parts
    /// ([`Tagged::batch_parts`]). Only the physical-envelope counters — and
    /// the wire, which pays one envelope header instead of `k` — observe
    /// the batch itself.
    Batch(Vec<Msg<V>>),
    /// Failover envelope around a request or reply: the sender's view of
    /// the page's ownership epoch plus a per-node monotonic op id, used to
    /// validate requests against the current epoch and to discard stale
    /// replies after a retry.
    ///
    /// Only ever sent when the failover layer is enabled, so fault-free
    /// configurations keep Figure 4's wire traffic byte-identical.
    Stamped {
        /// The sender's ownership epoch for the page the inner message
        /// concerns (replies echo the request's epoch).
        epoch: OwnerEpoch,
        /// The sender's op id (replies echo the request's op id).
        op: u64,
        /// The Figure-4 message being stamped.
        inner: Box<Msg<V>>,
    },
    /// A failure-detector liveness probe (overhead, counted under
    /// [`memcore::kinds::HEARTBEAT`]).
    Heartbeat {
        /// Monotonic per-sender heartbeat sequence number.
        seq: u64,
    },
    /// A suspicion broadcast: the sender believes `suspect` has crashed and
    /// has migrated the listed pages to the next epoch. Teaches peers —
    /// including the suspect itself, once it recovers — the new epochs.
    Suspect {
        /// The node believed to have crashed.
        suspect: NodeId,
        /// The pages migrated away from the suspect, with their new epochs.
        epochs: Vec<(PageId, OwnerEpoch)>,
    },
    /// A stale-epoch rejection: the receiver is not the page's owner at the
    /// request's epoch. Carries the receiver's current epoch and the node
    /// serving the page at that epoch, so the requester can re-stamp and
    /// redirect its retry.
    Nack {
        /// The page the rejected request concerned.
        page: PageId,
        /// Echo of the rejected request's op id.
        op: u64,
        /// The receiver's current epoch for the page.
        epoch: OwnerEpoch,
        /// The owner of the page at that epoch.
        redirect: NodeId,
    },
    /// A hot-standby shadow copy: the owner ships the page's certified
    /// state to its deterministic successor after serving a write, so a
    /// promotion always starts from a causally-valid copy.
    Replicate {
        /// The shadowed page.
        page: PageId,
        /// The page's writestamp at the owner.
        vt: Stamp,
        /// Per-location values and write tags.
        slots: Vec<SlotData<V>>,
        /// Per-location origin stamps (the §4.2 concurrency evidence),
        /// parallel to `slots`.
        origins: Vec<VectorClock>,
    },
    /// An interest drop: the sender evicted its cached copy of `page`, so
    /// the owner may remove it from the page's interest set and stop
    /// shipping invalidations/replications there. Registration needs no
    /// message — owners learn interest from the first `READ`/`WRITE` they
    /// serve — so only the drop is wire traffic. Only ever sent when
    /// [`interest_scoping`](crate::CausalConfig::interest_scoping) is on,
    /// keeping default configurations byte-identical to Figure 4.
    Interest {
        /// The page the sender no longer caches.
        page: PageId,
    },
}

impl<V> Msg<V> {
    /// `true` for the request kinds serviced by owners. A stamped message
    /// classifies as its inner message does.
    pub fn is_request(&self) -> bool {
        match self {
            Msg::Read { .. } | Msg::Write { .. } => true,
            Msg::Stamped { inner, .. } => inner.is_request(),
            _ => false,
        }
    }

    /// `true` for the reply kinds consumed by a blocked operation. A
    /// stamped message classifies as its inner message does.
    pub fn is_reply(&self) -> bool {
        match self {
            Msg::ReadReply { .. } | Msg::WriteReply { .. } => true,
            Msg::Stamped { inner, .. } => inner.is_reply(),
            _ => false,
        }
    }
}

impl<V: Value> Tagged for Msg<V> {
    fn kind(&self) -> &'static str {
        match self {
            Msg::Read { .. } => "READ",
            Msg::ReadReply { .. } => "R_REPLY",
            Msg::Write { .. } => "WRITE",
            Msg::WriteReply { .. } => "W_REPLY",
            Msg::Halt => "HALT",
            Msg::Batch(_) => memcore::kinds::BATCH,
            // The stamp is an envelope: counting the inner kind keeps the
            // §4.1 protocol counts comparable with failover on.
            Msg::Stamped { inner, .. } => inner.kind(),
            Msg::Heartbeat { .. } => memcore::kinds::HEARTBEAT,
            Msg::Suspect { .. } => memcore::kinds::SUSPECT,
            Msg::Nack { .. } => memcore::kinds::NACK,
            Msg::Replicate { .. } => memcore::kinds::REPL,
            Msg::Interest { .. } => memcore::kinds::INTEREST,
        }
    }

    /// Approximate wire size: exact for headers, timestamps and tags;
    /// values are approximated by `size_of::<V>()` (a codec-exact size is
    /// available via [`Wire`] for encodable `V`).
    fn wire_size(&self) -> Option<usize> {
        let value_size = mem::size_of::<V>();
        Some(match self {
            Msg::Read { .. } => 1 + 4,
            Msg::ReadReply { vt, slots, .. } => {
                1 + 4 + vt.encoded_len() + 4 + slots.len() * (value_size + 12)
            }
            Msg::Write { vt, .. } => 1 + 4 + value_size + 12 + vt.encoded_len(),
            Msg::WriteReply { vt, verdict, .. } => {
                let verdict_size = match verdict {
                    WriteVerdict::Applied => 1,
                    WriteVerdict::Rejected { .. } => 1 + value_size + 12,
                };
                1 + 4 + 12 + vt.encoded_len() + verdict_size
            }
            Msg::Halt => 1,
            Msg::Batch(parts) => {
                1 + 4
                    + parts
                        .iter()
                        .map(|p| p.wire_size().unwrap_or(0))
                        .sum::<usize>()
            }
            Msg::Stamped { inner, .. } => 1 + 4 + 8 + inner.wire_size().unwrap_or(0),
            Msg::Heartbeat { .. } => 1 + 8,
            Msg::Suspect { epochs, .. } => 1 + 4 + 4 + epochs.len() * 8,
            Msg::Nack { .. } => 1 + 4 + 8 + 4 + 4,
            Msg::Replicate {
                vt, slots, origins, ..
            } => {
                1 + 4
                    + vt.encoded_len()
                    + 4
                    + slots.len() * (value_size + 12)
                    + 4
                    + origins.iter().map(VectorClock::encoded_len).sum::<usize>()
            }
            Msg::Interest { .. } => 1 + 4,
        })
    }

    /// Exact causal-metadata bytes: the wire size of every timestamp the
    /// message carries (honoring each stamp's dense/sparse encoding),
    /// recursively through batches and failover envelopes. This is the
    /// quantity the scale benches divide by operations.
    fn metadata_size(&self) -> usize {
        match self {
            Msg::ReadReply { vt, .. } | Msg::Write { vt, .. } | Msg::WriteReply { vt, .. } => {
                vt.encoded_len()
            }
            // Origin stamps are failover-only shadow state and always ride
            // dense; they are metadata all the same.
            Msg::Replicate { vt, origins, .. } => {
                vt.encoded_len() + origins.iter().map(VectorClock::encoded_len).sum::<usize>()
            }
            Msg::Batch(parts) => parts.iter().map(Tagged::metadata_size).sum(),
            Msg::Stamped { inner, .. } => inner.metadata_size(),
            _ => 0,
        }
    }

    fn batch_parts(&self) -> Option<Vec<(&'static str, Option<usize>)>> {
        match self {
            Msg::Batch(parts) => Some(parts.iter().map(|p| (p.kind(), p.wire_size())).collect()),
            _ => None,
        }
    }
}

impl<V: Wire> Wire for WriteVerdict<V> {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            WriteVerdict::Applied => buf.put_u8(0),
            WriteVerdict::Rejected { value, wid } => {
                buf.put_u8(1);
                value.encode(buf);
                wid.encode(buf);
            }
        }
    }

    fn encoded_len(&self) -> usize {
        match self {
            WriteVerdict::Applied => 1,
            WriteVerdict::Rejected { value, wid } => 1 + value.encoded_len() + wid.encoded_len(),
        }
    }

    fn decode(buf: &mut Bytes) -> Result<Self, CodecError> {
        match u8::decode(buf)? {
            0 => Ok(WriteVerdict::Applied),
            1 => Ok(WriteVerdict::Rejected {
                value: Arc::new(V::decode(buf)?),
                wid: WriteId::decode(buf)?,
            }),
            d => Err(CodecError::BadDiscriminant(d)),
        }
    }
}

impl<V: Wire> Wire for Msg<V> {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            Msg::Read { page } => {
                buf.put_u8(0);
                page.encode(buf);
            }
            Msg::ReadReply { page, vt, slots } => {
                buf.put_u8(1);
                page.encode(buf);
                vt.encode(buf);
                (slots.len() as u32).encode(buf);
                for (value, wid) in slots {
                    value.encode(buf);
                    wid.encode(buf);
                }
            }
            Msg::Write {
                loc,
                value,
                wid,
                vt,
            } => {
                buf.put_u8(2);
                loc.encode(buf);
                value.encode(buf);
                wid.encode(buf);
                vt.encode(buf);
            }
            Msg::WriteReply {
                loc,
                wid,
                vt,
                verdict,
            } => {
                buf.put_u8(3);
                loc.encode(buf);
                wid.encode(buf);
                vt.encode(buf);
                verdict.encode(buf);
            }
            Msg::Halt => buf.put_u8(4),
            Msg::Batch(parts) => {
                buf.put_u8(5);
                parts.encode(buf);
            }
            Msg::Stamped { epoch, op, inner } => {
                buf.put_u8(6);
                epoch.encode(buf);
                op.encode(buf);
                inner.as_ref().encode(buf);
            }
            Msg::Heartbeat { seq } => {
                buf.put_u8(7);
                seq.encode(buf);
            }
            Msg::Suspect { suspect, epochs } => {
                buf.put_u8(8);
                suspect.encode(buf);
                epochs.encode(buf);
            }
            Msg::Nack {
                page,
                op,
                epoch,
                redirect,
            } => {
                buf.put_u8(9);
                page.encode(buf);
                op.encode(buf);
                epoch.encode(buf);
                redirect.encode(buf);
            }
            Msg::Replicate {
                page,
                vt,
                slots,
                origins,
            } => {
                buf.put_u8(10);
                page.encode(buf);
                vt.encode(buf);
                (slots.len() as u32).encode(buf);
                for (value, wid) in slots {
                    value.encode(buf);
                    wid.encode(buf);
                }
                origins.encode(buf);
            }
            Msg::Interest { page } => {
                buf.put_u8(11);
                page.encode(buf);
            }
        }
    }

    fn decode(buf: &mut Bytes) -> Result<Self, CodecError> {
        match u8::decode(buf)? {
            0 => Ok(Msg::Read {
                page: PageId::decode(buf)?,
            }),
            1 => {
                let page = PageId::decode(buf)?;
                let vt = Stamp::decode(buf)?;
                let len = u32::decode(buf)? as usize;
                let mut slots = Vec::with_capacity(len.min(1 << 16));
                for _ in 0..len {
                    slots.push((Arc::new(V::decode(buf)?), WriteId::decode(buf)?));
                }
                Ok(Msg::ReadReply { page, vt, slots })
            }
            2 => Ok(Msg::Write {
                loc: Location::decode(buf)?,
                value: Arc::new(V::decode(buf)?),
                wid: WriteId::decode(buf)?,
                vt: Stamp::decode(buf)?,
            }),
            3 => Ok(Msg::WriteReply {
                loc: Location::decode(buf)?,
                wid: WriteId::decode(buf)?,
                vt: Stamp::decode(buf)?,
                verdict: WriteVerdict::decode(buf)?,
            }),
            4 => Ok(Msg::Halt),
            5 => Ok(Msg::Batch(Vec::decode(buf)?)),
            6 => Ok(Msg::Stamped {
                epoch: OwnerEpoch::decode(buf)?,
                op: u64::decode(buf)?,
                inner: Box::new(Msg::decode(buf)?),
            }),
            7 => Ok(Msg::Heartbeat {
                seq: u64::decode(buf)?,
            }),
            8 => Ok(Msg::Suspect {
                suspect: NodeId::decode(buf)?,
                epochs: Vec::decode(buf)?,
            }),
            9 => Ok(Msg::Nack {
                page: PageId::decode(buf)?,
                op: u64::decode(buf)?,
                epoch: OwnerEpoch::decode(buf)?,
                redirect: NodeId::decode(buf)?,
            }),
            10 => {
                let page = PageId::decode(buf)?;
                let vt = Stamp::decode(buf)?;
                let len = u32::decode(buf)? as usize;
                let mut slots = Vec::with_capacity(len.min(1 << 16));
                for _ in 0..len {
                    slots.push((Arc::new(V::decode(buf)?), WriteId::decode(buf)?));
                }
                Ok(Msg::Replicate {
                    page,
                    vt,
                    slots,
                    origins: Vec::decode(buf)?,
                })
            }
            11 => Ok(Msg::Interest {
                page: PageId::decode(buf)?,
            }),
            d => Err(CodecError::BadDiscriminant(d)),
        }
    }

    fn encoded_len(&self) -> usize {
        match self {
            Msg::Read { page } => 1 + page.encoded_len(),
            Msg::ReadReply { page, vt, slots } => {
                1 + page.encoded_len()
                    + vt.encoded_len()
                    + 4
                    + slots
                        .iter()
                        .map(|(value, wid)| value.encoded_len() + wid.encoded_len())
                        .sum::<usize>()
            }
            Msg::Write {
                loc,
                value,
                wid,
                vt,
            } => loc.encoded_len() + value.encoded_len() + wid.encoded_len() + vt.encoded_len() + 1,
            Msg::WriteReply {
                loc,
                wid,
                vt,
                verdict,
            } => {
                1 + loc.encoded_len() + wid.encoded_len() + vt.encoded_len() + verdict.encoded_len()
            }
            Msg::Halt => 1,
            Msg::Batch(parts) => 1 + parts.encoded_len(),
            Msg::Stamped { epoch, op, inner } => {
                1 + epoch.encoded_len() + op.encoded_len() + inner.encoded_len()
            }
            Msg::Heartbeat { seq } => 1 + seq.encoded_len(),
            Msg::Suspect { suspect, epochs } => 1 + suspect.encoded_len() + epochs.encoded_len(),
            Msg::Nack {
                page,
                op,
                epoch,
                redirect,
            } => {
                1 + page.encoded_len()
                    + op.encoded_len()
                    + epoch.encoded_len()
                    + redirect.encoded_len()
            }
            Msg::Replicate {
                page,
                vt,
                slots,
                origins,
            } => {
                1 + page.encoded_len()
                    + vt.encoded_len()
                    + 4
                    + slots
                        .iter()
                        .map(|(value, wid)| value.encoded_len() + wid.encoded_len())
                        .sum::<usize>()
                    + origins.encoded_len()
            }
            Msg::Interest { page } => 1 + page.encoded_len(),
        }
    }
}

impl<V: fmt::Display> fmt::Display for Msg<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Msg::Read { page } => write!(f, "[READ, {page}]"),
            Msg::ReadReply { page, vt, .. } => write!(f, "[R_REPLY, {page}, {vt}]"),
            Msg::Write { loc, value, vt, .. } => write!(f, "[WRITE, {loc}, {value}, {vt}]"),
            Msg::WriteReply { loc, vt, .. } => write!(f, "[W_REPLY, {loc}, {vt}]"),
            Msg::Halt => write!(f, "[HALT]"),
            Msg::Batch(parts) => {
                write!(f, "[BATCH")?;
                for part in parts {
                    write!(f, ", {part}")?;
                }
                write!(f, "]")
            }
            Msg::Stamped { epoch, op, inner } => write!(f, "[{epoch}#{op} {inner}]"),
            Msg::Heartbeat { seq } => write!(f, "[HEARTBEAT, {seq}]"),
            Msg::Suspect { suspect, epochs } => {
                write!(f, "[SUSPECT, {suspect}, {} pages]", epochs.len())
            }
            Msg::Nack {
                page,
                epoch,
                redirect,
                ..
            } => write!(f, "[NACK, {page}, {epoch} → {redirect}]"),
            Msg::Replicate { page, vt, .. } => write!(f, "[REPL, {page}, {vt}]"),
            Msg::Interest { page } => write!(f, "[INTEREST, {page}]"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memcore::{NodeId, Word};

    fn vt(components: [u64; 2]) -> Stamp {
        Stamp::from(VectorClock::from(components))
    }

    fn sparse_vt(components: &[u64]) -> Stamp {
        Stamp::sparse(VectorClock::from(components.to_vec()))
    }

    #[test]
    fn kinds_match_paper_names() {
        let read: Msg<Word> = Msg::Read {
            page: PageId::new(0),
        };
        assert_eq!(read.kind(), "READ");
        assert!(read.is_request());
        assert!(!read.is_reply());

        let reply: Msg<Word> = Msg::ReadReply {
            page: PageId::new(0),
            vt: vt([0, 0]),
            slots: vec![],
        };
        assert_eq!(reply.kind(), "R_REPLY");
        assert!(reply.is_reply());

        let write: Msg<Word> = Msg::Write {
            loc: Location::new(0),
            value: Arc::new(Word::Int(1)),
            wid: WriteId::new(NodeId::new(0), 0),
            vt: vt([1, 0]),
        };
        assert_eq!(write.kind(), "WRITE");

        let wreply: Msg<Word> = Msg::WriteReply {
            loc: Location::new(0),
            wid: WriteId::new(NodeId::new(0), 0),
            vt: vt([1, 0]),
            verdict: WriteVerdict::Applied,
        };
        assert_eq!(wreply.kind(), "W_REPLY");
        assert_eq!(Msg::<Word>::Halt.kind(), "HALT");
    }

    #[test]
    fn wire_sizes_grow_with_clock_length() {
        let small: Msg<Word> = Msg::Write {
            loc: Location::new(0),
            value: Arc::new(Word::Int(1)),
            wid: WriteId::new(NodeId::new(0), 0),
            vt: VectorClock::new(2).into(),
        };
        let large: Msg<Word> = Msg::Write {
            loc: Location::new(0),
            value: Arc::new(Word::Int(1)),
            wid: WriteId::new(NodeId::new(0), 0),
            vt: VectorClock::new(16).into(),
        };
        assert!(large.wire_size().unwrap() > small.wire_size().unwrap());
    }

    fn fixture_messages() -> Vec<Msg<Word>> {
        vec![
            Msg::Read {
                page: PageId::new(3),
            },
            Msg::ReadReply {
                page: PageId::new(3),
                vt: vt([4, 2]),
                slots: vec![
                    (Arc::new(Word::Int(7)), WriteId::new(NodeId::new(1), 2)),
                    (Arc::new(Word::Zero), WriteId::initial(Location::new(7))),
                ],
            },
            Msg::Write {
                loc: Location::new(6),
                value: Arc::new(Word::Bool(true)),
                wid: WriteId::new(NodeId::new(0), 9),
                vt: vt([5, 0]),
            },
            Msg::WriteReply {
                loc: Location::new(6),
                wid: WriteId::new(NodeId::new(0), 9),
                vt: vt([5, 3]),
                verdict: WriteVerdict::Applied,
            },
            Msg::WriteReply {
                loc: Location::new(6),
                wid: WriteId::new(NodeId::new(0), 10),
                vt: vt([5, 3]),
                verdict: WriteVerdict::Rejected {
                    value: Arc::new(Word::Int(1)),
                    wid: WriteId::new(NodeId::new(1), 1),
                },
            },
            Msg::Halt,
            Msg::Stamped {
                epoch: memcore::OwnerEpoch::new(2),
                op: 41,
                inner: Box::new(Msg::Read {
                    page: PageId::new(3),
                }),
            },
            Msg::Heartbeat { seq: 17 },
            Msg::Suspect {
                suspect: NodeId::new(1),
                epochs: vec![(PageId::new(1), memcore::OwnerEpoch::new(1))],
            },
            Msg::Nack {
                page: PageId::new(3),
                op: 41,
                epoch: memcore::OwnerEpoch::new(3),
                redirect: NodeId::new(0),
            },
            Msg::Replicate {
                page: PageId::new(3),
                vt: vt([4, 2]),
                slots: vec![(Arc::new(Word::Int(7)), WriteId::new(NodeId::new(1), 2))],
                origins: vec![vt([4, 0]).into_inner()],
            },
            Msg::Interest {
                page: PageId::new(5),
            },
            // Sparse stamps: a mostly-zero clock and an all-zero clock.
            Msg::ReadReply {
                page: PageId::new(9),
                vt: sparse_vt(&[0, 0, 3, 0, 0, 0, 1, 0]),
                slots: vec![(Arc::new(Word::Int(2)), WriteId::new(NodeId::new(2), 1))],
            },
            Msg::WriteReply {
                loc: Location::new(1),
                wid: WriteId::new(NodeId::new(2), 5),
                vt: sparse_vt(&[0, 0, 0, 0]),
                verdict: WriteVerdict::Applied,
            },
            Msg::Batch(vec![
                Msg::Write {
                    loc: Location::new(6),
                    value: Arc::new(Word::Int(3)),
                    wid: WriteId::new(NodeId::new(0), 11),
                    vt: vt([6, 0]),
                },
                Msg::Write {
                    loc: Location::new(8),
                    value: Arc::new(Word::Float(1.5)),
                    wid: WriteId::new(NodeId::new(0), 12),
                    vt: vt([7, 0]),
                },
            ]),
            Msg::Batch(vec![]),
        ]
    }

    #[test]
    fn messages_round_trip_through_codec() {
        for msg in fixture_messages() {
            let mut buf = BytesMut::new();
            msg.encode(&mut buf);
            let mut bytes = buf.freeze();
            assert_eq!(Msg::<Word>::decode(&mut bytes).unwrap(), msg);
            assert!(bytes.is_empty());
        }
    }

    #[test]
    fn encoded_len_is_exact_for_every_fixture_message() {
        // `encoded_len` has exact (non-measuring) implementations for every
        // protocol message shape; they must agree with the encoder
        // byte-for-byte.
        for msg in fixture_messages() {
            let mut buf = BytesMut::new();
            msg.encode(&mut buf);
            assert_eq!(
                msg.encoded_len(),
                buf.len(),
                "encoded_len disagrees with encode for {msg}"
            );
        }
    }

    #[test]
    fn batch_exposes_parts_to_the_counters() {
        let batch: Msg<Word> = Msg::Batch(vec![
            Msg::Read {
                page: PageId::new(1),
            },
            Msg::Write {
                loc: Location::new(0),
                value: Arc::new(Word::Int(1)),
                wid: WriteId::new(NodeId::new(0), 1),
                vt: vt([1, 0]),
            },
        ]);
        assert_eq!(batch.kind(), "BATCH");
        assert!(!batch.is_request());
        assert!(!batch.is_reply());
        let parts = batch.batch_parts().unwrap();
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].0, "READ");
        assert_eq!(parts[1].0, "WRITE");
        // Ordinary messages report no parts.
        assert_eq!(
            Msg::<Word>::Read {
                page: PageId::new(0)
            }
            .batch_parts(),
            None
        );
    }

    #[test]
    fn display_matches_paper_notation() {
        let msg: Msg<Word> = Msg::Read {
            page: PageId::new(1),
        };
        assert_eq!(msg.to_string(), "[READ, pg1]");
        let msg: Msg<Word> = Msg::Write {
            loc: Location::new(2),
            value: Arc::new(Word::Int(5)),
            wid: WriteId::new(NodeId::new(0), 0),
            vt: vt([1, 0]),
        };
        assert_eq!(msg.to_string(), "[WRITE, x2, 5, [1,0]]");
    }

    #[test]
    fn decode_rejects_unknown_discriminant() {
        let mut bytes = Bytes::from_static(&[42]);
        assert_eq!(
            Msg::<Word>::decode(&mut bytes),
            Err(CodecError::BadDiscriminant(42))
        );
    }

    #[test]
    fn failover_kinds_split_as_overhead_but_stamps_stay_protocol() {
        let hb: Msg<Word> = Msg::Heartbeat { seq: 0 };
        assert_eq!(hb.kind(), memcore::kinds::HEARTBEAT);
        let nack: Msg<Word> = Msg::Nack {
            page: PageId::new(0),
            op: 0,
            epoch: memcore::OwnerEpoch::ZERO,
            redirect: NodeId::new(0),
        };
        assert_eq!(nack.kind(), memcore::kinds::NACK);
        for kind in [
            hb.kind(),
            nack.kind(),
            memcore::kinds::SUSPECT,
            memcore::kinds::REPL,
        ] {
            assert!(memcore::kinds::is_overhead(kind), "{kind}");
        }
        // A stamped READ still counts as a READ: the failover envelope must
        // not perturb the §4.1 protocol accounting.
        let stamped: Msg<Word> = Msg::Stamped {
            epoch: memcore::OwnerEpoch::new(1),
            op: 9,
            inner: Box::new(Msg::Read {
                page: PageId::new(2),
            }),
        };
        assert_eq!(stamped.kind(), "READ");
        assert!(stamped.is_request());
        assert!(!memcore::kinds::is_overhead(stamped.kind()));
    }

    #[test]
    fn dense_stamp_is_byte_identical_to_raw_clock() {
        // The Figure-4 byte-identity guarantee: a dense stamp encodes
        // exactly as the bare `VectorClock` always did, so wrapping every
        // timestamp in `Stamp` changed no wire bytes in default configs.
        let clock = VectorClock::from(vec![3, 0, 7, 0, 0, 1]);
        let mut raw = BytesMut::new();
        clock.encode(&mut raw);
        let mut stamped = BytesMut::new();
        Stamp::dense(clock.clone()).encode(&mut stamped);
        assert_eq!(raw, stamped);
        assert_eq!(Stamp::dense(clock.clone()).encoded_len(), clock.encoded_len());
        let decoded = Stamp::decode(&mut stamped.freeze()).unwrap();
        assert!(!decoded.is_sparse());
        assert_eq!(decoded.clock(), &clock);
    }

    #[test]
    fn sparse_stamp_shrinks_with_sparsity_and_round_trips() {
        // A 128-component clock with 3 nonzero entries: dense pays
        // 4 + 128*8 bytes, sparse pays 8 + 3*12.
        let mut components = vec![0u64; 128];
        components[5] = 2;
        components[77] = 1;
        components[127] = 9;
        let clock = VectorClock::from(components);
        let sparse = Stamp::sparse(clock.clone());
        assert_eq!(sparse.encoded_len(), 8 + 3 * 12);
        assert_eq!(Stamp::dense(clock.clone()).encoded_len(), 4 + 128 * 8);
        let mut buf = BytesMut::new();
        sparse.encode(&mut buf);
        assert_eq!(buf.len(), sparse.encoded_len());
        let decoded = Stamp::decode(&mut buf.freeze()).unwrap();
        assert!(decoded.is_sparse());
        assert_eq!(decoded.clock(), &clock);
    }

    #[test]
    fn sparse_stamp_rejects_out_of_range_pair() {
        let mut buf = BytesMut::new();
        (4u32 | (1u32 << 31)).encode(&mut buf); // n = 4, sparse
        1u32.encode(&mut buf); // one pair
        9u32.encode(&mut buf); // index 9 >= n
        5u64.encode(&mut buf);
        assert!(Stamp::decode(&mut buf.freeze()).is_err());
    }

    #[test]
    fn metadata_size_counts_exactly_the_timestamp_bytes() {
        let write: Msg<Word> = Msg::Write {
            loc: Location::new(6),
            value: Arc::new(Word::Int(3)),
            wid: WriteId::new(NodeId::new(0), 11),
            vt: vt([6, 0]),
        };
        assert_eq!(write.metadata_size(), 4 + 2 * 8);
        // A sparse stamp reports its sparse cost.
        let reply: Msg<Word> = Msg::ReadReply {
            page: PageId::new(9),
            vt: sparse_vt(&[0, 0, 3, 0, 0, 0, 1, 0]),
            slots: vec![],
        };
        assert_eq!(reply.metadata_size(), 8 + 2 * 12);
        // Envelopes aggregate recursively; plain requests carry none.
        let stamped: Msg<Word> = Msg::Stamped {
            epoch: memcore::OwnerEpoch::new(1),
            op: 1,
            inner: Box::new(write.clone()),
        };
        assert_eq!(stamped.metadata_size(), write.metadata_size());
        let batch: Msg<Word> = Msg::Batch(vec![write.clone(), reply.clone()]);
        assert_eq!(
            batch.metadata_size(),
            write.metadata_size() + reply.metadata_size()
        );
        assert_eq!(
            Msg::<Word>::Read {
                page: PageId::new(0)
            }
            .metadata_size(),
            0
        );
        assert_eq!(
            Msg::<Word>::Interest {
                page: PageId::new(0)
            }
            .metadata_size(),
            0
        );
    }

    #[test]
    fn interest_is_overhead_and_displays_its_page() {
        let msg: Msg<Word> = Msg::Interest {
            page: PageId::new(5),
        };
        assert_eq!(msg.kind(), memcore::kinds::INTEREST);
        assert!(memcore::kinds::is_overhead(msg.kind()));
        assert!(!msg.is_request() && !msg.is_reply());
        assert_eq!(msg.to_string(), "[INTEREST, pg5]");
    }
}
