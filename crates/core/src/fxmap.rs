//! A fast hash map for the engine's internal page tables.
//!
//! The protocol state machine looks a page up in `M_i` on *every*
//! operation — it is the hottest hash in the system — and the keys are
//! small trusted integers ([`memcore::PageId`]), so `std`'s default
//! SipHash buys flood resistance nobody can exploit while costing a
//! multiple of the lookup's total latency. This is the classic FxHash
//! mix (the rustc compiler's hasher): one rotate-xor-multiply per word.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// A [`HashMap`] keyed with [`FxHasher`]; drop-in for internal tables
/// whose keys are small trusted values.
pub(crate) type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// 64-bit FxHash: `hash = (rotl5(hash) ^ word) * K` per input word,
/// with `K` derived from the golden ratio.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct FxHasher {
    hash: u64,
}

const K: u64 = 0x517c_c1b7_2722_0a95;

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_keys_hash_distinctly() {
        // Not a cryptographic claim — just that the mix actually mixes
        // for the small sequential integers PageId produces.
        let hash = |v: u32| {
            let mut h = FxHasher::default();
            h.write_u32(v);
            h.finish()
        };
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u32 {
            assert!(seen.insert(hash(i)), "collision at {i}");
        }
    }

    #[test]
    fn fast_map_behaves_like_hash_map() {
        let mut m: FastMap<u32, &str> = FastMap::default();
        m.insert(1, "one");
        m.insert(2, "two");
        assert_eq!(m.get(&1), Some(&"one"));
        assert_eq!(m.remove(&2), Some("two"));
        assert!(!m.contains_key(&2));
    }
}
