//! The ICDCS'91 simple owner protocol for **causal distributed shared
//! memory** (Hutto, Ahamad, John — "Implementing and Programming Causal
//! Distributed Shared Memory", Figure 4).
//!
//! Causal memory requires reads to return values *live* under the
//! potential-causality order of reads and writes; unlike atomic or
//! sequentially consistent memory it does not totally order writes, so it
//! can be implemented with **no global synchronization**: every operation
//! involves at most one round-trip to a single processor (the location's
//! owner), and several processors may write concurrently without
//! coordinating.
//!
//! The protocol in one paragraph: the namespace is partitioned among
//! processors (*owners*); every processor keeps its owned locations plus a
//! cache of others. Each processor carries a vector timestamp; every write
//! increments it, and every value carries the writestamp it was produced
//! under. Read misses and non-owned writes do a round-trip to the owner;
//! whenever a new value is introduced into local memory, every cached value
//! with a strictly older writestamp is invalidated — that single rule is
//! what makes all reads causally safe.
//!
//! # Crate layout
//!
//! * [`CausalState`] — the protocol as a pure state machine (no I/O), so
//!   the same code runs under the threaded engine and the deterministic
//!   simulator (`dsm-sim`).
//! * [`CausalCluster`] / [`CausalHandle`] — the threaded engine;
//!   handles implement [`memcore::SharedMemory`].
//! * [`CausalConfig`] — page size, invalidation mode, concurrent-write
//!   policy (§4.2 owner-favored), cache capacity, constant segments.
//! * [`Msg`] — the four protocol messages of Figure 4.
//!
//! # Examples
//!
//! ```
//! use causal_dsm::CausalCluster;
//! use memcore::{Location, SharedMemory, Word};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let cluster = CausalCluster::<Word>::builder(3, 9).build()?;
//! let p0 = cluster.handle(0);
//! let p2 = cluster.handle(2);
//!
//! // P0 owns x0 (round-robin): this write is purely local.
//! p0.write(Location::new(0), Word::Int(1))?;
//! // P2 read-misses, fetches from P0 and caches.
//! assert_eq!(p2.read(Location::new(0))?, Word::Int(1));
//! // Exactly one READ + one R_REPLY crossed the network.
//! assert_eq!(cluster.messages().snapshot().total(), 2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod engine;
mod failover;
mod fxmap;
mod msg;
mod state;

pub use config::{
    CausalConfig, CausalConfigBuilder, FailoverConfig, InvalidationMode, WritePolicy,
};
pub use engine::{
    CausalCluster, CausalClusterBuilder, CausalHandle, ClusterSnapshot, InlineServer,
};
pub use dsm_durable::{
    DirDisk, Disk, DurableConfig, MemDisk, Recovered, Store, SyncPolicy, WalRecord,
};
pub use failover::owner_at;
pub use msg::{Msg, SlotData, Stamp, WriteVerdict};
pub use state::{CausalState, ReadStep, WriteDone, WriteStep};
