//! Owner failover: liveness tracking, per-page ownership epochs, and
//! hot-standby shadow pages.
//!
//! The paper assumes "a reliable network" and owners that always answer;
//! this module makes that assumption *derived* instead of axiomatic. Each
//! page carries an [`OwnerEpoch`]: the node serving the page at epoch `e`
//! is a pure function of the static assignment,
//!
//! ```text
//! owner(page, e) = (static_owner(page) + e) mod nodes
//! ```
//!
//! so migrating a page is nothing more than agreeing (eventually, via
//! gossip on `SUSPECT` messages and NACK redirects) on a larger epoch —
//! there is no owner *table* to replicate, only a per-page counter to
//! max-merge. The successor of the owner at epoch `e` is by definition the
//! owner at epoch `e + 1`; owners ship every certified write to their
//! successor as a `REPL` shadow, so when suspicion promotes the successor
//! it already holds a causally consistent, certified copy of the page
//! (see `docs/FAULTS.md` §4 for why this preserves Definition 2).
//!
//! All of this is inert unless a [`FailoverConfig`] is attached to the
//! [`CausalConfig`](crate::CausalConfig): with failover disabled no epoch
//! is ever non-zero, no heartbeat, shadow, or stamp is ever produced, and
//! the wire traffic is byte-identical to Figure 4.

use std::sync::Arc;

use memcore::{NodeId, OwnerEpoch, OwnerMap, PageId, WriteId};
use vclock::VectorClock;

use crate::config::FailoverConfig;
use crate::fxmap::FastMap;

/// The node serving `page` at `epoch` — delegated to the owner map's
/// succession rule. Round-robin maps keep the historical
/// `(static_owner + e) mod n` rotation; a
/// [`memcore::HashRingOwners`] walks the `e`-th distinct node clockwise
/// from the page's ring position. Epoch 0 is always the static
/// assignment, so everything below this line is unchanged by the choice
/// of map.
#[must_use]
pub fn owner_at(owners: &dyn OwnerMap, page: PageId, epoch: OwnerEpoch) -> NodeId {
    owners.owner_at_epoch(page, epoch.get())
}

/// A hot-standby copy of a page, shipped by the owner after each certified
/// write. Stored outside the cache so invalidation sweeps and capacity
/// eviction never touch it; consumed on promotion.
#[derive(Clone, Debug)]
pub(crate) struct ShadowPage<V> {
    pub vt: VectorClock,
    pub slots: Vec<(Arc<V>, WriteId)>,
    pub origins: Vec<VectorClock>,
}

/// Per-node failover bookkeeping, embedded in
/// [`CausalState`](crate::CausalState) when failover is configured.
#[derive(Clone, Debug)]
pub(crate) struct FailoverState<V> {
    pub config: FailoverConfig,
    /// Per-page ownership epochs; absent means [`OwnerEpoch::ZERO`].
    pub epochs: FastMap<PageId, OwnerEpoch>,
    /// Shadow copies this node holds as some page's successor.
    pub shadows: FastMap<PageId, ShadowPage<V>>,
    /// Owned pages written since the last replication drain.
    pub pending_repl: Vec<PageId>,
    /// Last time (transport clock) each peer was heard from.
    pub last_heard: Vec<u64>,
    /// Peers currently believed crashed.
    pub suspected: Vec<bool>,
    /// Sequence number of the next outgoing heartbeat.
    pub heartbeat_seq: u64,
    /// Monotone id stamped onto each remote operation attempt, so late
    /// replies to abandoned attempts are recognizably stale.
    pub next_op: u64,
}

impl<V> FailoverState<V> {
    pub fn new(config: FailoverConfig, nodes: usize) -> Self {
        FailoverState {
            config,
            epochs: FastMap::default(),
            shadows: FastMap::default(),
            pending_repl: Vec::new(),
            last_heard: vec![0; nodes],
            suspected: vec![false; nodes],
            heartbeat_seq: 0,
            next_op: 0,
        }
    }

    pub fn epoch_of(&self, page: PageId) -> OwnerEpoch {
        self.epochs.get(&page).copied().unwrap_or(OwnerEpoch::ZERO)
    }

    /// Records that `peer` was heard from at `now`; a suspected peer that
    /// speaks again is unsuspected (it is back — as a cache-only node for
    /// any page that migrated away in the meantime).
    pub fn record_alive(&mut self, peer: NodeId, now: u64) {
        let i = peer.index();
        if let Some(t) = self.last_heard.get_mut(i) {
            *t = (*t).max(now);
            self.suspected[i] = false;
        }
    }

    /// Peers (other than `me`) whose silence now exceeds
    /// `heartbeat_interval × suspicion_threshold`; marks them suspected and
    /// returns only the *newly* suspected ones.
    ///
    /// `monitored` restricts the probe-driven detector to the peers that
    /// actually probe this node (its ring predecessors under a scoped
    /// heartbeat fanout) — judging anyone else by probe silence would
    /// suspect live nodes that were simply never asked to speak. `None`
    /// judges every peer (all-pairs probing).
    pub fn check_suspicions(
        &mut self,
        me: NodeId,
        now: u64,
        monitored: Option<&[NodeId]>,
    ) -> Vec<NodeId> {
        let limit = self
            .config
            .heartbeat_interval
            .saturating_mul(u64::from(self.config.suspicion_threshold));
        let mut newly = Vec::new();
        for i in 0..self.last_heard.len() {
            if i == me.index() || self.suspected[i] {
                continue;
            }
            if monitored.is_some_and(|set| !set.contains(&NodeId::new(i as u32))) {
                continue;
            }
            if now.saturating_sub(self.last_heard[i]) > limit {
                self.suspected[i] = true;
                newly.push(NodeId::new(i as u32));
            }
        }
        newly
    }

    pub fn is_suspected(&self, node: NodeId) -> bool {
        self.suspected.get(node.index()).copied().unwrap_or(false)
    }

    /// Queues `page` for replication to its successor (deduplicated).
    pub fn mark_dirty(&mut self, page: PageId) {
        if !self.pending_repl.contains(&page) {
            self.pending_repl.push(page);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memcore::RoundRobinOwners;

    #[test]
    fn owner_rotates_with_epoch_and_epoch_zero_is_static() {
        let owners = RoundRobinOwners::new(3, 1);
        let page = PageId::new(1);
        let static_owner = owners.owner_of_page(page);
        assert_eq!(owner_at(&owners, page, OwnerEpoch::ZERO), static_owner);
        assert_eq!(owner_at(&owners, page, OwnerEpoch::new(1)), NodeId::new(2));
        assert_eq!(owner_at(&owners, page, OwnerEpoch::new(2)), NodeId::new(0));
        // Full cycle returns to the static owner.
        assert_eq!(owner_at(&owners, page, OwnerEpoch::new(3)), static_owner);
    }

    #[test]
    fn suspicion_fires_after_threshold_and_clears_on_contact() {
        let mut fo: FailoverState<memcore::Word> = FailoverState::new(FailoverConfig::default(), 3);
        let me = NodeId::new(0);
        // interval 25 × threshold 4 = 100: silence of exactly 100 is fine.
        assert!(fo.check_suspicions(me, 100, None).is_empty());
        let newly = fo.check_suspicions(me, 101, None);
        assert_eq!(newly, vec![NodeId::new(1), NodeId::new(2)]);
        // Already suspected: not reported again.
        assert!(fo.check_suspicions(me, 500, None).is_empty());
        assert!(fo.is_suspected(NodeId::new(1)));
        // Hearing from it clears the suspicion.
        fo.record_alive(NodeId::new(1), 600);
        assert!(!fo.is_suspected(NodeId::new(1)));
        assert!(fo.is_suspected(NodeId::new(2)));
    }

    #[test]
    fn scoped_monitoring_only_suspects_the_monitored_set() {
        let mut fo: FailoverState<memcore::Word> = FailoverState::new(FailoverConfig::default(), 4);
        let me = NodeId::new(0);
        let monitored = [NodeId::new(2)];
        let newly = fo.check_suspicions(me, 101, Some(&monitored));
        assert_eq!(newly, vec![NodeId::new(2)]);
        assert!(
            !fo.is_suspected(NodeId::new(1)),
            "peers outside the monitored set must not be probe-suspected"
        );
    }

    #[test]
    fn dirty_pages_are_deduplicated() {
        let mut fo: FailoverState<memcore::Word> = FailoverState::new(FailoverConfig::default(), 2);
        fo.mark_dirty(PageId::new(3));
        fo.mark_dirty(PageId::new(1));
        fo.mark_dirty(PageId::new(3));
        assert_eq!(fo.pending_repl, vec![PageId::new(3), PageId::new(1)]);
    }
}
