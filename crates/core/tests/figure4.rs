//! Line-by-line conformance against Figure 4's pseudocode: every vector
//! timestamp the protocol produces is asserted exactly, step by step,
//! for each of the five procedures.

use causal_dsm::{CausalConfig, CausalState, Msg, ReadStep, WriteStep};
use memcore::{Location, NodeId, Word};
use vclock::VectorClock;

fn p(i: u32) -> NodeId {
    NodeId::new(i)
}

fn loc(i: u32) -> Location {
    Location::new(i)
}

fn vt(c: [u64; 2]) -> VectorClock {
    VectorClock::from(c)
}

/// Round-robin, 2 nodes, 4 locations: P0 owns x0/x2, P1 owns x1/x3.
fn pair() -> (CausalState<Word>, CausalState<Word>) {
    let config = CausalConfig::<Word>::builder(2, 4).build();
    (
        CausalState::new(p(0), config.clone()),
        CausalState::new(p(1), config),
    )
}

#[test]
fn w_i_increments_before_anything_else() {
    // "VT_i := increment(VT_i)" happens on every write attempt, local or
    // remote, before any message is sent.
    let (mut p0, _) = pair();
    assert_eq!(p0.vt(), &vt([0, 0]));
    p0.begin_write(loc(0), Word::Int(1)); // local
    assert_eq!(p0.vt(), &vt([1, 0]));
    let step = p0.begin_write(loc(1), Word::Int(2)); // remote
    assert_eq!(p0.vt(), &vt([2, 0]));
    let WriteStep::Remote { request, .. } = step else {
        panic!("x1 is owned by P1");
    };
    // The WRITE message carries the freshly incremented stamp.
    let Msg::Write { vt: sent, .. } = &request else {
        panic!("expected WRITE");
    };
    assert_eq!(sent, &vt([2, 0]));
}

#[test]
fn write_service_merges_installs_and_replies_with_merged_stamp() {
    // Owner side of [WRITE, x, v, VT]:
    //   VT_i := update(VT_i, VT); M_i[x] := (v, VT_i); sweep; reply VT_i.
    let (mut p0, mut p1) = pair();
    p1.begin_write(loc(1), Word::Int(9)); // P1 local: VT1 = [0,1]
    let WriteStep::Remote { request, wid, .. } = p1.begin_write(loc(0), Word::Int(5)) else {
        panic!("remote write expected");
    };
    assert_eq!(p1.vt(), &vt([0, 2]));

    let reply = p0.serve(p(1), request).expect("reply");
    // Owner merged the incoming [0,2]: VT0 = [0,2].
    assert_eq!(p0.vt(), &vt([0, 2]));
    assert_eq!(p0.peek(loc(0)).unwrap().0, &Word::Int(5));
    let Msg::WriteReply { vt: replied, .. } = &reply else {
        panic!("expected W_REPLY");
    };
    assert_eq!(replied, &vt([0, 2]));

    // Writer side: VT_i := update(VT_i, VT'); M_i[x] := (v, VT_i).
    let done = p1.finish_write(std::sync::Arc::new(Word::Int(5)), wid, reply);
    assert!(done.is_applied());
    assert_eq!(p1.vt(), &vt([0, 2]));
    assert_eq!(p1.peek(loc(0)).unwrap().0, &Word::Int(5));
}

#[test]
fn owner_write_after_service_reflects_three_updates() {
    // The paper: "each non local write involves an increment and two
    // updates of the associated writestamp." Exercise a chain where both
    // sides have private history so the merges are visible.
    let (mut p0, mut p1) = pair();
    p0.begin_write(loc(0), Word::Int(1)); // VT0 = [1,0]
    p0.begin_write(loc(0), Word::Int(2)); // VT0 = [2,0]
    p1.begin_write(loc(1), Word::Int(3)); // VT1 = [0,1]

    let WriteStep::Remote { request, wid, .. } = p1.begin_write(loc(2), Word::Int(4)) else {
        panic!();
    };
    // increment: VT1 = [0,2], sent with the message.
    assert_eq!(p1.vt(), &vt([0, 2]));
    let reply = p0.serve(p(1), request).unwrap();
    // owner's update: VT0 = max([2,0],[0,2]) = [2,2].
    assert_eq!(p0.vt(), &vt([2, 2]));
    // writer's second update from the reply: VT1 = [2,2].
    p1.finish_write(std::sync::Arc::new(Word::Int(4)), wid, reply);
    assert_eq!(p1.vt(), &vt([2, 2]));
}

#[test]
fn read_service_does_not_touch_the_owners_clock() {
    // [READ, x] has no timestamp; serving it must not change VT_owner.
    let (mut p0, mut p1) = pair();
    p0.begin_write(loc(0), Word::Int(7)); // VT0 = [1,0]
    let ReadStep::Miss { request, .. } = p1.begin_read(loc(0)) else {
        panic!();
    };
    assert_eq!(p0.vt(), &vt([1, 0]));
    let reply = p0.serve(p(1), request).unwrap();
    assert_eq!(p0.vt(), &vt([1, 0]), "READ service must not merge anything");
    // R_REPLY carries the *page's* writestamp, not the owner's clock.
    let Msg::ReadReply { vt: sent, .. } = &reply else {
        panic!();
    };
    assert_eq!(sent, &vt([1, 0]));
    // Reader: VT_i := update(VT_i, VT'); M_i[x] := (v', VT').
    let (v, _) = p1.finish_read(loc(0), reply);
    assert_eq!(*v, Word::Int(7));
    assert_eq!(p1.vt(), &vt([1, 0]));
}

#[test]
fn r_reply_stores_the_sent_stamp_not_the_merged_clock() {
    // Figure 4 stores M_i[x] := (v', VT') — the stamp as sent. Distinguish
    // by giving the reader a bigger clock than the page stamp: the cached
    // page must keep the smaller (sent) stamp, visible through the sweep
    // behaviour of a later introduction.
    let (mut p0, mut p1) = pair();
    // P1 builds private history: VT1 = [0,3].
    for v in 1..=3 {
        p1.begin_write(loc(1), Word::Int(v));
    }
    p0.begin_write(loc(0), Word::Int(1)); // page x0 stamp [1,0]
    let ReadStep::Miss { request, .. } = p1.begin_read(loc(0)) else {
        panic!();
    };
    let reply = p0.serve(p(1), request).unwrap();
    let _ = p1.finish_read(loc(0), reply);
    assert_eq!(p1.vt(), &vt([1, 3]), "reader clock merges the stamp");

    // Now P0 writes x2 twice and P1 fetches it: stamp [3,0]. The sweep
    // threshold [3,0] does NOT dominate the reader's clock [1,3], but it
    // DOES dominate the cached x0 stamp [1,0] — x0 must be invalidated,
    // proving the cache kept [1,0], not [1,3].
    p0.begin_write(loc(2), Word::Int(8)); // VT0 = [2,0]
    p0.begin_write(loc(2), Word::Int(9)); // VT0 = [3,0]
    let ReadStep::Miss { request, .. } = p1.begin_read(loc(2)) else {
        panic!();
    };
    let reply = p0.serve(p(1), request).unwrap();
    let _ = p1.finish_read(loc(2), reply);
    assert!(
        !p1.has_valid_copy(loc(0)),
        "cached x0 kept the sent stamp [1,0] and was swept by [3,0]"
    );
}

#[test]
fn sweep_uses_strict_dominance_only() {
    // ∀y ∈ C_i : M_i[y].VT < VT' — equal or concurrent stamps survive.
    let (mut p0, mut p1) = pair();
    p0.begin_write(loc(0), Word::Int(1)); // stamp [1,0]
    let ReadStep::Miss { request, .. } = p1.begin_read(loc(0)) else {
        panic!();
    };
    let reply = p0.serve(p(1), request).unwrap();
    let _ = p1.finish_read(loc(0), reply); // cache x0 @ [1,0]

    // Fetch x2 whose stamp is concurrent-with-nothing... make it exactly
    // [1,0]'s sibling: P0 writes nothing more, x2's page stamp is [0,0],
    // which does not dominate — and is dominated by nothing. Cached x0
    // must survive.
    let ReadStep::Miss { request, .. } = p1.begin_read(loc(2)) else {
        panic!();
    };
    let reply = p0.serve(p(1), request).unwrap();
    let _ = p1.finish_read(loc(2), reply);
    assert!(p1.has_valid_copy(loc(0)), "nothing dominated [1,0]");
}

#[test]
fn discard_only_touches_the_cache() {
    // discard :: M_i[y] := ⊥ : ∃y ∈ C_i — owned pages are not in C_i.
    let (mut p0, mut p1) = pair();
    p0.begin_write(loc(0), Word::Int(1));
    let ReadStep::Miss { request, .. } = p1.begin_read(loc(0)) else {
        panic!();
    };
    let reply = p0.serve(p(1), request).unwrap();
    let _ = p1.finish_read(loc(0), reply);
    assert_eq!(p1.cached_pages(), 1);
    assert_eq!(p1.discard_any(), Some(loc(0).page(1)));
    assert_eq!(p1.cached_pages(), 0);
    assert_eq!(p1.discard_any(), None, "C_i empty: nothing to discard");
    // The owner's copy is untouchable.
    assert!(p0.has_valid_copy(loc(0)));
    assert!(!p0.discard(loc(0)));
}

#[test]
fn local_read_has_no_side_effects() {
    // r_i(x) with M_i[x] ≠ ⊥ is a pure lookup: no clock movement, no
    // sweeps, no messages.
    let (mut p0, _) = pair();
    p0.begin_write(loc(0), Word::Int(1));
    let before = p0.vt().clone();
    for _ in 0..5 {
        let ReadStep::Hit { value, .. } = p0.begin_read(loc(0)) else {
            panic!("owned reads always hit");
        };
        assert_eq!(*value, Word::Int(1));
    }
    assert_eq!(p0.vt(), &before);
}
