//! Owner-failover integration tests: epoch-stamped migration at the
//! protocol-state level, and recoverable timeouts / stale-reply
//! discipline in the threaded engine.
//!
//! State-level tests drive [`CausalState`] directly — suspicion,
//! successor promotion, NACK redirects, shadow replication, and the
//! recovered ex-owner rejoining as a cache — so each protocol transition
//! is visible without scheduler noise. Engine-level tests then check the
//! same machinery end to end through [`CausalCluster`] with a fault hook
//! on the thread transport. (Deep pipelined writes across a migration
//! are exercised by the owner-crash chaos suite in `dsm-faults`, which
//! sweeps `pipeline_window ∈ {0, 32}`.)

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use causal_dsm::{
    owner_at, CausalCluster, CausalConfig, CausalState, DurableConfig, FailoverConfig, Msg,
    ReadStep, WriteDone, WriteStep,
};
use memcore::{kinds, Location, MemoryError, NodeId, OwnerEpoch, PageId, SharedMemory, Word};
use simnet::{FaultHook, SendFate};

fn loc(i: u32) -> Location {
    Location::new(i)
}

fn n(i: u32) -> NodeId {
    NodeId::new(i)
}

/// Three single-location pages per node, failover on, page 0 owned by
/// node 0 with node 1 as its successor.
fn trio() -> Vec<CausalState<Word>> {
    let config = CausalConfig::<Word>::builder(3, 6)
        .failover(FailoverConfig::default())
        .build();
    (0..3)
        .map(|i| CausalState::new(n(i), config.clone()))
        .collect()
}

#[test]
fn suspicion_migrates_ownership_to_the_successor() {
    let mut s = trio();
    let page = PageId::new(0);
    assert_eq!(s[1].current_owner(page), n(0));

    // Node 2 loses patience with node 0: every page node 0 serves
    // migrates to its successor, epoch bumped.
    let epochs = s[2].suspect(n(0));
    assert!(epochs.contains(&(page, OwnerEpoch::new(1))));
    assert_eq!(s[2].current_owner(page), n(1));
    assert!(s[2].is_suspected(n(0)));

    // The broadcast reaches node 1, which finds itself the successor and
    // promotes: it now *owns* the page.
    s[1].absorb_suspect(n(0), &epochs);
    assert_eq!(s[1].current_owner(page), n(1));
    assert!(s[1].owns(loc(0)));

    // A correctly-stamped read is served (not NACKed) by the new owner.
    let op = s[2].next_op_id();
    let epoch = s[2].epoch_of(page);
    let reply = s[1]
        .serve_stamped(n(2), epoch, op, Msg::Read { page })
        .expect("owner must answer");
    match reply {
        Msg::Stamped {
            epoch: e,
            op: o,
            inner,
        } => {
            assert_eq!((e, o), (epoch, op));
            assert!(matches!(*inner, Msg::ReadReply { .. }));
        }
        other => panic!("expected stamped reply, got {other:?}"),
    }
}

#[test]
fn stale_epoch_requests_are_nacked_with_redirect() {
    let mut s = trio();
    let page = PageId::new(0);
    let epochs = s[2].suspect(n(0));
    s[1].absorb_suspect(n(0), &epochs);

    // A third party that never heard the SUSPECT still stamps epoch 0.
    // The new owner must refuse and point at itself — serving would fork
    // the page's history across epochs.
    let stale = OwnerEpoch::ZERO;
    let op = 7;
    let reply = s[1].serve_stamped(n(2), stale, op, Msg::Read { page });
    match reply {
        Some(Msg::Nack {
            page: p,
            op: o,
            epoch,
            redirect,
        }) => {
            assert_eq!((p, o), (page, op));
            assert_eq!(epoch, OwnerEpoch::new(1));
            assert_eq!(redirect, n(1));
        }
        other => panic!("expected NACK, got {other:?}"),
    }
}

#[test]
fn dueling_epochs_resolve_by_max_merge() {
    // The requester is *ahead*: it suspected node 0 on its own, while
    // the successor has heard nothing. The stamped request itself
    // carries the news — the successor max-merges the epoch, finds
    // itself the owner, and serves instead of NACKing.
    let mut s = trio();
    let page = PageId::new(0);
    let _ = s[2].suspect(n(0));
    assert_eq!(s[1].current_owner(page), n(0)); // successor still behind

    let op = s[2].next_op_id();
    let epoch = s[2].epoch_of(page);
    assert_eq!(epoch, OwnerEpoch::new(1));
    let reply = s[1].serve_stamped(n(2), epoch, op, Msg::Read { page });
    assert!(
        matches!(reply, Some(Msg::Stamped { .. })),
        "the request's epoch should have promoted the successor: {reply:?}"
    );
    assert!(s[1].owns(loc(0)));
}

#[test]
fn blocking_write_in_flight_survives_migration() {
    let mut s = trio();
    let page = PageId::new(0);

    // Node 2 starts a write while node 0 still owns the page...
    let value = Arc::new(Word::Int(42));
    let step = s[2].begin_write_shared(loc(0), Arc::clone(&value));
    let (wid, request) = match step {
        WriteStep::Remote {
            owner,
            wid,
            request,
        } => {
            assert_eq!(owner, n(0));
            (wid, request)
        }
        WriteStep::Done { .. } => panic!("remote page wrote locally"),
    };

    // ...the owner dies before answering; the writer itself suspects it
    // (the engine's timeout path) and the successor absorbs the news.
    let epochs = s[2].suspect(n(0));
    s[1].absorb_suspect(n(0), &epochs);

    // The resent request, re-stamped at the new epoch, lands on the new
    // owner and certifies the very same write id.
    let op = s[2].next_op_id();
    let epoch = s[2].epoch_of(page);
    let reply = s[1]
        .serve_stamped(n(2), epoch, op, request)
        .expect("new owner must certify");
    let inner = match reply {
        Msg::Stamped { inner, .. } => *inner,
        other => panic!("expected stamped write reply, got {other:?}"),
    };
    let done = s[2].finish_write(value, wid, inner);
    assert_eq!(done, WriteDone::Applied { wid });

    // Both sides now read the migrated write.
    assert_eq!(*s[1].read_hit(loc(0)).unwrap().0, Word::Int(42));
    assert_eq!(*s[2].read_hit(loc(0)).unwrap().0, Word::Int(42));
}

#[test]
fn nonblocking_write_in_flight_survives_migration() {
    // Same race through the pipelined/non-blocking absorb path.
    let mut s = trio();
    let page = PageId::new(0);
    let step = s[2].begin_write_nonblocking(loc(0), Word::Int(9));
    let (wid, request) = match step {
        WriteStep::Remote { wid, request, .. } => (wid, request),
        WriteStep::Done { .. } => panic!("remote page wrote locally"),
    };
    let epochs = s[2].suspect(n(0));
    s[1].absorb_suspect(n(0), &epochs);
    let op = s[2].next_op_id();
    let epoch = s[2].epoch_of(page);
    let inner = match s[1].serve_stamped(n(2), epoch, op, request) {
        Some(Msg::Stamped { inner, .. }) => *inner,
        other => panic!("expected stamped write reply, got {other:?}"),
    };
    assert_eq!(s[2].absorb_write_reply(inner), WriteDone::Applied { wid });
    assert_eq!(*s[2].read_hit(loc(0)).unwrap().0, Word::Int(9));
}

#[test]
fn shadow_replication_preserves_certified_writes_across_the_crash() {
    let mut s = trio();
    let page = PageId::new(0);

    // A certified write at the owner is shadowed to the successor.
    let value = Arc::new(Word::Int(1234));
    let step = s[2].begin_write_shared(loc(0), Arc::clone(&value));
    let (wid, request) = match step {
        WriteStep::Remote { wid, request, .. } => (wid, request),
        WriteStep::Done { .. } => panic!("remote page wrote locally"),
    };
    let reply = s[0].serve(n(2), request).expect("owner certifies");
    assert_eq!(
        s[2].finish_write(value, wid, reply),
        WriteDone::Applied { wid }
    );
    let repl = s[0].take_replications();
    assert_eq!(repl.len(), 1);
    let (dst, msg) = repl.into_iter().next().unwrap();
    assert_eq!(dst, n(1), "the shadow goes to the successor");
    match msg {
        Msg::Replicate {
            page: p,
            vt,
            slots,
            origins,
        } => {
            assert_eq!(p, page);
            s[1].apply_replicate(p, vt.into_inner(), slots, origins);
        }
        other => panic!("expected REPL, got {other:?}"),
    }

    // Owner dies; the successor promotes and must serve the *certified*
    // value from its shadow — Definition 2 survives the crash because
    // the shadow carries the owner's writestamp and per-slot origins.
    let epochs = s[2].suspect(n(0));
    s[1].absorb_suspect(n(0), &epochs);
    let op = s[2].next_op_id();
    let epoch = s[2].epoch_of(page);
    let inner = match s[1].serve_stamped(n(2), epoch, op, Msg::Read { page }) {
        Some(Msg::Stamped { inner, .. }) => *inner,
        other => panic!("expected stamped read reply, got {other:?}"),
    };
    match &inner {
        Msg::ReadReply { slots, .. } => {
            assert!(
                slots
                    .iter()
                    .any(|(v, w)| **v == Word::Int(1234) && *w == wid),
                "promoted owner lost the certified write: {slots:?}"
            );
        }
        other => panic!("expected read reply, got {other:?}"),
    }
}

#[test]
fn recovered_ex_owner_serves_cache_only() {
    let mut s = trio();
    let page = PageId::new(0);

    // The ex-owner wrote locally before crashing, so it holds the page.
    let step = s[0].begin_write(loc(0), Word::Int(5));
    assert!(matches!(step, WriteStep::Done { .. }));

    // It recovers and is re-educated by the retransmitted SUSPECT that
    // named it: its former page migrated while it was dark.
    let epochs = s[2].suspect(n(0));
    s[0].absorb_suspect(n(0), &epochs);
    assert!(!s[0].owns(loc(0)));
    assert_eq!(s[0].current_owner(page), n(1));

    // Local reads still hit its (causally valid) cached copy...
    assert_eq!(*s[0].read_hit(loc(0)).unwrap().0, Word::Int(5));
    match s[0].begin_read(loc(0)) {
        ReadStep::Hit { value, .. } => assert_eq!(*value, Word::Int(5)),
        ReadStep::Miss { .. } => panic!("cached copy should satisfy reads"),
    }

    // ...but it refuses to *serve* the page, redirecting to the new
    // owner even for requests stamped with its old epoch.
    let reply = s[0].serve_stamped(n(2), OwnerEpoch::ZERO, 3, Msg::Read { page });
    match reply {
        Some(Msg::Nack {
            redirect, epoch, ..
        }) => {
            assert_eq!(redirect, n(1));
            assert_eq!(epoch, OwnerEpoch::new(1));
        }
        other => panic!("expected NACK from ex-owner, got {other:?}"),
    }
}

#[test]
fn durably_recovered_ex_owner_reconciles_via_nack_without_double_serving() {
    // Recovery × failover: the ex-owner restarts *from disk* while its
    // epoch already migrated. Its WAL faithfully says "I own page 0 at
    // epoch 0", so the recovered life boots still believing it — the
    // migration happened while it was dark and the log can't know. The
    // first request stamped at the new epoch must re-educate it through
    // the ordinary max-merge + NACK/redirect path; at no point may it
    // certify under the superseded epoch again (double-serving would
    // fork the page's history across epochs).
    let config = CausalConfig::<Word>::builder(3, 6)
        .failover(FailoverConfig::default())
        .durability(DurableConfig::default())
        .build();
    let mut s: Vec<CausalState<Word>> =
        (0..3).map(|i| CausalState::new(n(i), config.clone())).collect();
    let page = PageId::new(0);

    // Node 0 certifies a local write; its journal — boot watermark plus
    // the write — is exactly what a WAL-backed engine would have synced
    // before acknowledging.
    assert!(matches!(
        s[0].begin_write(loc(0), Word::Int(41)),
        WriteStep::Done { .. }
    ));
    let log = s[0].take_journal();

    // It crashes. The survivors migrate the page to the successor, and
    // the new owner certifies a write of its own at epoch 1.
    let epochs = s[2].suspect(n(0));
    s[1].absorb_suspect(n(0), &epochs);
    let step = s[2].begin_write_shared(loc(0), Arc::new(Word::Int(42)));
    let (wid, request) = match step {
        WriteStep::Remote { wid, request, .. } => (wid, request),
        WriteStep::Done { .. } => panic!("remote page wrote locally"),
    };
    let op = s[2].next_op_id();
    let epoch = s[2].epoch_of(page);
    let inner = match s[1].serve_stamped(n(2), epoch, op, request) {
        Some(Msg::Stamped { inner, .. }) => *inner,
        other => panic!("expected stamped write reply, got {other:?}"),
    };
    assert_eq!(
        s[2].finish_write(Arc::new(Word::Int(42)), wid, inner),
        WriteDone::Applied { wid }
    );

    // The ex-owner replays its log and rejoins at a bumped incarnation.
    // Nothing in the log mentions the migration: it recovers its
    // certified state and (wrongly, but unavoidably) its ownership.
    let mut back = CausalState::recover(n(0), config.clone(), log, 1);
    assert_eq!(back.incarnation(), 1);
    assert!(back.owns(loc(0)));
    assert_eq!(*back.read_hit(loc(0)).unwrap().0, Word::Int(41));

    // A current client's request carries epoch 1. The recovered node
    // max-merges, discovers the page rotated away from it, and NACKs
    // with a redirect to the live owner — it must NOT serve its stale
    // epoch-0 image as if it were still authoritative.
    let op = s[2].next_op_id();
    let reply = back.serve_stamped(n(2), s[2].epoch_of(page), op, Msg::Read { page });
    match reply {
        Some(Msg::Nack {
            redirect, epoch, ..
        }) => {
            assert_eq!(redirect, n(1));
            assert_eq!(epoch, OwnerEpoch::new(1));
        }
        other => panic!("expected NACK from recovered ex-owner, got {other:?}"),
    }
    assert!(!back.owns(loc(0)), "the NACK must also re-educate the server");

    // Once educated, even a straggler still stamping the old epoch is
    // refused: certification authority never returns to the old life.
    // (The request body is epoch-agnostic; the stamp carries the claim.)
    let step = s[2].begin_write_shared(loc(0), Arc::new(Word::Int(43)));
    let stale_write = match step {
        WriteStep::Remote { request, .. } => request,
        WriteStep::Done { .. } => panic!("remote page wrote locally"),
    };
    let reply = back.serve_stamped(n(2), OwnerEpoch::ZERO, 99, stale_write);
    assert!(
        matches!(reply, Some(Msg::Nack { .. })),
        "ex-owner certified a write under a superseded epoch: {reply:?}"
    );

    // Its cached copy is still causally valid for *local* reads — the
    // same cache-only service the non-durable recovery test pins.
    assert_eq!(*back.read_hit(loc(0)).unwrap().0, Word::Int(41));
}

#[test]
fn owner_at_rotates_through_epochs() {
    let config = CausalConfig::<Word>::builder(3, 6).build();
    let owners = config.owners().as_ref();
    let page = PageId::new(1); // statically node 1's
    assert_eq!(owner_at(owners, page, OwnerEpoch::ZERO), n(1));
    assert_eq!(owner_at(owners, page, OwnerEpoch::new(1)), n(2));
    assert_eq!(owner_at(owners, page, OwnerEpoch::new(2)), n(0));
    assert_eq!(owner_at(owners, page, OwnerEpoch::new(3)), n(1));
}

// ---------------------------------------------------------------------
// Threaded engine: recoverable timeouts and stale-reply discipline.
// ---------------------------------------------------------------------

/// Drops the first `budget` messages of kind `kind`, then passes
/// everything.
struct DropFirst {
    kind: &'static str,
    budget: AtomicUsize,
}

impl DropFirst {
    fn new(kind: &'static str, budget: usize) -> Self {
        DropFirst {
            kind,
            budget: AtomicUsize::new(budget),
        }
    }
}

impl FaultHook for DropFirst {
    fn on_send(&self, _src: NodeId, _dst: NodeId, kind: &'static str, _now: u64) -> SendFate {
        if kind == self.kind
            && self
                .budget
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |b| b.checked_sub(1))
                .is_ok()
        {
            return SendFate::dropped();
        }
        SendFate::deliver()
    }
}

/// Duplicates the first message of kind `kind`.
struct DupFirst {
    kind: &'static str,
    budget: AtomicUsize,
}

impl FaultHook for DupFirst {
    fn on_send(&self, _src: NodeId, _dst: NodeId, kind: &'static str, _now: u64) -> SendFate {
        if kind == self.kind
            && self
                .budget
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |b| b.checked_sub(1))
                .is_ok()
        {
            return SendFate { copies: vec![0, 0] };
        }
        SendFate::deliver()
    }
}

/// `node` is down forever (fail-stop): every message addressed to it is
/// discarded by the transport.
struct DeadNode(u32);

impl FaultHook for DeadNode {
    fn down_until(&self, node: NodeId, _at: u64) -> Option<u64> {
        (node.index() as u32 == self.0).then_some(u64::MAX)
    }
}

#[test]
fn timeout_is_recoverable_without_failover() {
    // Satellite regression: a dropped WRITE must surface as a Timeout the
    // *caller* can survive — with failover disabled, the next operation
    // on the same handle succeeds once the network heals.
    let cluster = CausalCluster::<Word>::builder(2, 4)
        .configure(|c| c.owner_timeout(Duration::from_millis(40)))
        .build()
        .unwrap();
    let h1 = cluster.handle(1);
    // Location 0 lives on node 0: the write must cross the network.
    cluster.set_fault_hook(Some(Arc::new(DropFirst::new("WRITE", 1))));
    match h1.write(loc(0), Word::Int(1)) {
        Err(MemoryError::Timeout { owner }) => assert_eq!(owner, n(0)),
        other => panic!("expected timeout, got {other:?}"),
    }
    cluster.set_fault_hook(None);
    // The handle is still usable: retry succeeds and reads see it.
    h1.write(loc(0), Word::Int(2)).unwrap();
    assert_eq!(h1.read(loc(0)).unwrap(), Word::Int(2));
    assert_eq!(cluster.handle(0).read(loc(0)).unwrap(), Word::Int(2));
    cluster.shutdown();
}

#[test]
fn stale_replies_are_discarded_not_misattributed() {
    // Satellite regression: a duplicated W_REPLY leaves a stale message
    // in the handle's reply channel after the write completes. The next
    // remote operation (a read of a *different* page on the same owner)
    // must skip it and wait for its own reply.
    let cluster = CausalCluster::<Word>::builder(2, 4)
        .configure(|c| c.owner_timeout(Duration::from_millis(200)))
        .build()
        .unwrap();
    let h1 = cluster.handle(1);
    cluster.set_fault_hook(Some(Arc::new(DupFirst {
        kind: "W_REPLY",
        budget: AtomicUsize::new(1),
    })));
    h1.write(loc(0), Word::Int(3)).unwrap();
    cluster.set_fault_hook(None);
    // Pages 0 and 2 both live on node 0; node 1 has never seen page 2,
    // so this read is a genuine remote round-trip that must not consume
    // the duplicated write reply.
    assert_eq!(h1.read(loc(2)).unwrap(), Word::Zero);
    assert_eq!(h1.read(loc(0)).unwrap(), Word::Int(3));
    cluster.shutdown();
}

/// A failover configuration scaled for a unit test: milliseconds, not
/// production patience.
fn fast_failover() -> FailoverConfig {
    FailoverConfig {
        heartbeat_interval: 10,
        suspicion_threshold: 2,
        backoff_base: 1,
        backoff_max: 8,
        max_retries: 6,
        heartbeat_fanout: 0,
    }
}

#[test]
fn owner_crash_migrates_ownership_in_the_threaded_engine() {
    let cluster = CausalCluster::<Word>::builder(3, 6)
        .configure(|c| c.failover(fast_failover()))
        .build()
        .unwrap();
    // Node 0 (owner of pages 0 and 3) fail-stops before serving anything.
    cluster.set_fault_hook(Some(Arc::new(DeadNode(0))));
    let h2 = cluster.handle(2);
    // The write times out against the dead owner, suspicion migrates the
    // page to its successor (node 1), and the engine's retry completes
    // the operation there — Timeout never reaches the caller.
    h2.write(loc(0), Word::Int(77)).unwrap();
    assert_eq!(h2.read(loc(0)).unwrap(), Word::Int(77));
    // The successor itself serves reads of the migrated page.
    let h1 = cluster.handle(1);
    assert_eq!(h1.read(loc(0)).unwrap(), Word::Int(77));
    // The suspicion was broadcast, not kept private.
    let kinds_seen = cluster.messages().snapshot();
    let suspects = kinds_seen
        .by_kind()
        .iter()
        .find(|(k, _)| *k == kinds::SUSPECT)
        .map_or(0, |(_, c)| *c);
    assert!(suspects > 0, "migration must be announced via SUSPECT");
    // Clear the hook so shutdown's HALT can reach node 0's server thread.
    cluster.set_fault_hook(None);
    cluster.shutdown();
}

#[test]
fn successor_self_serves_after_owner_crash() {
    // When the *successor* issues the operation, the retry discovers the
    // page migrated to itself and serves locally.
    let cluster = CausalCluster::<Word>::builder(3, 6)
        .configure(|c| c.failover(fast_failover()))
        .build()
        .unwrap();
    cluster.set_fault_hook(Some(Arc::new(DeadNode(0))));
    let h1 = cluster.handle(1); // successor of node 0's pages
    h1.write(loc(0), Word::Int(88)).unwrap();
    assert_eq!(h1.read(loc(0)).unwrap(), Word::Int(88));
    cluster.set_fault_hook(None);
    cluster.shutdown();
}

#[test]
fn shutdown_interrupts_heartbeat_sleep() {
    // Heartbeat tickers used to `thread::sleep(heartbeat_interval)`
    // between stop-flag checks, so shutdown() could stall for up to a
    // full interval. With the condvar-based stop signal, shutdown wakes
    // them immediately — even out of an interval far longer than any
    // acceptable shutdown latency.
    let slow = FailoverConfig {
        heartbeat_interval: 2_000,
        ..FailoverConfig::default()
    };
    let cluster = CausalCluster::<Word>::builder(3, 6)
        .configure(|c| c.failover(slow))
        .build()
        .unwrap();
    let h0 = cluster.handle(0);
    h0.write(loc(0), Word::Int(1)).unwrap();
    // Give the tickers time to park in their first interval wait.
    std::thread::sleep(Duration::from_millis(50));
    let start = std::time::Instant::now();
    cluster.shutdown();
    let elapsed = start.elapsed();
    assert!(
        elapsed < Duration::from_millis(500),
        "shutdown took {elapsed:?}; heartbeat tickers were not woken promptly"
    );
}
