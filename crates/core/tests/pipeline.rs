//! The bounded write pipeline: window backpressure, the flush barrier,
//! automatic draining before operations that would leak in-flight
//! increments, and transport batching — all checked against the
//! executable causal specification where it matters.

use causal_dsm::CausalCluster;
use causal_spec::{check_causal, Execution};
use memcore::{kinds, Location, Recorder, SharedMemory, Word};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn loc(i: u32) -> Location {
    Location::new(i)
}

#[test]
fn window_zero_is_the_blocking_protocol() {
    // Defaults leave the pipeline off; write_pipelined must then be the
    // ordinary blocking write — same messages, nothing outstanding.
    let cluster = CausalCluster::<Word>::builder(2, 4).build().unwrap();
    let p0 = cluster.handle(0);
    p0.write_pipelined(loc(1), Word::Int(5)).unwrap();
    assert_eq!(cluster.pending_nonblocking(0), 0);
    let snap = cluster.messages().snapshot();
    assert_eq!(snap.kind_total("WRITE"), 1);
    assert_eq!(snap.kind_total("W_REPLY"), 1);
    p0.flush().unwrap();
    assert_eq!(*p0.read_shared(loc(1)).unwrap(), Word::Int(5));
}

#[test]
fn pipelined_writes_complete_and_flush_is_a_barrier() {
    // Node 0 pipelines a burst of writes to node 1's locations; flush()
    // must not return before every reply is absorbed into VT_0.
    let cluster = CausalCluster::<Word>::builder(2, 4)
        .configure(|c| c.pipeline_window(4))
        .build()
        .unwrap();
    let p0 = cluster.handle(0);
    let p1 = cluster.handle(1);
    for i in 0..20 {
        let wid = p0.write_pipelined(loc(1), Word::Int(i)).unwrap();
        assert_eq!(wid.writer(), Some(memcore::NodeId::new(0)));
        assert!(
            cluster.pending_nonblocking(0) <= 4,
            "the window must cap in-flight writes"
        );
    }
    p0.flush().unwrap();
    assert_eq!(cluster.pending_nonblocking(0), 0);
    assert_eq!(*p1.read_shared(loc(1)).unwrap(), Word::Int(19));
    assert_eq!(*p0.read_shared(loc(1)).unwrap(), Word::Int(19));
    // All 20 writes crossed the wire individually (no batching here).
    let snap = cluster.messages().snapshot();
    assert_eq!(snap.kind_total("WRITE"), 20);
    assert_eq!(snap.kind_total("W_REPLY"), 20);
}

#[test]
fn pipeline_drains_before_unsafe_operations() {
    // Interleave pipelined writes with each operation class that forces a
    // drain (owner-local write, write to a different owner, read miss on
    // the pipeline owner's pages) and check the full run against
    // Definition 2 — with a recorder installed so the oracle sees it all.
    for (window, batching) in [(4u32, false), (4, true), (32, true)] {
        let recorder: Recorder<Word> = Recorder::new(3);
        let cluster = CausalCluster::<Word>::builder(3, 6)
            .configure(|c| c.pipeline_window(window).batching(batching))
            .recorder(recorder.clone())
            .build()
            .unwrap();
        std::thread::scope(|scope| {
            for node in 0..3u32 {
                let h = cluster.handle(node);
                scope.spawn(move || {
                    let mut rng = ChaCha8Rng::seed_from_u64(u64::from(node) + 17);
                    let mut counter = i64::from(node) * 1_000_000;
                    for _ in 0..250 {
                        let l = loc(rng.gen_range(0..6));
                        match rng.gen_range(0..10u8) {
                            0..=3 => {
                                h.read(l).unwrap();
                            }
                            4..=7 => {
                                counter += 1;
                                h.write_pipelined(l, Word::Int(counter)).unwrap();
                            }
                            8 => {
                                counter += 1;
                                h.write(l, Word::Int(counter)).unwrap();
                            }
                            _ => h.flush().unwrap(),
                        }
                    }
                    h.flush().unwrap();
                });
            }
        });
        let exec = Execution::from_recorder(&recorder);
        let verdict = check_causal(&exec).expect("well formed");
        assert!(
            verdict.is_correct(),
            "window={window} batching={batching}:\n{verdict}"
        );
    }
}

#[test]
fn batching_coalesces_envelopes_but_not_logical_counts() {
    // The same pipelined burst with batching off and on: identical
    // logical per-kind counters (the ablation contract), strictly fewer
    // physical envelopes when batching.
    let run = |batching: bool| {
        let cluster = CausalCluster::<Word>::builder(2, 4)
            .configure(|c| c.pipeline_window(8).batching(batching))
            .build()
            .unwrap();
        let p0 = cluster.handle(0);
        for i in 0..64 {
            p0.write_pipelined(loc(1), Word::Int(i)).unwrap();
        }
        p0.flush().unwrap();
        assert_eq!(*p0.read_shared(loc(1)).unwrap(), Word::Int(63));
        (
            cluster.messages().snapshot(),
            cluster.envelopes().snapshot(),
        )
    };

    let (plain_msgs, plain_envs) = run(false);
    let (batched_msgs, batched_envs) = run(true);

    assert_eq!(
        plain_msgs.by_kind(),
        batched_msgs.by_kind(),
        "batching must be invisible to the logical counters"
    );
    assert_eq!(plain_envs.total(), plain_msgs.total());
    assert!(
        batched_envs.total() < batched_msgs.total(),
        "batching must coalesce envelopes: {} physical vs {} logical",
        batched_envs.total(),
        batched_msgs.total()
    );
    assert!(
        batched_envs.kind_total(kinds::BATCH) > 0,
        "coalesced runs are counted under the BATCH kind"
    );
}

#[test]
fn flush_is_a_barrier_for_raw_nonblocking_writes() {
    // flush() documents covering raw write_nonblocking replies too — even
    // with the pipeline disabled (window 0, the default). After the
    // barrier nothing may be outstanding and the owner must hold the
    // final value.
    let cluster = CausalCluster::<Word>::builder(2, 4).build().unwrap();
    let p0 = cluster.handle(0);
    for i in 0..50 {
        p0.write_nonblocking(loc(1), Word::Int(i)).unwrap();
    }
    p0.flush().unwrap();
    assert_eq!(
        cluster.pending_nonblocking(0),
        0,
        "flush returned with non-blocking replies still outstanding"
    );
    assert_eq!(
        *cluster.handle(1).read_shared(loc(1)).unwrap(),
        Word::Int(49)
    );

    // And with pipelining on, one barrier covers both kinds at once.
    let cluster = CausalCluster::<Word>::builder(2, 4)
        .configure(|c| c.pipeline_window(4))
        .build()
        .unwrap();
    let p0 = cluster.handle(0);
    for i in 0..10 {
        p0.write_nonblocking(loc(1), Word::Int(i)).unwrap();
        p0.write_pipelined(loc(3), Word::Int(i)).unwrap();
    }
    p0.flush().unwrap();
    assert_eq!(cluster.pending_nonblocking(0), 0);
    assert_eq!(
        *cluster.handle(1).read_shared(loc(3)).unwrap(),
        Word::Int(9)
    );
}

#[test]
fn local_fast_path_and_pipeline_race_without_deadlock() {
    // The owner-local write fast path now takes the pipeline lock across
    // its state mutation (closing the TOCTOU with write_pipelined's VT
    // tick). Hammer the two paths from separate handles of the same node
    // — no recorder, so the fast path is live — while a third node reads
    // both pages, to exercise the new lock ordering under contention.
    let cluster = CausalCluster::<Word>::builder(3, 6)
        .configure(|c| c.pipeline_window(8).batching(true))
        .build()
        .unwrap();
    const N: i64 = 2_000;
    std::thread::scope(|scope| {
        let pipeliner = cluster.handle(0);
        scope.spawn(move || {
            for i in 0..N {
                // Page owned by node 1: goes through the pipeline.
                pipeliner.write_pipelined(loc(1), Word::Int(i)).unwrap();
            }
            pipeliner.flush().unwrap();
        });
        let local = cluster.handle(0);
        scope.spawn(move || {
            for i in 0..N {
                // Page owned by node 0: eligible for the fast path.
                local.write(loc(0), Word::Int(i)).unwrap();
            }
        });
        let reader = cluster.handle(2);
        scope.spawn(move || {
            for _ in 0..200 {
                reader.read(loc(0)).unwrap();
                reader.read(loc(1)).unwrap();
                reader.discard(loc(0));
                reader.discard(loc(1));
            }
        });
    });
    let p0 = cluster.handle(0);
    p0.flush().unwrap();
    assert_eq!(cluster.pending_nonblocking(0), 0);
    assert_eq!(*p0.read_shared(loc(0)).unwrap(), Word::Int(N - 1));
    assert_eq!(
        *cluster.handle(1).read_shared(loc(1)).unwrap(),
        Word::Int(N - 1)
    );
}

#[test]
fn same_owner_blocking_write_rides_behind_the_pipeline() {
    // A blocking write to the pipeline's owner does not drain the window
    // (FIFO keeps it ordered); its reply must still find its way back to
    // the blocked application rather than being absorbed.
    let cluster = CausalCluster::<Word>::builder(2, 4)
        .configure(|c| c.pipeline_window(8).batching(true))
        .build()
        .unwrap();
    let p0 = cluster.handle(0);
    for i in 0..5 {
        p0.write_pipelined(loc(1), Word::Int(i)).unwrap();
    }
    p0.write(loc(1), Word::Int(100)).unwrap();
    p0.flush().unwrap();
    assert_eq!(*p0.read_shared(loc(1)).unwrap(), Word::Int(100));
    assert_eq!(
        *cluster.handle(1).read_shared(loc(1)).unwrap(),
        Word::Int(100)
    );
}
