//! Hot-path discipline for the threaded engine: application values are
//! deep-copied at most once per operation (zero on the unrecorded
//! protocol paths), shared reads hand back the slot's own allocation, and
//! cache-hit reads run concurrently under the node's shared state lock
//! without touching the network.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use causal_dsm::CausalCluster;
use causal_spec::{check_causal, Execution};
use memcore::{Location, Recorder, SharedMemory, Word};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn loc(i: u32) -> Location {
    Location::new(i)
}

/// A value that counts its deep copies. The counter is process-global, so
/// every assertion about it lives in the single test below.
#[derive(Debug, Default)]
struct Counted(i64);

static CLONES: AtomicU64 = AtomicU64::new(0);

impl Clone for Counted {
    fn clone(&self) -> Self {
        CLONES.fetch_add(1, Ordering::Relaxed);
        Counted(self.0)
    }
}

fn clones() -> u64 {
    CLONES.load(Ordering::Relaxed)
}

#[test]
fn values_are_deep_copied_at_most_once_per_operation() {
    // Two nodes round-robin over 4 locations: node 0 owns even, node 1 odd.
    let cluster = CausalCluster::<Counted>::builder(2, 4).build().unwrap();
    let p0 = cluster.handle(0);
    let p1 = cluster.handle(1);

    // Owner-local write: the engine wraps the value in one Arc and moves
    // the pointer into the slot — zero deep copies.
    let before = clones();
    p0.write(loc(0), Counted(1)).unwrap();
    assert_eq!(clones() - before, 0, "owner-local write must not clone");

    // Remote write: the same Arc travels in the request, is installed at
    // the owner, and backs the writer's cached copy — still zero.
    let before = clones();
    p1.write(loc(0), Counted(2)).unwrap();
    assert_eq!(clones() - before, 0, "remote write must not clone");

    // Shared reads hand back the stored pointer itself.
    let before = clones();
    let a = p1.read_shared(loc(0)).unwrap();
    let b = p1.read_shared(loc(0)).unwrap();
    assert!(Arc::ptr_eq(&a, &b), "hits must share one allocation");
    assert_eq!(a.0, 2);
    assert_eq!(clones() - before, 0, "shared reads must not clone");

    // The by-value `SharedMemory::read` pays exactly the one clone its
    // signature requires — never more.
    let before = clones();
    assert_eq!(p1.read(loc(0)).unwrap().0, 2);
    assert_eq!(clones() - before, 1, "by-value read is exactly one clone");

    // A read miss ships the page over and caches it without copying.
    p1.write(loc(1), Counted(3)).unwrap();
    let before = clones();
    assert_eq!(p0.read_shared(loc(1)).unwrap().0, 3);
    assert_eq!(clones() - before, 0, "read miss must not clone");

    // With a recorder installed, the record's own copy is the single
    // permitted deep copy per operation.
    let recorder: Recorder<Counted> = Recorder::new(2);
    let recorded = CausalCluster::<Counted>::builder(2, 4)
        .recorder(recorder.clone())
        .build()
        .unwrap();
    let r0 = recorded.handle(0);
    let before = clones();
    r0.write(loc(0), Counted(9)).unwrap();
    assert_eq!(
        clones() - before,
        1,
        "recorded write clones once, for the record"
    );
    let before = clones();
    let _ = r0.read_shared(loc(0)).unwrap();
    assert_eq!(
        clones() - before,
        1,
        "recorded read clones once, for the record"
    );
}

#[test]
fn concurrent_hit_readers_share_the_lock_and_send_nothing() {
    // Node 0 owns the even locations; node 1 warms its cache (descending,
    // so no install's sweep invalidates an already-cached page), then four
    // reader threads hammer the cache while a fifth thread performs
    // owner-local writes on the same node — readers under the shared
    // lock, the writer under the exclusive one.
    let cluster = CausalCluster::<Word>::builder(2, 8).build().unwrap();
    let p0 = cluster.handle(0);
    let p1 = cluster.handle(1);
    for l in [0u32, 2, 4, 6] {
        p0.write(loc(l), Word::Int(i64::from(l))).unwrap();
    }
    for l in [6u32, 4, 2, 0] {
        assert_eq!(p1.read(loc(l)).unwrap(), Word::Int(i64::from(l)));
    }

    let msgs_before = cluster.messages().snapshot().total();
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let h = p1.clone();
            scope.spawn(move || {
                for i in 0..20_000usize {
                    let l = [0u32, 2, 4, 6][i % 4];
                    let v = h.read_shared(loc(l)).unwrap();
                    assert_eq!(*v, Word::Int(i64::from(l)));
                }
            });
        }
        let w = p1.clone();
        scope.spawn(move || {
            for v in 0..5_000 {
                // Node 1 owns the odd locations: these writes take the
                // exclusive lock but never cross the network.
                w.write(loc(1), Word::Int(v)).unwrap();
            }
        });
    });
    assert_eq!(
        cluster.messages().snapshot().total(),
        msgs_before,
        "cache hits and owner-local writes must not send messages"
    );
    assert_eq!(*p1.read_shared(loc(1)).unwrap(), Word::Int(4_999));
}

#[test]
fn send_failure_rolls_back_nonblocking_registration() {
    // The racy drain path: a non-blocking write registers its tag (and
    // bumps the lock-free counter) *before* sending, so a send that fails
    // must roll both back — otherwise the counter leaks and every later
    // reply pays the registry lock forever.
    let cluster = CausalCluster::<Word>::builder(2, 4).build().unwrap();
    let p0 = cluster.handle(0);
    cluster.shutdown();

    // Location 1 is owned by node 1, so the write takes the remote
    // (register-then-send) path and the send fails on the dead network.
    let err = p0.write_nonblocking(loc(1), Word::Int(7)).unwrap_err();
    assert!(matches!(err, memcore::MemoryError::Shutdown));
    assert_eq!(
        cluster.pending_nonblocking(0),
        0,
        "failed send must unregister the write and restore the counter"
    );

    // Same discipline on the pipelined path (which also holds a window
    // slot that must be released).
    let piped = CausalCluster::<Word>::builder(2, 4)
        .configure(|c| c.pipeline_window(4))
        .build()
        .unwrap();
    let h0 = piped.handle(0);
    piped.shutdown();
    let err = h0.write_pipelined(loc(1), Word::Int(7)).unwrap_err();
    assert!(matches!(err, memcore::MemoryError::Shutdown));
    assert_eq!(piped.pending_nonblocking(0), 0);
    h0.flush()
        .expect("rolled-back pipeline is idle; flush is a no-op");
}

#[test]
fn read_heavy_recorded_stress_satisfies_definition2() {
    // Read-mostly threads across all nodes, recorded and checked against
    // the executable causal specification — the oracle re-run against the
    // reader-writer-locked engine.
    for round in 0..2u64 {
        let recorder: Recorder<Word> = Recorder::new(3);
        let cluster = CausalCluster::<Word>::builder(3, 6)
            .recorder(recorder.clone())
            .build()
            .unwrap();
        std::thread::scope(|scope| {
            for node in 0..3u32 {
                let h = cluster.handle(node);
                scope.spawn(move || {
                    let mut rng = ChaCha8Rng::seed_from_u64(round * 100 + u64::from(node));
                    let mut counter = i64::from(node) * 1_000_000;
                    for _ in 0..300 {
                        let l = loc(rng.gen_range(0..6));
                        if rng.gen_range(0..10u8) < 8 {
                            h.read(l).unwrap();
                        } else {
                            counter += 1;
                            h.write(l, Word::Int(counter)).unwrap();
                        }
                    }
                });
            }
        });
        let exec = Execution::from_recorder(&recorder);
        let verdict = check_causal(&exec).expect("well formed");
        assert!(verdict.is_correct(), "round {round}:\n{verdict}");
    }
}
