//! Engine-level durability roundtrip: a threaded cluster writes through
//! the full Figure-4 protocol with a WAL behind every owner, shuts
//! down, and is rebuilt from the same disks. Everything certified in
//! the first life must be readable in the second, and every node must
//! come back under a bumped incarnation.

use causal_dsm::{CausalCluster, CausalConfig, Disk, DurableConfig, MemDisk, SyncPolicy};
use memcore::{Location, NodeId, SharedMemory, Word};
use simnet::Network;

fn loc(i: u32) -> Location {
    Location::new(i)
}

/// A fully-local threaded cluster whose node `i` journals to `disks[i]`.
/// `MemDisk` clones share their backing store, so rebuilding with the
/// same slice *is* a restart from disk.
fn durable_cluster(disks: &[MemDisk], config: DurableConfig) -> CausalCluster<Word> {
    let n = disks.len() as u32;
    let config = CausalConfig::<Word>::builder(n, 2 * n)
        .durability(config)
        .build();
    let net = Network::new(disks.len());
    let local: Vec<NodeId> = (0..n).map(NodeId::new).collect();
    let boxed = disks
        .iter()
        .enumerate()
        .map(|(i, d)| (NodeId::new(i as u32), Box::new(d.clone()) as Box<dyn Disk>))
        .collect();
    CausalCluster::with_durable_transport(config, None, net, &local, boxed)
        .expect("engine rejected configuration")
}

#[test]
fn certified_writes_survive_a_full_cluster_restart() {
    let disks: Vec<MemDisk> = (0..3).map(|_| MemDisk::new()).collect();
    let cluster = durable_cluster(&disks, DurableConfig::default());
    for i in 0..3 {
        assert_eq!(cluster.node_incarnation(i), 0, "first life of node {i}");
    }

    // Local writes, a remote write, and a cross-node read, so the logs
    // hold certified writes from both the owner and the requester path.
    cluster.handle(0).write(loc(0), Word::Int(10)).unwrap();
    cluster.handle(1).write(loc(1), Word::Int(11)).unwrap();
    cluster.handle(0).write(loc(2), Word::Int(12)).unwrap();
    assert_eq!(cluster.handle(2).read(loc(0)).unwrap(), Word::Int(10));
    cluster.shutdown();

    // Second life: same disks, fresh everything else.
    let cluster = durable_cluster(&disks, DurableConfig::default());
    for i in 0..3 {
        assert_eq!(cluster.node_incarnation(i), 1, "rebooted life of node {i}");
    }
    // Every certified write is served again — by its recovered owner,
    // to a node whose cache is cold by construction.
    assert_eq!(cluster.handle(1).read(loc(0)).unwrap(), Word::Int(10));
    assert_eq!(cluster.handle(2).read(loc(1)).unwrap(), Word::Int(11));
    assert_eq!(cluster.handle(1).read(loc(2)).unwrap(), Word::Int(12));
    // And the recovered state is live, not a read-only fossil.
    cluster.handle(2).write(loc(0), Word::Int(20)).unwrap();
    assert_eq!(cluster.handle(0).read(loc(0)).unwrap(), Word::Int(20));
    cluster.shutdown();
}

#[test]
fn restart_after_checkpoint_compaction_recovers_the_same_state() {
    // A checkpoint interval small enough that the write loop compacts
    // several times: recovery then replays a checkpoint image plus a
    // log tail rather than the full history.
    let cfg = DurableConfig {
        sync: SyncPolicy::EveryOp,
        checkpoint_every: 8,
    };
    let disks: Vec<MemDisk> = (0..2).map(|_| MemDisk::new()).collect();
    let cluster = durable_cluster(&disks, cfg);
    for round in 0..16i64 {
        for l in 0..4u32 {
            let writer = cluster.handle(u32::from(l % 2 == 0));
            writer.write(loc(l), Word::Int(round * 10 + i64::from(l))).unwrap();
        }
    }
    cluster.shutdown();
    let compacted = disks.iter().map(MemDisk::log_len).sum::<usize>();

    let cluster = durable_cluster(&disks, cfg);
    for l in 0..4u32 {
        assert_eq!(
            cluster.handle(1).read(loc(l)).unwrap(),
            Word::Int(150 + i64::from(l)),
            "location {l} after compacted recovery"
        );
    }
    cluster.shutdown();

    // The log really was compacted: its surviving length is far below
    // what 64 certified writes plus page installs would occupy raw.
    let raw = 64 * 64; // coarse lower bound per uncompacted write frame
    assert!(
        compacted < raw,
        "no compaction happened: {compacted} bytes on disk"
    );
}
