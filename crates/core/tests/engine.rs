//! Threaded-engine integration tests for the causal DSM, including the
//! non-blocking-write enhancement, page granularity, write policies and
//! multi-threaded stress checked against the executable specification.

use causal_dsm::{CausalCluster, InvalidationMode, WritePolicy};
use causal_spec::{check_causal, Execution};
use memcore::{ExplicitOwners, Location, MemoryError, NodeId, Recorder, SharedMemory, Word};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn loc(i: u32) -> Location {
    Location::new(i)
}

#[test]
fn reads_and_writes_flow_between_nodes() {
    let cluster = CausalCluster::<Word>::builder(4, 8).build().unwrap();
    let handles = cluster.handles();
    for (i, h) in handles.iter().enumerate() {
        h.write(loc(i as u32), Word::Int(i as i64 * 10)).unwrap();
    }
    for h in &handles {
        for i in 0..4u32 {
            assert_eq!(h.read(loc(i)).unwrap(), Word::Int(i64::from(i) * 10));
        }
    }
}

#[test]
fn out_of_range_locations_error() {
    let cluster = CausalCluster::<Word>::builder(2, 4).build().unwrap();
    let h = cluster.handle(0);
    assert!(matches!(
        h.read(loc(4)),
        Err(MemoryError::OutOfRange { .. })
    ));
    assert!(matches!(
        h.write(loc(99), Word::Int(1)),
        Err(MemoryError::OutOfRange { .. })
    ));
    h.discard(loc(99)); // must not panic
}

#[test]
fn nonblocking_write_reads_its_own_value_immediately() {
    let cluster = CausalCluster::<Word>::builder(2, 2).build().unwrap();
    let p1 = cluster.handle(1);
    // x0 is owned by P0: this is a remote, non-blocking write.
    let wid = p1.write_nonblocking(loc(0), Word::Int(5)).unwrap();
    assert_eq!(wid.writer(), Some(NodeId::new(1)));
    // Program order: our own read sees the optimistic value at once.
    assert_eq!(p1.read(loc(0)).unwrap(), Word::Int(5));
    // The owner eventually installs it; a fresh read agrees.
    assert_eq!(
        p1.wait_until(loc(0), &|v| *v == Word::Int(5)).unwrap(),
        Word::Int(5)
    );
    let p0 = cluster.handle(0);
    assert_eq!(
        p0.wait_until(loc(0), &|v| *v == Word::Int(5)).unwrap(),
        Word::Int(5)
    );
}

#[test]
fn nonblocking_writes_preserve_per_owner_order() {
    let cluster = CausalCluster::<Word>::builder(2, 2).build().unwrap();
    let p1 = cluster.handle(1);
    for v in 1..=100i64 {
        p1.write_nonblocking(loc(0), Word::Int(v)).unwrap();
    }
    // FIFO to the owner: the last write wins there.
    let p0 = cluster.handle(0);
    assert_eq!(
        p0.wait_until(loc(0), &|v| *v == Word::Int(100)).unwrap(),
        Word::Int(100)
    );
    // And the writer's view agrees without ever having blocked.
    assert_eq!(p1.read(loc(0)).unwrap(), Word::Int(100));
}

#[test]
fn blocking_op_stress_satisfies_definition2() {
    for round in 0..3u64 {
        let recorder: Recorder<Word> = Recorder::new(3);
        let cluster = CausalCluster::<Word>::builder(3, 6)
            .recorder(recorder.clone())
            .build()
            .unwrap();
        std::thread::scope(|scope| {
            for node in 0..3u32 {
                let h = cluster.handle(node);
                scope.spawn(move || {
                    let mut rng = ChaCha8Rng::seed_from_u64(round * 10 + u64::from(node));
                    let mut counter = i64::from(node) * 1_000_000;
                    // Non-blocking writes are excluded: they forfeit
                    // general causal correctness (tests/nonblocking_limits
                    // at the workspace root pins the witness).
                    for _ in 0..150 {
                        let l = loc(rng.gen_range(0..6));
                        match rng.gen_range(0..3u8) {
                            0 => {
                                h.read(l).unwrap();
                            }
                            1 => {
                                h.read_fresh(l).unwrap();
                            }
                            _ => {
                                counter += 1;
                                h.write(l, Word::Int(counter)).unwrap();
                            }
                        }
                    }
                });
            }
        });
        let exec = Execution::from_recorder(&recorder);
        let verdict = check_causal(&exec).expect("well formed");
        assert!(verdict.is_correct(), "round {round}:\n{verdict}");
    }
}

#[test]
fn page_mode_on_the_threaded_engine() {
    let cluster = CausalCluster::<Word>::builder(2, 16)
        .configure(|c| c.page_size(4))
        .build()
        .unwrap();
    let p0 = cluster.handle(0);
    let p1 = cluster.handle(1);
    // P0 owns pages 0 and 2 (round-robin): locations 0..4 and 8..12.
    p0.write(loc(1), Word::Int(11)).unwrap();
    p0.write(loc(2), Word::Int(22)).unwrap();
    // One fetch brings the whole page to P1.
    assert_eq!(p1.read(loc(1)).unwrap(), Word::Int(11));
    let before = cluster.messages().snapshot().total();
    assert_eq!(p1.read(loc(2)).unwrap(), Word::Int(22));
    assert_eq!(
        cluster.messages().snapshot().total(),
        before,
        "second read of the same page must be a cache hit"
    );
}

#[test]
fn write_resolved_reports_rejections() {
    let owners = ExplicitOwners::new(2, 1, vec![NodeId::new(0)]);
    let cluster = CausalCluster::<Word>::builder(2, 1)
        .configure(|c| c.owners(owners).policy(WritePolicy::OwnerFavored))
        .build()
        .unwrap();
    let p0 = cluster.handle(0);
    let p1 = cluster.handle(1);
    p0.write(loc(0), Word::Int(1)).unwrap();
    // P1 writes without having seen P0's value: concurrent, rejected.
    let done = p1.write_resolved(loc(0), Word::Int(2)).unwrap();
    assert!(!done.is_applied());
    // P1's cache converged to the surviving value.
    assert_eq!(p1.read(loc(0)).unwrap(), Word::Int(1));
    // Once P1 has seen the current value, its write is causally later and
    // must be applied.
    let done = p1.write_resolved(loc(0), Word::Int(3)).unwrap();
    assert!(done.is_applied());
    assert_eq!(p0.read(loc(0)).unwrap(), Word::Int(3));
}

#[test]
fn invalidation_counters_are_exposed() {
    let cluster = CausalCluster::<Word>::builder(2, 4)
        .configure(|c| c.invalidation(InvalidationMode::WriterInvalidate))
        .build()
        .unwrap();
    let p0 = cluster.handle(0);
    let p1 = cluster.handle(1);
    p0.write(loc(0), Word::Int(1)).unwrap();
    let _ = p1.read(loc(0)).unwrap(); // P1 caches x0
    p0.write(loc(0), Word::Int(2)).unwrap();
    p0.write(loc(2), Word::Int(9)).unwrap(); // stamps x2 above x0's copy
    let _ = p1.read(loc(2)).unwrap(); // dominating fetch sweeps the cache
    assert!(cluster.total_invalidations() >= 1);
}

#[test]
fn without_discard_silent_partners_never_communicate() {
    // The paper's liveness remark: "Without discard two processors that
    // initially cache all locations and only write locations owned by
    // them need never communicate."
    let cluster = CausalCluster::<Word>::builder(2, 2).build().unwrap();
    let p0 = cluster.handle(0);
    let p1 = cluster.handle(1);
    // Initially cache all locations.
    let _ = p0.read(loc(1)).unwrap();
    let _ = p1.read(loc(0)).unwrap();
    let warm = cluster.messages().snapshot().total();

    // Each only writes its own location and reads whatever it has.
    for v in 1..=20i64 {
        p0.write(loc(0), Word::Int(v)).unwrap();
        p1.write(loc(1), Word::Int(v)).unwrap();
        assert_eq!(p0.read(loc(1)).unwrap(), Word::Zero, "stale forever");
        assert_eq!(p1.read(loc(0)).unwrap(), Word::Zero, "stale forever");
    }
    assert_eq!(
        cluster.messages().snapshot().total(),
        warm,
        "no communication without discard"
    );

    // One discard restores liveness.
    p0.discard(loc(1));
    assert_eq!(p0.read(loc(1)).unwrap(), Word::Int(20));
}

#[test]
fn node_timestamps_are_observable() {
    let cluster = CausalCluster::<Word>::builder(2, 2).build().unwrap();
    let p0 = cluster.handle(0);
    assert_eq!(cluster.node_vt(0).weight(), 0);
    p0.write(loc(0), Word::Int(1)).unwrap();
    p0.write(loc(0), Word::Int(2)).unwrap();
    assert_eq!(cluster.node_vt(0).get(0), 2);
    // P1 learns P0's history through a read.
    let p1 = cluster.handle(1);
    let _ = p1.read(loc(0)).unwrap();
    assert_eq!(cluster.node_vt(1).get(0), 2);
}

#[test]
fn concurrent_handles_for_one_node_serialize_into_program_order() {
    // Two threads share P1's identity; the op lock must serialize them so
    // the recorded log is a single coherent program order that passes the
    // checker.
    let recorder: Recorder<Word> = Recorder::new(2);
    let cluster = CausalCluster::<Word>::builder(2, 4)
        .recorder(recorder.clone())
        .build()
        .unwrap();
    let a = cluster.handle(1);
    let b = a.clone();
    std::thread::scope(|scope| {
        scope.spawn(move || {
            for v in 0..100 {
                a.write(loc(0), Word::Int(v)).unwrap();
                a.read(loc(0)).unwrap();
            }
        });
        scope.spawn(move || {
            for v in 100..200 {
                b.write(loc(2), Word::Int(v)).unwrap();
                b.read(loc(2)).unwrap();
            }
        });
    });
    let exec = Execution::from_recorder(&recorder);
    assert_eq!(exec.process(1).len(), 400);
    let verdict = check_causal(&exec).expect("well formed");
    assert!(verdict.is_correct(), "{verdict}");
}

#[test]
fn handles_are_clone_and_debug() {
    let cluster = CausalCluster::<Word>::builder(2, 2).build().unwrap();
    let h = cluster.handle(1);
    let h2 = h.clone();
    assert_eq!(format!("{h2:?}"), "CausalHandle(P1)");
    assert!(format!("{cluster:?}").contains("CausalCluster"));
    assert_eq!(h2.node(), NodeId::new(1));
}

#[test]
fn owner_timeout_fails_instead_of_hanging_on_a_lossy_network() {
    use simnet::{FaultHook, SendFate};
    use std::sync::Arc;
    use std::time::Duration;

    // Drop every READ request: the owner never hears the question, so the
    // reply never comes and only the timeout can unblock the reader.
    struct DropReads;
    impl FaultHook for DropReads {
        fn on_send(&self, _s: NodeId, _d: NodeId, kind: &'static str, _now: u64) -> SendFate {
            if kind == "READ" {
                SendFate::dropped()
            } else {
                SendFate::deliver()
            }
        }
    }

    let cluster = CausalCluster::<Word>::builder(2, 2)
        .configure(|c| c.owner_timeout(Duration::from_millis(20)).owner_retries(2))
        .build()
        .unwrap();
    cluster.set_fault_hook(Some(Arc::new(DropReads)));
    let p1 = cluster.handle(1);
    // Location 0 is owned by P0; the READ request is dropped en route.
    let err = p1.read(loc(0)).unwrap_err();
    assert_eq!(
        err,
        MemoryError::Timeout {
            owner: NodeId::new(0)
        }
    );
    // Writes (W/W_REPLY) still flow; the cluster is otherwise healthy.
    let p0 = cluster.handle(0);
    p0.write(loc(0), Word::Int(7)).unwrap();
    assert_eq!(p0.read(loc(0)).unwrap(), Word::Int(7));
}
