//! Deterministic fault injection, a reliable-delivery session layer, and
//! a chaos suite for the causal DSM.
//!
//! The paper's owner protocol assumes "reliable, ordered message passing".
//! This crate removes the assumption and then earns it back:
//!
//! * [`plan`] — [`FaultPlan`]: a replayable description of everything the
//!   network will do wrong (per-link drop/duplication/delay-spike
//!   probabilities, scheduled partitions that heal, node crash/restart
//!   windows);
//! * [`injector`] — [`FaultInjector`]: a plan plus a seeded RNG, exposed
//!   as the [`simnet::FaultHook`] both transports consult; identical
//!   seeds replay identical faults;
//! * [`session`] — [`ReliableLink`] / [`SessionActor`]: sequence numbers,
//!   cumulative acks, retransmission timers, and duplicate suppression
//!   under any protocol actor, re-deriving per-link FIFO exactly-once
//!   delivery over the lossy link (overhead shows up as
//!   [`memcore::kinds`] counters);
//! * [`chaos`] — [`run_chaos_batch`]: random workloads under random
//!   plans in the deterministic simulator, every execution fed to
//!   [`causal_spec::check_causal`], failures reported with their
//!   reproducing seed and plan;
//! * [`recovery`] — [`run_recovery_chaos_batch`]: restart-with-disk
//!   chaos for the durability layer — a [`DurableActor`] journals into
//!   a write-ahead log, crashes at an injected WAL offset (including
//!   mid-record tears), recovers from the surviving bytes, and rejoins
//!   under a bumped session incarnation; the extended oracle asserts no
//!   certified write is lost under `every_op` sync;
//! * [`objects`] — [`run_object_chaos_batch`]: typed-object workloads
//!   (counter/set/map/queue from `dsm-objects`) under the same seeded
//!   plans, with each family's sequential-spec oracle
//!   ([`causal_spec::check_object`]) layered on the causal checker —
//!   plus owner-crash, kill-9 + WAL recovery, and broken-merge-policy
//!   mutation gates for the object layer.
//!
//! # Examples
//!
//! One seeded chaos run end to end:
//!
//! ```
//! use dsm_faults::{run_chaos_once, ChaosConfig};
//!
//! let outcome = run_chaos_once(42, &ChaosConfig::default());
//! assert!(outcome.ok(), "{outcome}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod injector;
pub mod objects;
pub mod plan;
pub mod recovery;
pub mod session;

pub use chaos::{
    owner_crash_plan, run_chaos_batch, run_chaos_once, run_chaos_shaped, run_owner_crash_batch,
    run_owner_crash_once, sample_owner_crash_config, sample_throughput_config, ChaosBatch,
    ChaosConfig, ChaosOutcome, ChaosSetup,
};
pub use injector::FaultInjector;
pub use objects::{
    object_family, object_workload, run_object_chaos_batch, run_object_chaos_once,
    run_object_mutation_once, run_object_owner_crash_batch, run_object_owner_crash_once,
    run_object_recovery_once,
};
pub use recovery::{
    recovery_crash_plan, run_recovery_chaos_batch, run_recovery_chaos_once,
    run_recovery_liveness_once, sample_recovery_config, DurableActor,
};
pub use plan::{Crash, FaultPlan, LinkFaults, Partition};
pub use session::{session_causal_sim, ReliableLink, SessionActor, SessionMsg, SessionStats};
