//! Object chaos: typed-object workloads (PN-counter, set, map, FIFO
//! queue) under the same seeded fault plans as the register suite, with
//! the **per-object sequential-spec oracle** layered on top of the
//! causal checker.
//!
//! Everything here reduces to [`ChaosSetup`] + [`run_chaos_shaped`]: a
//! seeded [`object_workload`] picks the family (cycling with the seed),
//! its grid layout, its merge policy, and per-node [`ObjOp`] scripts;
//! [`ObjectClient`]s execute them over the session-layered protocol
//! while recording typed traces; and the setup's check hands the traces
//! to [`causal_spec::check_object`] with the family's
//! [`ObjectOracle`]. Four gates on top of the plain batch:
//!
//! * [`run_object_chaos_batch`] — the drop/partition/crash sweep across
//!   the pipelining/batching grid, all families;
//! * [`run_object_owner_crash_once`] — a typed object surviving
//!   permanent owner fail-stop via epoch-stamped failover;
//! * [`run_object_recovery_once`] — kill -9 + write-ahead-log recovery
//!   ([`DurableActor`]) with the object oracle as acceptance;
//! * [`run_object_mutation_once`] — a deliberately broken merge policy
//!   ([`BrokenFirstObserved`]) that the oracle must reject, proving the
//!   checker actually distinguishes right from wrong answers.

use std::sync::Arc;

use causal_dsm::{CausalConfig, DurableConfig, FailoverConfig, SyncPolicy, WritePolicy};
use causal_spec::{check_causal, check_object, Execution};
use dsm_objects::{
    BrokenFirstObserved, Family, GridLayout, MergePolicy, ObjOp, ObjRecorder, ObjVal,
    ObjectClient, ObjectOracle, PolicyKind,
};
use dsm_sim::{Client, RunLimits, Sim, SimOpts};
use memcore::{NodeId, Recorder};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use simnet::latency::Uniform;

use crate::chaos::{
    run_chaos_shaped, sample_throughput_config, ChaosBatch, ChaosConfig, ChaosOutcome, ChaosSetup,
};
use crate::injector::FaultInjector;
use crate::plan::{FaultPlan, LinkFaults};
use crate::recovery::DurableActor;

/// The canonical family rotation: `seed % 4` picks the object family, so
/// any contiguous seed range covers all four.
#[must_use]
pub fn object_family(seed: u64) -> Family {
    [Family::Counter, Family::Set, Family::Map, Family::Queue][(seed % 4) as usize]
}

/// The seeded object workload for `seed`: the family (from
/// [`object_family`]), its grid layout, the merge policy the run
/// declares (maps cycle through all three canonical policies with
/// `seed / 4`), and one [`ObjOp`] script per node, drawn from a
/// seed-keyed RNG stream distinct from the fault/latency streams.
///
/// Every script ends with a `Refresh` + final query, so each run
/// exercises the read-your-refreshed-view path the §4.2 dictionary
/// relies on.
#[must_use]
pub fn object_workload(
    seed: u64,
    cfg: &ChaosConfig,
) -> (Family, GridLayout, PolicyKind, Vec<Vec<ObjOp>>) {
    let family = object_family(seed);
    let nodes = cfg.nodes as usize;
    let ops = cfg.ops_per_node.max(2);
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x0B1E_C7F0_0D5E_ED01);
    let policy = match family {
        Family::Map => [
            PolicyKind::LastWriter,
            PolicyKind::OwnerWins { rows: nodes },
            PolicyKind::Commutative,
        ][((seed / 4) % 3) as usize],
        _ => PolicyKind::LastWriter,
    };
    let layout = match family {
        Family::Counter => GridLayout::new(nodes, 2),
        // Rows sized so a node appending on every op never runs out.
        Family::Set | Family::Queue => GridLayout::new(nodes, ops),
        Family::Map => GridLayout::new(nodes, 4),
    };
    let scripts = (0..nodes)
        .map(|row| {
            let mut script = Vec::with_capacity(ops + 2);
            let mut pushed = 0i64;
            for _ in 0..ops.saturating_sub(2) {
                let op = match family {
                    Family::Counter => match rng.gen_range(0..6u32) {
                        0..=2 => {
                            let d = rng.gen_range(1..=5i64);
                            ObjOp::CtrAdd(if rng.gen_bool(0.3) { -d } else { d })
                        }
                        3 => ObjOp::Refresh,
                        _ => ObjOp::CtrValue,
                    },
                    Family::Set => match rng.gen_range(0..6u32) {
                        0..=2 => ObjOp::SetAdd(rng.gen_range(0..6i64)),
                        3 => ObjOp::SetRemove(rng.gen_range(0..6i64)),
                        4 => ObjOp::SetContains(rng.gen_range(0..6i64)),
                        _ => ObjOp::Refresh,
                    },
                    Family::Map => match rng.gen_range(0..6u32) {
                        0..=2 => ObjOp::MapPut(rng.gen_range(0..4i64), rng.gen_range(1..100i64)),
                        3 => ObjOp::MapGet(rng.gen_range(0..4i64)),
                        4 => ObjOp::MapRemove(rng.gen_range(0..4i64)),
                        _ => ObjOp::Refresh,
                    },
                    Family::Queue => match rng.gen_range(0..6u32) {
                        0..=2 => {
                            pushed += 1;
                            ObjOp::QPush(row as i64 * 1_000 + pushed)
                        }
                        3..=4 => ObjOp::QPop,
                        _ => ObjOp::Refresh,
                    },
                };
                script.push(op);
            }
            script.push(ObjOp::Refresh);
            script.push(match family {
                Family::Counter => ObjOp::CtrValue,
                Family::Set => ObjOp::SetContains(rng.gen_range(0..6i64)),
                Family::Map => ObjOp::MapGet(rng.gen_range(0..4i64)),
                Family::Queue => ObjOp::QPop,
            });
            script
        })
        .collect();
    (family, layout, policy, scripts)
}

/// Assembles the [`ChaosSetup`] every object runner shares: clients on
/// the grid (optionally leaving `skip` clientless — the crash victim),
/// the grid-owned protocol configuration, and the per-object oracle as
/// the workload-specific check.
fn object_setup(
    cfg: &ChaosConfig,
    layout: GridLayout,
    scripts: Vec<Vec<ObjOp>>,
    runtime: impl MergePolicy + Clone,
    oracle: ObjectOracle,
    skip: Option<usize>,
    failover: bool,
) -> ChaosSetup<ObjVal> {
    let typed = ObjRecorder::new(layout.rows());
    let clients = scripts
        .into_iter()
        .enumerate()
        .map(|(row, script)| {
            if Some(row) == skip {
                return None;
            }
            Some(Box::new(
                ObjectClient::new(layout, row, script, runtime.clone())
                    .with_recorder(typed.clone()),
            ) as Box<dyn Client<ObjVal>>)
        })
        .collect();
    let mut builder = CausalConfig::<ObjVal>::builder(layout.rows() as u32, layout.locations())
        .owners(layout.owners())
        .policy(WritePolicy::OwnerFavored)
        .pipeline_window(cfg.pipeline_window)
        .batching(cfg.batching);
    if failover {
        builder = builder.failover(FailoverConfig::default());
    }
    ChaosSetup::new(builder.build(), clients)
        .with_check(move |_| check_object(&typed.processes(), &oracle).violations)
}

/// Runs one seeded **object** chaos execution: the seed's family and
/// scripts (from [`object_workload`]) under the seed's random fault
/// plan, checked by the causal oracle *and* the family's sequential-spec
/// oracle. Identical `(seed, cfg)` reproduce the execution exactly.
#[must_use]
pub fn run_object_chaos_once(seed: u64, cfg: &ChaosConfig) -> ChaosOutcome<ObjVal> {
    let (family, layout, policy, scripts) = object_workload(seed, cfg);
    let plan = if cfg.fault_free {
        FaultPlan::none()
    } else {
        FaultPlan::random(seed, cfg.nodes, cfg.horizon)
    };
    let oracle = ObjectOracle::new(family, layout).with_policy(policy);
    let setup = object_setup(cfg, layout, scripts, policy, oracle, None, false);
    run_chaos_shaped(seed, cfg, plan, setup, false)
}

/// Runs `count` object chaos executions with seeds `first_seed..`, each
/// under [`sample_throughput_config`] — one batch sweeps all four
/// families across the pipelining/batching grid under faults.
#[must_use]
pub fn run_object_chaos_batch(first_seed: u64, count: usize, cfg: &ChaosConfig) -> ChaosBatch<ObjVal> {
    let mut batch = ChaosBatch::default();
    for seed in first_seed..first_seed + count as u64 {
        batch.absorb(run_object_chaos_once(seed, &sample_throughput_config(cfg, seed)));
    }
    batch
}

/// Deterministically derives the object-grid crash scenario for `seed`:
/// a seed-chosen page's row owner crashes inside `[horizon/4,
/// horizon/2)` (restarting a quarter-horizon later iff `restart`), over
/// links with a light seed-derived drop rate. Returns the plan and the
/// victim's index.
fn object_crash_plan(
    seed: u64,
    cfg: &ChaosConfig,
    layout: GridLayout,
    restart: bool,
) -> (FaultPlan, u32) {
    use memcore::OwnerMap as _;
    let owners = layout.owners();
    let page = memcore::PageId::new((seed % u64::from(layout.locations())) as u32);
    let victim = owners.owner_of_page(page).index() as u32;
    let quarter = (cfg.horizon / 4).max(1);
    let crash_at = quarter + seed.wrapping_mul(7919) % quarter;
    let drop = (seed % 8) as f64 * 0.01;
    let mut plan =
        FaultPlan::uniform(LinkFaults::dropping(drop)).crash_owner_at(&owners, page, crash_at);
    if restart {
        plan = plan.restart_at(crash_at + quarter.max(2));
    }
    (plan, victim)
}

/// Runs one seeded object **owner-crash** execution: the seed's object
/// workload with failover enabled and a permanent fail-stop of a
/// seed-chosen row's owner mid-run. The victim gets no client (it is a
/// pure server), so `wedged == false` states that every surviving
/// process drove its typed object to completion across the migration —
/// and the per-object oracle accepts the recorded history.
#[must_use]
pub fn run_object_owner_crash_once(seed: u64, cfg: &ChaosConfig) -> ChaosOutcome<ObjVal> {
    // Stamped failover envelopes travel solo (see `run_owner_crash_once`).
    let cfg = ChaosConfig {
        batching: false,
        ..cfg.clone()
    };
    let (family, layout, policy, scripts) = object_workload(seed, &cfg);
    let (plan, victim) = object_crash_plan(seed, &cfg, layout, false);
    let oracle = ObjectOracle::new(family, layout).with_policy(policy);
    let setup = object_setup(
        &cfg,
        layout,
        scripts,
        policy,
        oracle,
        Some(victim as usize),
        true,
    );
    run_chaos_shaped(seed, &cfg, plan, setup, true)
}

/// Runs `count` object owner-crash executions with seeds `first_seed..`
/// (pipeline window alternating `{0, 32}` with seed parity, as in the
/// register owner-crash grid).
#[must_use]
pub fn run_object_owner_crash_batch(
    first_seed: u64,
    count: usize,
    cfg: &ChaosConfig,
) -> ChaosBatch<ObjVal> {
    let mut batch = ChaosBatch::default();
    for seed in first_seed..first_seed + count as u64 {
        batch.absorb(run_object_owner_crash_once(
            seed,
            &crate::chaos::sample_owner_crash_config(cfg, seed),
        ));
    }
    batch
}

/// The mutation run: the seed's fault plan over a map workload whose
/// **runtime** resolves conflicts with the deliberately broken
/// order-dependent [`BrokenFirstObserved`] policy while the **oracle**
/// checks against the declared [`PolicyKind::Commutative`] spec.
///
/// Every node binds key 0 to its own value and then repeatedly
/// refreshes and looks the key up, so views with two or more visible
/// bindings are common; any such lookup whose first-observed binding is
/// not the maximum diverges from the spec and must be flagged. The test
/// suite asserts a known seed is rejected — the oracle's teeth.
#[must_use]
pub fn run_object_mutation_once(seed: u64, cfg: &ChaosConfig) -> ChaosOutcome<ObjVal> {
    let nodes = cfg.nodes as usize;
    let layout = GridLayout::new(nodes, 2);
    let scripts: Vec<Vec<ObjOp>> = (0..nodes)
        .map(|row| {
            let mut script = vec![ObjOp::MapPut(0, row as i64 + 1)];
            for _ in 0..4 {
                script.push(ObjOp::Refresh);
                script.push(ObjOp::MapGet(0));
            }
            script
        })
        .collect();
    let plan = if cfg.fault_free {
        FaultPlan::none()
    } else {
        FaultPlan::random(seed, cfg.nodes, cfg.horizon)
    };
    let oracle = ObjectOracle::new(Family::Map, layout).with_policy(PolicyKind::Commutative);
    let setup = object_setup(cfg, layout, scripts, BrokenFirstObserved, oracle, None, false);
    run_chaos_shaped(seed, cfg, plan, setup, false)
}

/// Runs one seeded object **kill -9 + recovery** execution: the seed's
/// object workload on a durable cluster ([`DurableActor`], write-ahead
/// log under [`SyncPolicy::EveryOp`]) whose seed-chosen row owner is
/// killed mid-run — losing its unsynced WAL tail plus a seeded
/// mid-record tear — and restarted against the surviving bytes.
///
/// Acceptance is the full stack: termination of every surviving client,
/// causality of the recorded register execution, the victim's
/// incarnation bump, no certified write lost at the recovery instant
/// (the durability oracle), **and** the per-object sequential-spec
/// oracle over the typed traces.
#[must_use]
pub fn run_object_recovery_once(seed: u64, cfg: &ChaosConfig) -> ChaosOutcome<ObjVal> {
    let cfg = ChaosConfig {
        batching: false,
        ..cfg.clone()
    };
    let (family, layout, policy, scripts) = object_workload(seed, &cfg);
    let (plan, victim) = object_crash_plan(seed, &cfg, layout, true);
    let faults: Arc<dyn simnet::FaultHook> = Arc::new(FaultInjector::new(seed, plan.clone()));
    let recorder: Recorder<ObjVal> = Recorder::new(cfg.nodes as usize);
    let typed = ObjRecorder::new(layout.rows());
    let config = CausalConfig::<ObjVal>::builder(cfg.nodes, layout.locations())
        .owners(layout.owners())
        .policy(WritePolicy::OwnerFavored)
        .pipeline_window(cfg.pipeline_window)
        .failover(FailoverConfig::default())
        .durability(DurableConfig {
            sync: SyncPolicy::EveryOp,
            checkpoint_every: 32,
        })
        .build();
    let actors = (0..cfg.nodes)
        .map(|i| {
            DurableActor::new(
                NodeId::new(i),
                config.clone(),
                cfg.rto,
                seed ^ u64::from(i).wrapping_mul(0xA24B_AED4_963E_E407),
            )
        })
        .collect();
    let mut sim = Sim::new(
        actors,
        SimOpts {
            latency: Box::new(Uniform::new(1, 8)),
            seed,
            recorder: Some(recorder.clone()),
            faults: Some(faults),
            ..SimOpts::default()
        },
    );
    for (row, script) in scripts.into_iter().enumerate() {
        if row == victim as usize {
            continue;
        }
        sim.set_client(
            row,
            ObjectClient::new(layout, row, script, policy).with_recorder(typed.clone()),
        );
    }
    let limits = RunLimits {
        max_events: cfg.limits.max_events,
        max_time: cfg.limits.max_time.min(cfg.horizon.saturating_mul(10)),
    };
    let report = sim.run(limits);
    let exec = Execution::from_recorder(&recorder);
    let mut violations: Vec<String> = match check_causal(&exec) {
        Ok(causal) => causal.violations.iter().map(ToString::to_string).collect(),
        Err(err) => vec![format!("execution graph error: {err}")],
    };
    let victim_actor = sim.actor(victim as usize);
    if victim_actor.restarts() == 0 {
        violations.push(format!("victim {victim} never restarted"));
    } else if victim_actor.incarnation() == 0 {
        violations.push(format!(
            "victim {victim} restarted without bumping incarnation"
        ));
    }
    violations.extend(victim_actor.violations().iter().cloned());
    let oracle = ObjectOracle::new(family, layout).with_policy(policy);
    violations.extend(check_object(&typed.processes(), &oracle).violations);
    ChaosOutcome {
        seed,
        plan,
        wedged: !report.all_done,
        violations,
        time: report.time,
        messages: sim.messages().snapshot(),
        ops_recorded: recorder.total_ops(),
        ops: recorder.processes(),
        pipeline_window: cfg.pipeline_window,
        batching: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_chaos_covers_every_family_cleanly() {
        let cfg = ChaosConfig::default();
        for seed in 0..4u64 {
            let (family, ..) = object_workload(seed, &cfg);
            assert_eq!(family, object_family(seed));
            let outcome = run_object_chaos_once(seed, &cfg);
            assert!(outcome.ok(), "family {}: {outcome}", family.name());
            assert!(outcome.ops_recorded > 0);
        }
    }

    #[test]
    fn object_runs_reproduce_exactly() {
        let cfg = sample_throughput_config(&ChaosConfig::default(), 5);
        let a = run_object_chaos_once(5, &cfg);
        let b = run_object_chaos_once(5, &cfg);
        assert_eq!(a.plan, b.plan);
        assert_eq!(a.time, b.time);
        assert_eq!(a.messages.by_kind(), b.messages.by_kind());
        assert_eq!(a.ops, b.ops);
    }

    #[test]
    fn object_batch_sweeps_the_grid_green() {
        let batch = run_object_chaos_batch(0, 8, &ChaosConfig::default());
        assert_eq!(batch.runs, 8);
        assert!(batch.all_ok(), "{batch}");
        assert!(batch.protocol_messages > 0);
    }

    #[test]
    fn broken_merge_policy_is_rejected_by_the_oracle() {
        // A seeded chaos run whose views are known to observe concurrent
        // bindings: the broken first-observed runtime answer diverges
        // from the declared commutative spec and must be flagged.
        let outcome = run_object_mutation_once(1, &ChaosConfig::default());
        assert!(!outcome.ok(), "mutation escaped the oracle: {outcome}");
        assert!(
            outcome
                .violations
                .iter()
                .any(|v| v.contains("sequential spec")),
            "{outcome}"
        );
    }

    #[test]
    fn typed_object_survives_owner_failover() {
        let cfg = ChaosConfig::default();
        for seed in 0..2u64 {
            let outcome = run_object_owner_crash_once(seed, &cfg);
            assert!(outcome.ok(), "seed {seed}: {outcome}");
            // The plan really contains a permanent owner crash.
            assert!(outcome.plan.crashes.iter().any(|c| c.restart == u64::MAX));
        }
    }

    #[test]
    fn typed_object_survives_kill_and_wal_recovery() {
        let cfg = ChaosConfig::default();
        let outcome = run_object_recovery_once(0, &cfg);
        assert!(outcome.ok(), "{outcome}");
        // The plan crashes *and* restarts the victim.
        assert!(outcome.plan.crashes.iter().all(|c| c.restart != u64::MAX));
    }

    #[test]
    fn object_owner_crash_runs_reproduce_exactly() {
        let cfg = crate::chaos::sample_owner_crash_config(&ChaosConfig::default(), 3);
        let a = run_object_owner_crash_once(3, &cfg);
        let b = run_object_owner_crash_once(3, &cfg);
        assert_eq!(a.plan, b.plan);
        assert_eq!(a.time, b.time);
        assert_eq!(a.ops, b.ops);
    }
}
