//! The chaos harness: random workloads under random fault plans, with the
//! causal checker as oracle.
//!
//! Each run is a pure function of one seed: the seed generates the
//! workload ([`dsm_apps::WorkloadSpec`]), the fault plan
//! ([`FaultPlan::random`]), and the injector's dice — so any failure is
//! reproduced exactly by re-running the same seed, and the printed
//! [`ChaosOutcome`] *is* the reproduction recipe.
//!
//! The oracle is [`causal_spec::check_causal`]: every recorded execution
//! must still be correct on causal memory, because the session layer is
//! supposed to make the faulty network indistinguishable (to the
//! protocol) from the reliable FIFO network the paper assumes. A wedged
//! run — clients not finishing within the event/time limits — is also a
//! failure: healing partitions plus restarting crashes plus retransmission
//! must always let the protocol terminate.

use std::fmt;
use std::sync::Arc;

use causal_dsm::CausalConfig;
use causal_spec::{check_causal, Execution};
use dsm_apps::{WorkloadOp, WorkloadSpec};
use dsm_sim::{Client, ClientOp, RunLimits, Script, SimOpts};
use memcore::{Recorder, StatsSnapshot, Value, Word};
use simnet::latency::Uniform;

use crate::injector::FaultInjector;
use crate::plan::FaultPlan;
use crate::session::session_causal_sim;

/// Shape of one chaos run (everything except the seed).
#[derive(Clone, Debug)]
pub struct ChaosConfig {
    /// Cluster size.
    pub nodes: u32,
    /// Locations owned by each node.
    pub locations_per_node: u32,
    /// Operations issued by each node's client.
    pub ops_per_node: usize,
    /// Fraction of reads in the workload.
    pub read_ratio: f64,
    /// Probability an operation targets the issuing node's own partition.
    pub locality: f64,
    /// Session-layer retransmission timeout (simulator time units).
    pub rto: u64,
    /// Expected run length, used to scale partition/crash windows in
    /// [`FaultPlan::random`].
    pub horizon: u64,
    /// Event/time budget; exhausting it counts as a wedged run.
    pub limits: RunLimits,
    /// Run the same seeded workload on a reliable FIFO network instead
    /// (no fault plan, no injector) — the baseline for measuring what the
    /// faults and the session layer's recovery traffic cost.
    pub fault_free: bool,
    /// Bounded write-pipeline window handed to the protocol configuration
    /// (`0` disables pipelining — the paper's blocking protocol).
    pub pipeline_window: u32,
    /// Transport batching of pipelined writes (owner-side coalesced
    /// invalidation sweeps, batched reply envelopes).
    pub batching: bool,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            nodes: 3,
            locations_per_node: 2,
            ops_per_node: 12,
            read_ratio: 0.5,
            locality: 0.6,
            rto: 40,
            horizon: 600,
            limits: RunLimits {
                max_events: 2_000_000,
                max_time: u64::MAX,
            },
            fault_free: false,
            pipeline_window: 0,
            batching: false,
        }
    }
}

/// Everything needed to understand — and reproduce — one chaos run.
///
/// Generic over the cell value type so object workloads (`ObjVal` cells)
/// and register workloads (the default, [`Word`]) share one outcome and
/// one batch shape.
#[derive(Clone, Debug)]
pub struct ChaosOutcome<V: Value = Word> {
    /// The seed that determines the whole run.
    pub seed: u64,
    /// The fault plan the run executed under.
    pub plan: FaultPlan,
    /// `true` iff some client failed to finish within the limits.
    pub wedged: bool,
    /// Causal-memory violations found by the oracle (as rendered
    /// [`causal_spec::Violation`]s; empty for correct runs).
    pub violations: Vec<String>,
    /// Final simulated time.
    pub time: u64,
    /// Message counters, including session-layer overhead kinds.
    pub messages: StatsSnapshot,
    /// Operations the oracle checked.
    pub ops_recorded: usize,
    /// The recorded per-process operation logs — two runs of the same
    /// seed must produce these byte-for-byte identical.
    pub ops: Vec<Vec<memcore::OpRecord<V>>>,
    /// Pipeline window the run executed under (part of the reproduction
    /// recipe: [`run_chaos_batch`] samples it per seed).
    pub pipeline_window: u32,
    /// Whether transport batching was on (ditto).
    pub batching: bool,
}

impl<V: Value> ChaosOutcome<V> {
    /// `true` iff the run terminated and the oracle found no violations.
    #[must_use]
    pub fn ok(&self) -> bool {
        !self.wedged && self.violations.is_empty()
    }
}

impl<V: Value> fmt::Display for ChaosOutcome<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.ok() {
            return write!(
                f,
                "seed {}: ok ({} ops, {} msgs, t={})",
                self.seed,
                self.ops_recorded,
                self.messages.total(),
                self.time
            );
        }
        writeln!(
            f,
            "seed {}: FAILED — reproduce with this seed + plan:",
            self.seed
        )?;
        writeln!(f, "  plan: {:?}", self.plan)?;
        writeln!(
            f,
            "  pipeline_window: {}, batching: {}",
            self.pipeline_window, self.batching
        )?;
        if self.wedged {
            writeln!(f, "  wedged: clients did not finish (t={})", self.time)?;
        }
        for v in &self.violations {
            writeln!(f, "  violation: {v}")?;
        }
        Ok(())
    }
}

/// The per-node client roster a chaos setup runs: one entry per node in
/// node order, `None` leaving the node clientless (a pure server).
pub type ClientRoster<V> = Vec<Option<Box<dyn Client<V>>>>;

/// A workload-specific check run on the recorded execution *after* the
/// causal oracle, returning rendered violations.
pub type ExtraCheck<V> = Box<dyn FnOnce(&Execution<V>) -> Vec<String> + Send>;

/// One fully-assembled chaos workload, ready for [`run_chaos_shaped`]:
/// the protocol configuration, the per-node clients (`None` leaves a node
/// clientless — a pure server, as owner-crash victims are), and any
/// workload-specific checks to run *on top of* the causal oracle.
///
/// This is the seam that makes chaos plans generic over workload: the
/// register path, the owner-crash path, and the typed-object workloads
/// all reduce to building one of these.
pub struct ChaosSetup<V: Value> {
    /// The protocol configuration the cluster runs under.
    pub config: CausalConfig<V>,
    /// One client per node, in node order; `None` = no client.
    pub clients: ClientRoster<V>,
    /// Workload-specific violations (e.g. a per-object sequential-spec
    /// check), appended after the causal check. Receives the recorded
    /// execution.
    pub check: ExtraCheck<V>,
}

impl<V: Value> ChaosSetup<V> {
    /// A setup running `clients` under `config` with no checks beyond the
    /// causal oracle.
    #[must_use]
    pub fn new(config: CausalConfig<V>, clients: ClientRoster<V>) -> Self {
        ChaosSetup {
            config,
            clients,
            check: Box::new(|_| Vec::new()),
        }
    }

    /// Adds a workload-specific check (run after the causal oracle).
    #[must_use]
    pub fn with_check(
        mut self,
        check: impl FnOnce(&Execution<V>) -> Vec<String> + Send + 'static,
    ) -> Self {
        self.check = Box::new(check);
        self
    }
}

/// The generic chaos engine every workload family shares: replays
/// `setup`'s clients through the session-layered causal protocol under
/// `plan`, in the deterministic simulator, then runs the causal oracle
/// plus the setup's own checks.
///
/// `clamp_time` bounds the run to `10 × horizon` simulated time —
/// required whenever the configuration arms heartbeat timers (failover),
/// which never let the event queue drain on its own.
///
/// Identical `(seed, cfg, plan, setup)` always produce an identical
/// execution — identical message counts and identical recorded
/// operations.
#[must_use]
pub fn run_chaos_shaped<V: Value>(
    seed: u64,
    cfg: &ChaosConfig,
    plan: FaultPlan,
    setup: ChaosSetup<V>,
    clamp_time: bool,
) -> ChaosOutcome<V> {
    let faults: Option<Arc<dyn simnet::FaultHook>> = if cfg.fault_free {
        None
    } else {
        Some(Arc::new(FaultInjector::new(seed, plan.clone())))
    };
    let recorder: Recorder<V> = Recorder::new(cfg.nodes as usize);
    let mut sim = session_causal_sim(
        &setup.config,
        cfg.rto,
        SimOpts {
            latency: Box::new(Uniform::new(1, 8)),
            seed,
            recorder: Some(recorder.clone()),
            faults,
            ..SimOpts::default()
        },
    );
    for (node, client) in setup.clients.into_iter().enumerate() {
        if let Some(client) = client {
            sim.set_client_boxed(node, client);
        }
    }
    let limits = if clamp_time {
        RunLimits {
            max_events: cfg.limits.max_events,
            max_time: cfg.limits.max_time.min(cfg.horizon.saturating_mul(10)),
        }
    } else {
        cfg.limits
    };
    let report = sim.run(limits);
    let exec = Execution::from_recorder(&recorder);
    let mut violations: Vec<String> = match check_causal(&exec) {
        Ok(causal) => causal.violations.iter().map(ToString::to_string).collect(),
        Err(err) => vec![format!("execution graph error: {err}")],
    };
    violations.extend((setup.check)(&exec));
    ChaosOutcome {
        seed,
        plan,
        wedged: !report.all_done,
        violations,
        time: report.time,
        messages: sim.messages().snapshot(),
        ops_recorded: recorder.total_ops(),
        ops: recorder.processes(),
        pipeline_window: cfg.pipeline_window,
        batching: cfg.batching,
    }
}

/// The seeded register workload both register-path runners share, as
/// boxed scripts (one per node).
fn register_clients(seed: u64, cfg: &ChaosConfig) -> (WorkloadSpec, ClientRoster<Word>) {
    let spec = WorkloadSpec {
        nodes: cfg.nodes as usize,
        locations_per_node: cfg.locations_per_node as usize,
        ops_per_node: cfg.ops_per_node,
        read_ratio: cfg.read_ratio,
        locality: cfg.locality,
        seed,
    };
    let clients = spec
        .generate()
        .into_iter()
        .map(|ops| {
            let script: Vec<ClientOp<Word>> = ops
                .into_iter()
                .map(|op| match op {
                    WorkloadOp::Read(l) => ClientOp::Read(l),
                    WorkloadOp::Write(l, v) => ClientOp::Write(l, Word::Int(v)),
                })
                .collect();
            Some(Box::new(Script::new(script)) as Box<dyn Client<Word>>)
        })
        .collect();
    (spec, clients)
}

/// Runs one seeded chaos execution: a random workload under a random
/// fault plan, replayed through the session-layered causal protocol in
/// the deterministic simulator, then checked against the causal
/// specification.
///
/// Identical `(seed, cfg)` always produce an identical execution —
/// identical message counts and identical recorded operations.
#[must_use]
pub fn run_chaos_once(seed: u64, cfg: &ChaosConfig) -> ChaosOutcome {
    let (spec, clients) = register_clients(seed, cfg);
    let plan = if cfg.fault_free {
        FaultPlan::none()
    } else {
        FaultPlan::random(seed, cfg.nodes, cfg.horizon)
    };
    let config = CausalConfig::<Word>::builder(cfg.nodes, spec.locations())
        .pipeline_window(cfg.pipeline_window)
        .batching(cfg.batching)
        .build();
    run_chaos_shaped(seed, cfg, plan, ChaosSetup::new(config, clients), false)
}

/// Result of a batch of chaos runs.
#[derive(Clone, Debug)]
pub struct ChaosBatch<V: Value = Word> {
    /// Runs executed.
    pub runs: usize,
    /// Outcomes that wedged or violated causality (empty on success).
    pub failures: Vec<ChaosOutcome<V>>,
    /// Protocol messages across all runs (payload kinds only).
    pub protocol_messages: u64,
    /// Session/fault overhead messages across all runs (retransmissions,
    /// acks, duplicates, drops).
    pub overhead_messages: u64,
}

impl<V: Value> ChaosBatch<V> {
    /// `true` iff every run terminated correctly.
    #[must_use]
    pub fn all_ok(&self) -> bool {
        self.failures.is_empty()
    }

    /// Folds `outcome` into the batch, keeping failures for reproduction.
    pub fn absorb(&mut self, outcome: ChaosOutcome<V>) {
        self.runs += 1;
        self.protocol_messages += outcome.messages.protocol_total();
        self.overhead_messages += outcome.messages.overhead_total();
        if !outcome.ok() {
            self.failures.push(outcome);
        }
    }
}

impl<V: Value> Default for ChaosBatch<V> {
    fn default() -> Self {
        ChaosBatch {
            runs: 0,
            failures: Vec::new(),
            protocol_messages: 0,
            overhead_messages: 0,
        }
    }
}

impl<V: Value> fmt::Display for ChaosBatch<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "chaos: {} runs, {} failures ({} protocol msgs, {} overhead msgs)",
            self.runs,
            self.failures.len(),
            self.protocol_messages,
            self.overhead_messages
        )?;
        for failure in &self.failures {
            write!(f, "{failure}")?;
        }
        Ok(())
    }
}

/// The throughput-layer grid [`run_chaos_batch`] walks: the pipeline
/// window cycles through `{0, 4, 32}` with the seed, batching follows
/// seed parity. A deterministic function of `(base, seed)`, so a batch
/// failure reproduces by re-running its seed through this same sampling
/// (the outcome also records the sampled values directly).
#[must_use]
pub fn sample_throughput_config(base: &ChaosConfig, seed: u64) -> ChaosConfig {
    let mut cfg = base.clone();
    cfg.pipeline_window = [0, 4, 32][(seed % 3) as usize];
    cfg.batching = seed % 2 == 1;
    cfg
}

/// Runs `count` chaos executions with seeds `first_seed..first_seed +
/// count`, collecting every failure with its reproduction recipe. Each
/// seed runs under [`sample_throughput_config`], so one batch sweeps the
/// whole pipelining/batching grid under faults.
#[must_use]
pub fn run_chaos_batch(first_seed: u64, count: usize, cfg: &ChaosConfig) -> ChaosBatch {
    let mut batch = ChaosBatch::default();
    for seed in first_seed..first_seed + count as u64 {
        batch.absorb(run_chaos_once(seed, &sample_throughput_config(cfg, seed)));
    }
    batch
}

// ---------------------------------------------------------------------
// Owner-crash chaos: permanent fail-stop of an owner, failover as the
// survival mechanism, the causal checker as oracle.
// ---------------------------------------------------------------------

/// Deterministically derives the owner-crash scenario for `seed`: the
/// victim page, its static owner, and the crash instant (inside
/// `[horizon/4, horizon/2)`), plus a light seed-derived drop rate so the
/// crash composes with an imperfect network. Pure data — printing the
/// returned plan with the seed is the complete reproduction recipe.
#[must_use]
pub fn owner_crash_plan(seed: u64, cfg: &ChaosConfig, pages: u32) -> (FaultPlan, u32) {
    let config = CausalConfig::<Word>::builder(cfg.nodes, pages).build();
    let page = memcore::PageId::new((seed % u64::from(config.page_count())) as u32);
    let victim = {
        use memcore::OwnerMap as _;
        config.owners().owner_of_page(page).index() as u32
    };
    let quarter = (cfg.horizon / 4).max(1);
    let crash_at = quarter + seed.wrapping_mul(7919) % quarter;
    let drop = (seed % 8) as f64 * 0.01;
    let plan = FaultPlan::uniform(crate::plan::LinkFaults::dropping(drop)).crash_owner_at(
        config.owners().as_ref(),
        page,
        crash_at,
    );
    (plan, victim)
}

/// Runs one seeded **owner-crash** chaos execution: the same seeded
/// workload as [`run_chaos_once`], but with owner failover enabled and a
/// fault plan whose centerpiece is a *permanent* crash of a seed-chosen
/// page's static owner partway through the run. The victim serves, then
/// fails forever; its pages must migrate to their successors (heartbeat
/// suspicion or request timeout — both paths occur across seeds) for the
/// surviving clients to finish.
///
/// The victim gets no client of its own — it is a pure server in these
/// runs — so `wedged == false` states exactly the acceptance property:
/// every *surviving* client ran to completion despite the dead owner.
/// The oracle is unchanged: the recorded execution must still satisfy
/// [`causal_spec::check_causal`].
///
/// `cfg.batching` is ignored (the failover layer sends each pipelined
/// write in its own stamped envelope); `cfg.limits.max_time` is clamped
/// to a finite multiple of the horizon because heartbeat timers never
/// let the event queue drain on their own.
#[must_use]
pub fn run_owner_crash_once(seed: u64, cfg: &ChaosConfig) -> ChaosOutcome {
    // The failover layer sends each pipelined write in its own stamped
    // envelope, so batching is forced off for the run and its recipe.
    let cfg = ChaosConfig {
        batching: false,
        ..cfg.clone()
    };
    let (spec, mut clients) = register_clients(seed, &cfg);
    let (plan, victim) = owner_crash_plan(seed, &cfg, spec.locations());
    clients[victim as usize] = None;
    let config = CausalConfig::<Word>::builder(cfg.nodes, spec.locations())
        .pipeline_window(cfg.pipeline_window)
        .failover(causal_dsm::FailoverConfig::default())
        .build();
    run_chaos_shaped(seed, &cfg, plan, ChaosSetup::new(config, clients), true)
}

/// The owner-crash grid: the pipeline window alternates between `0` (the
/// paper's blocking protocol) and `32` (deep pipelining) with seed
/// parity, so one batch covers writes-in-flight-during-migration in both
/// modes. Deterministic in `(base, seed)` — part of the reproduction
/// recipe.
#[must_use]
pub fn sample_owner_crash_config(base: &ChaosConfig, seed: u64) -> ChaosConfig {
    let mut cfg = base.clone();
    cfg.pipeline_window = [0, 32][(seed % 2) as usize];
    cfg.batching = false;
    cfg
}

/// Runs `count` owner-crash chaos executions with seeds `first_seed..`,
/// each under [`sample_owner_crash_config`], collecting every failure
/// with its reproduction recipe.
#[must_use]
pub fn run_owner_crash_batch(first_seed: u64, count: usize, cfg: &ChaosConfig) -> ChaosBatch {
    let mut batch = ChaosBatch::default();
    for seed in first_seed..first_seed + count as u64 {
        batch.absorb(run_owner_crash_once(
            seed,
            &sample_owner_crash_config(cfg, seed),
        ));
    }
    batch
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_free_chaos_runs_clean() {
        // Horizon aside, seed-independent sanity: a run with the default
        // config must finish and satisfy the oracle.
        let outcome = run_chaos_once(3, &ChaosConfig::default());
        assert!(outcome.ok(), "{outcome}");
        assert!(outcome.ops_recorded > 0);
    }

    #[test]
    fn same_seed_reproduces_the_same_execution() {
        let cfg = ChaosConfig::default();
        let a = run_chaos_once(11, &cfg);
        let b = run_chaos_once(11, &cfg);
        assert_eq!(a.plan, b.plan);
        assert_eq!(a.time, b.time);
        assert_eq!(a.messages.by_kind(), b.messages.by_kind());
        assert_eq!(a.ops, b.ops);
    }

    #[test]
    fn sampled_configs_reproduce_exactly() {
        // The batch's per-seed sampling is part of the reproduction
        // recipe: the same seed must map to the same grid point, and the
        // run under it must replay byte-for-byte.
        let base = ChaosConfig::default();
        for seed in [1u64, 4, 5] {
            let cfg = sample_throughput_config(&base, seed);
            assert_eq!(cfg.pipeline_window, [0, 4, 32][(seed % 3) as usize]);
            assert_eq!(cfg.batching, seed % 2 == 1);
            let a = run_chaos_once(seed, &cfg);
            let b = run_chaos_once(seed, &cfg);
            assert_eq!(a.plan, b.plan);
            assert_eq!(a.time, b.time);
            assert_eq!(a.messages.by_kind(), b.messages.by_kind());
            assert_eq!(a.ops, b.ops);
            assert_eq!(a.pipeline_window, cfg.pipeline_window);
            assert_eq!(a.batching, cfg.batching);
        }
    }

    #[test]
    fn batch_reports_overhead_and_failures() {
        let batch = run_chaos_batch(0, 3, &ChaosConfig::default());
        assert_eq!(batch.runs, 3);
        assert!(batch.all_ok(), "{batch}");
        assert!(batch.protocol_messages > 0);
    }

    #[test]
    fn owner_crash_run_survives_a_dead_owner() {
        let cfg = ChaosConfig::default();
        let outcome = run_owner_crash_once(0, &cfg);
        assert!(outcome.ok(), "{outcome}");
        // Every surviving client's ops were recorded and checked.
        assert_eq!(
            outcome.ops_recorded,
            (cfg.nodes as usize - 1) * cfg.ops_per_node
        );
        // The plan really contains a permanent owner crash.
        assert!(outcome.plan.crashes.iter().any(|c| c.restart == u64::MAX));
        // The failure detector ran: heartbeats are counted as overhead.
        let heartbeats = outcome
            .messages
            .by_kind()
            .iter()
            .find(|(k, _)| *k == memcore::kinds::HEARTBEAT)
            .map_or(0, |(_, n)| *n);
        assert!(heartbeats > 0, "no heartbeats recorded");
    }

    #[test]
    fn owner_crash_runs_reproduce_exactly() {
        let base = ChaosConfig::default();
        for seed in [2u64, 3] {
            let cfg = sample_owner_crash_config(&base, seed);
            assert_eq!(cfg.pipeline_window, [0, 32][(seed % 2) as usize]);
            let a = run_owner_crash_once(seed, &cfg);
            let b = run_owner_crash_once(seed, &cfg);
            assert_eq!(a.plan, b.plan);
            assert_eq!(a.time, b.time);
            assert_eq!(a.messages.by_kind(), b.messages.by_kind());
            assert_eq!(a.ops, b.ops);
        }
    }
}
