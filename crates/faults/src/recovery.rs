//! Restart-with-disk chaos: crash a durable owner at an injected WAL
//! offset, restart it against the surviving bytes, and check that the
//! recovered node rejoins as a full peer without losing a certified
//! write or corrupting causality.
//!
//! The moving parts assembled here:
//!
//! * [`DurableActor`] — a [`SessionActor`]-wrapped causal node whose
//!   protocol state journals into a [`Store`] over a [`MemDisk`] kept
//!   *outside* the actor (the platter survives the process). On
//!   [`Actor::on_restart`] the disk is crashed — losing the unsynced
//!   tail plus a seeded mid-record tear — then reopened, the state
//!   rebuilt via [`CausalState::recover`], and the new life announced
//!   with a session `Hello` so peers fast-forward it by retransmission
//!   instead of re-educating it via SUSPECT.
//! * [`recovery_crash_plan`] — the seeded scenario: the owner of a
//!   seed-chosen page crashes partway through the run and restarts a
//!   quarter-horizon later, composing with a light seed-derived drop
//!   rate.
//! * [`run_recovery_chaos_once`] / [`run_recovery_chaos_batch`] — the
//!   harness, with an **extended oracle**: the run must terminate, the
//!   recorded execution must satisfy [`causal_spec::check_causal`], the
//!   victim must actually have restarted with a bumped incarnation,
//!   and — under [`SyncPolicy::EveryOp`], where certified implies
//!   durable — every write the victim certified before the crash must
//!   be readable in its recovered state (checked at the recovery
//!   instant, before any post-restart traffic).
//!
//! Under weaker sync policies a certified write *may* legally be lost
//! (that is the policy's contract), so the per-write oracle arms only
//! under `EveryOp`; [`run_recovery_liveness_once`] runs the same
//! scenario under [`SyncPolicy::Interval`] checking termination and
//! causality alone.

use std::fmt::Write as _;
use std::sync::Arc;

use causal_dsm::{
    CausalConfig, CausalState, DurableConfig, MemDisk, Store, SyncPolicy, WalRecord,
};
use causal_spec::{check_causal, Execution};
use dsm_apps::{WorkloadOp, WorkloadSpec};
use dsm_sim::{Actor, CausalActor, ClientOp, Effects, RunLimits, Script, Sim, SimOpts};
use memcore::{Location, NodeId, Recorder, Value, Word, WriteId};
use simnet::codec::Wire;
use simnet::latency::Uniform;

use crate::chaos::{ChaosConfig, ChaosOutcome};
use crate::injector::FaultInjector;
use crate::plan::FaultPlan;
use crate::session::{SessionActor, SessionMsg};

/// A causal node with a write-ahead log under it and a session layer
/// around it, restartable by the simulator's crash machinery.
///
/// Event flow: every submit/deliver/timer runs the wrapped protocol,
/// then drains the state's journal into the store — append happens
/// before the effects (including any reply) go on the wire, so under
/// [`SyncPolicy::EveryOp`] a certified write is durable by the time the
/// client can observe it.
#[derive(Debug)]
pub struct DurableActor<V: Value + Wire> {
    inner: SessionActor<V, CausalActor<V>>,
    /// The platter: shared-handle in-memory disk that survives the
    /// simulated process restart.
    disk: MemDisk,
    store: Store<V>,
    config: CausalConfig<V>,
    rto: u64,
    /// Seeds the per-crash torn-tail length, so the WAL offset the
    /// crash lands on is part of the reproduction recipe.
    torn_seed: u64,
    restarts: u32,
    /// Extended-oracle violations found at recovery instants.
    violations: Vec<String>,
}

impl<V: Value + Wire> DurableActor<V> {
    /// A fresh durable node (virgin disk, incarnation 0).
    ///
    /// # Panics
    ///
    /// Panics if `config` carries no durability configuration, or if
    /// `rto` is zero.
    #[must_use]
    pub fn new(id: NodeId, config: CausalConfig<V>, rto: u64, torn_seed: u64) -> Self {
        let dcfg = config
            .durability()
            .expect("DurableActor requires a durability config");
        let disk = MemDisk::new();
        let (store, recovered) = Store::open(Box::new(disk.clone()), dcfg);
        debug_assert!(recovered.is_virgin());
        let state = CausalState::new(id, config.clone());
        let mut actor = DurableActor {
            inner: SessionActor::new(CausalActor::new(state), rto),
            disk,
            store,
            config,
            rto,
            torn_seed,
            restarts: 0,
            violations: Vec::new(),
        };
        actor.persist(); // the baseline Node record
        // Identity is durable before the node joins, whatever the sync
        // policy: a crash must never recover a virgin disk once this
        // life has talked to anyone, or the next life would reuse
        // incarnation 0 and its frames would not be fenced.
        actor.store.sync();
        actor
    }

    /// How many times this node crash-recovered.
    #[must_use]
    pub fn restarts(&self) -> u32 {
        self.restarts
    }

    /// The session incarnation the node currently runs as.
    #[must_use]
    pub fn incarnation(&self) -> u32 {
        self.inner.inner().state().incarnation()
    }

    /// Extended-oracle violations recorded at recovery instants (empty
    /// for correct runs).
    #[must_use]
    pub fn violations(&self) -> &[String] {
        &self.violations
    }

    /// The recovered protocol state (inspection).
    #[must_use]
    pub fn state(&self) -> &CausalState<V> {
        self.inner.inner().state()
    }

    /// Drains the protocol state's journal into the store, appending
    /// (and syncing per policy) before the caller sends any reply, and
    /// checkpointing when enough records accumulated.
    fn persist(&mut self) {
        let records = self.inner.inner_mut().state_mut().take_journal();
        if records.is_empty() {
            return;
        }
        self.store.append(&records);
        if self.store.wants_checkpoint() {
            let image = self.inner.inner().state().durable_image();
            self.store.checkpoint(&image);
        }
    }

    /// The per-write oracle, run at the recovery instant: fold the
    /// recovered record stream to the last applied certified write per
    /// location, and demand the rebuilt state reads back exactly that
    /// write for every page it still owns. Sound only when certified
    /// implies durable, i.e. under [`SyncPolicy::EveryOp`].
    fn check_certified(&mut self, records: &[WalRecord<V>], state: &CausalState<V>) {
        let page_size = self.config.page_size();
        let mut last: std::collections::HashMap<Location, (Arc<V>, WriteId)> =
            std::collections::HashMap::new();
        for record in records {
            match record {
                WalRecord::Write {
                    loc,
                    value,
                    wid,
                    applied: true,
                    ..
                } => {
                    last.insert(*loc, (Arc::clone(value), *wid));
                }
                // A checkpoint image's owned-page installs compact the
                // writes before them: they reset the fold.
                WalRecord::PageInstall {
                    page,
                    slots,
                    shadow: false,
                    ..
                } => {
                    for (i, (value, wid)) in slots.iter().enumerate() {
                        let loc = Location::new(page.index() as u32 * page_size + i as u32);
                        if wid.is_initial() {
                            last.remove(&loc);
                        } else {
                            last.insert(loc, (Arc::clone(value), *wid));
                        }
                    }
                }
                _ => {}
            }
        }
        for (loc, (_value, wid)) in last {
            // Pages no longer owned were pruned by recovery (their
            // authoritative copy lives at the migrated owner now).
            if state.current_owner(loc.page(page_size)) != state.id() {
                continue;
            }
            match state.peek(loc) {
                // Write identity is the check: equal ids mean the slot
                // holds exactly the certified write (values ride along).
                Some((_, w)) if w == wid => {}
                got => {
                    let mut msg = String::new();
                    let _ = write!(
                        msg,
                        "certified write lost at {loc:?}: expected {wid:?}, recovered {:?}",
                        got.map(|(_, w)| w)
                    );
                    self.violations.push(msg);
                }
            }
        }
    }
}

impl<V: Value + Wire> Actor<V> for DurableActor<V> {
    type Msg = SessionMsg<causal_dsm::Msg<V>>;

    fn id(&self) -> NodeId {
        self.inner.id()
    }

    fn submit(&mut self, op: &ClientOp<V>) -> Effects<V, Self::Msg> {
        let effects = self.inner.submit(op);
        self.persist();
        effects
    }

    fn deliver(&mut self, from: NodeId, msg: Self::Msg) -> Effects<V, Self::Msg> {
        let effects = self.inner.deliver(from, msg);
        self.persist();
        effects
    }

    fn submit_at(&mut self, now: u64, op: &ClientOp<V>) -> Effects<V, Self::Msg> {
        let effects = self.inner.submit_at(now, op);
        self.persist();
        effects
    }

    fn deliver_at(&mut self, now: u64, from: NodeId, msg: Self::Msg) -> Effects<V, Self::Msg> {
        let effects = self.inner.deliver_at(now, from, msg);
        self.persist();
        effects
    }

    fn next_timer(&self) -> Option<u64> {
        self.inner.next_timer()
    }

    fn on_timer(&mut self, now: u64) -> Effects<V, Self::Msg> {
        let effects = self.inner.on_timer(now);
        self.persist();
        effects
    }

    fn on_restart(&mut self, _now: u64) -> Effects<V, Self::Msg> {
        self.restarts += 1;
        // The crash decides what the platter kept: everything synced
        // plus a seeded sliver of torn tail (a mid-record tear whenever
        // it lands inside a frame). Deterministic in (torn_seed,
        // restart ordinal) — part of the reproduction recipe.
        let torn = ((self
            .torn_seed
            .wrapping_add(u64::from(self.restarts).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
            % 24) as usize;
        self.disk.crash(torn);
        let dcfg = self
            .config
            .durability()
            .expect("DurableActor requires a durability config");
        let (store, recovered) = Store::open(Box::new(self.disk.clone()), dcfg);
        self.store = store;
        let id = self.inner.id();
        let inc = recovered.next_incarnation();
        let state = if recovered.is_virgin() {
            CausalState::new(id, self.config.clone())
        } else {
            let records = recovered.records.clone();
            let state = CausalState::recover(id, self.config.clone(), recovered.records, inc);
            if dcfg.sync == SyncPolicy::EveryOp {
                self.check_certified(&records, &state);
            }
            state
        };
        self.inner = SessionActor::with_incarnation(CausalActor::new(state), self.rto, inc);
        self.persist(); // the rejoin Node record, under the new incarnation
        self.store.sync(); // identity durable before rejoining (see `new`)
        // Announce the new life so peers rebase their sequence spaces
        // now; lost copies are compensated by the stale-stamp reply
        // path, so the broadcast is an optimization, not a correctness
        // requirement.
        let hello = self.inner.hello();
        let outgoing = (0..self.config.nodes())
            .map(NodeId::new)
            .filter(|p| *p != id)
            .map(|p| (p, hello.clone()))
            .collect();
        Effects {
            outgoing,
            completion: None,
        }
    }

    fn authority(&self, loc: Location) -> NodeId {
        self.inner.authority(loc)
    }

    fn peek(&self, loc: Location) -> Option<V> {
        self.inner.peek(loc)
    }
}

/// Deterministically derives the recovery scenario for `seed`: the
/// owner of a seed-chosen page crashes inside `[horizon/4, horizon/2)`
/// and restarts a quarter-horizon later, over links with a light
/// seed-derived drop rate. Returns the plan and the victim's index.
#[must_use]
pub fn recovery_crash_plan(seed: u64, cfg: &ChaosConfig, pages: u32) -> (FaultPlan, u32) {
    let config = CausalConfig::<Word>::builder(cfg.nodes, pages).build();
    let page = memcore::PageId::new((seed % u64::from(config.page_count())) as u32);
    let victim = {
        use memcore::OwnerMap as _;
        config.owners().owner_of_page(page).index() as u32
    };
    let quarter = (cfg.horizon / 4).max(1);
    let crash_at = quarter + seed.wrapping_mul(6151) % quarter;
    let restart_at = crash_at + quarter.max(2);
    let drop = (seed % 6) as f64 * 0.01;
    let plan = FaultPlan::uniform(crate::plan::LinkFaults::dropping(drop))
        .crash_owner_at(config.owners().as_ref(), page, crash_at)
        .restart_at(restart_at);
    (plan, victim)
}

/// The durable cluster simulation [`run_recovery_chaos_once`] drives.
fn recovery_sim(
    config: &CausalConfig<Word>,
    rto: u64,
    seed: u64,
    opts: SimOpts<Word>,
) -> Sim<Word, DurableActor<Word>> {
    let actors = (0..config.nodes())
        .map(|i| {
            DurableActor::new(
                NodeId::new(i),
                config.clone(),
                rto,
                seed ^ u64::from(i).wrapping_mul(0xA24B_AED4_963E_E407),
            )
        })
        .collect();
    Sim::new(actors, opts)
}

/// Runs one seeded restart-with-disk chaos execution under `sync`.
///
/// The victim (the seed-chosen page's static owner) is a pure server —
/// it gets no client — so `wedged == false` states that every surviving
/// client ran to completion across the crash *and* the recovery. The
/// extended oracle adds: the victim restarted with a bumped
/// incarnation, and (under [`SyncPolicy::EveryOp`]) no certified write
/// was lost at the recovery instant.
#[must_use]
pub fn run_recovery_chaos_once(seed: u64, cfg: &ChaosConfig, sync: SyncPolicy) -> ChaosOutcome {
    let spec = WorkloadSpec {
        nodes: cfg.nodes as usize,
        locations_per_node: cfg.locations_per_node as usize,
        ops_per_node: cfg.ops_per_node,
        read_ratio: cfg.read_ratio,
        locality: cfg.locality,
        seed,
    };
    let (plan, victim) = recovery_crash_plan(seed, cfg, spec.locations());
    let faults: Arc<dyn simnet::FaultHook> = Arc::new(FaultInjector::new(seed, plan.clone()));
    let recorder: Recorder<Word> = Recorder::new(cfg.nodes as usize);
    let config = CausalConfig::<Word>::builder(cfg.nodes, spec.locations())
        .pipeline_window(cfg.pipeline_window)
        .failover(causal_dsm::FailoverConfig::default())
        .durability(DurableConfig {
            sync,
            // Small enough that multi-crash seeds exercise checkpoint +
            // log-tail recovery, not just log replay.
            checkpoint_every: 32,
        })
        .build();
    let mut sim = recovery_sim(
        &config,
        cfg.rto,
        seed,
        SimOpts {
            latency: Box::new(Uniform::new(1, 8)),
            seed,
            recorder: Some(recorder.clone()),
            faults: Some(faults),
            ..SimOpts::default()
        },
    );
    for (node, ops) in spec.generate().into_iter().enumerate() {
        if node == victim as usize {
            continue;
        }
        let script: Vec<ClientOp<Word>> = ops
            .into_iter()
            .map(|op| match op {
                WorkloadOp::Read(l) => ClientOp::Read(l),
                WorkloadOp::Write(l, v) => ClientOp::Write(l, Word::Int(v)),
            })
            .collect();
        sim.set_client(node, Script::new(script));
    }
    let limits = RunLimits {
        max_events: cfg.limits.max_events,
        max_time: cfg.limits.max_time.min(cfg.horizon.saturating_mul(10)),
    };
    let report = sim.run(limits);
    let exec = Execution::from_recorder(&recorder);
    let mut violations: Vec<String> = match check_causal(&exec) {
        Ok(causal) => causal.violations.iter().map(ToString::to_string).collect(),
        Err(err) => vec![format!("execution graph error: {err}")],
    };
    let victim_actor = sim.actor(victim as usize);
    if victim_actor.restarts() == 0 {
        violations.push(format!("victim {victim} never restarted"));
    } else if victim_actor.incarnation() == 0 {
        violations.push(format!("victim {victim} restarted without bumping incarnation"));
    }
    violations.extend(victim_actor.violations().iter().cloned());
    ChaosOutcome {
        seed,
        plan,
        wedged: !report.all_done,
        violations,
        time: report.time,
        messages: sim.messages().snapshot(),
        ops_recorded: recorder.total_ops(),
        ops: recorder.processes(),
        pipeline_window: cfg.pipeline_window,
        batching: false,
    }
}

/// The recovery scenario under a weaker sync policy
/// ([`SyncPolicy::Interval`]`(4)`): a crash may legally lose the last
/// few certified writes, so only termination, causality of the
/// *recorded* execution, and the incarnation bump are checked — the
/// liveness half of the durability contract.
#[must_use]
pub fn run_recovery_liveness_once(seed: u64, cfg: &ChaosConfig) -> ChaosOutcome {
    run_recovery_chaos_once(seed, cfg, SyncPolicy::Interval(4))
}

/// The recovery grid: the pipeline window alternates between `0` (the
/// paper's blocking protocol) and `32` with seed parity, batching stays
/// off (stamped failover envelopes travel solo). Deterministic in
/// `(base, seed)`.
#[must_use]
pub fn sample_recovery_config(base: &ChaosConfig, seed: u64) -> ChaosConfig {
    let mut cfg = base.clone();
    cfg.pipeline_window = [0, 32][(seed % 2) as usize];
    cfg.batching = false;
    cfg
}

/// Runs `count` restart-with-disk chaos executions with seeds
/// `first_seed..`, every one under [`SyncPolicy::EveryOp`] (the policy
/// whose contract the per-write oracle states), collecting every
/// failure with its reproduction recipe.
#[must_use]
pub fn run_recovery_chaos_batch(
    first_seed: u64,
    count: usize,
    cfg: &ChaosConfig,
) -> crate::chaos::ChaosBatch {
    let mut failures = Vec::new();
    let mut protocol_messages = 0;
    let mut overhead_messages = 0;
    for seed in first_seed..first_seed + count as u64 {
        let outcome =
            run_recovery_chaos_once(seed, &sample_recovery_config(cfg, seed), SyncPolicy::EveryOp);
        protocol_messages += outcome.messages.protocol_total();
        overhead_messages += outcome.messages.overhead_total();
        if !outcome.ok() {
            failures.push(outcome);
        }
    }
    crate::chaos::ChaosBatch {
        runs: count,
        failures,
        protocol_messages,
        overhead_messages,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovery_run_restarts_the_owner_and_survives() {
        let cfg = ChaosConfig::default();
        let outcome = run_recovery_chaos_once(0, &cfg, SyncPolicy::EveryOp);
        assert!(outcome.ok(), "{outcome}");
        // The plan really contains a crash *with* a restart.
        assert!(outcome
            .plan
            .crashes
            .iter()
            .all(|c| c.restart != u64::MAX));
        assert_eq!(
            outcome.ops_recorded,
            (cfg.nodes as usize - 1) * cfg.ops_per_node
        );
    }

    #[test]
    fn recovery_runs_reproduce_exactly() {
        let base = ChaosConfig::default();
        for seed in [1u64, 2] {
            let cfg = sample_recovery_config(&base, seed);
            let a = run_recovery_chaos_once(seed, &cfg, SyncPolicy::EveryOp);
            let b = run_recovery_chaos_once(seed, &cfg, SyncPolicy::EveryOp);
            assert_eq!(a.plan, b.plan);
            assert_eq!(a.time, b.time);
            assert_eq!(a.messages.by_kind(), b.messages.by_kind());
            assert_eq!(a.ops, b.ops);
        }
    }

    #[test]
    fn weaker_sync_still_terminates_causally() {
        let outcome = run_recovery_liveness_once(3, &ChaosConfig::default());
        assert!(outcome.ok(), "{outcome}");
    }

    #[test]
    fn small_batch_passes_the_extended_oracle() {
        let batch = run_recovery_chaos_batch(0, 4, &ChaosConfig::default());
        assert!(batch.all_ok(), "{batch}");
        assert!(batch.protocol_messages > 0);
    }
}
