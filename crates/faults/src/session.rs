//! The reliable-delivery session layer: re-deriving the paper's
//! "reliable, ordered message passing" assumption over a lossy link.
//!
//! The owner protocol (Figure 4) is only correct on a network that
//! delivers every message exactly once, in per-link FIFO order. A faulty
//! network drops, duplicates, delays, and reorders. This module closes the
//! gap with a classical sliding-window session protocol:
//!
//! * every payload from one node to one peer carries a per-link **sequence
//!   number** ([`SessionMsg::Data`]);
//! * the receiver holds out-of-order arrivals in a **reorder buffer** and
//!   releases payloads strictly in sequence, exactly once (duplicates are
//!   suppressed and re-acknowledged);
//! * every delivery is answered with a **cumulative ack** carrying the
//!   next sequence number the receiver expects ([`SessionMsg::Ack`]);
//! * the sender keeps unacknowledged payloads and **retransmits them all**
//!   when its retransmission timer (RTO) fires, re-arming until acked.
//!
//! Termination under faults: as long as every partition heals, every
//! crashed node restarts, and per-message drop probability is below 1, the
//! retransmit/re-ack loop makes every payload eventually delivered exactly
//! once — so a protocol that terminates on a reliable network terminates
//! on the faulty one, with the overhead showing up as
//! [`kinds::RETX`] / [`kinds::ACK`]
//! traffic in the message statistics.

use std::collections::{BTreeMap, HashMap};
use std::marker::PhantomData;

use bytes::{BufMut, Bytes, BytesMut};
use dsm_sim::{Actor, ClientOp, Effects};
use memcore::{kinds, Location, NodeId, Value};
use simnet::codec::{CodecError, Wire};
use simnet::Tagged;

/// A session-layer frame wrapping the protocol's own message type `M`.
///
/// Sequenced frames are **incarnation-stamped**: `src_inc` is the
/// sender's current incarnation (0 for a first life, bumped by every
/// durable recovery), `dst_inc` the receiver's incarnation as the sender
/// last learned it. The stamps fence a crashed life's traffic — a frame
/// from or to a dead incarnation is dropped instead of corrupting the
/// survivor's sequence space — and are how a recovered node is
/// fast-forwarded by retransmission instead of re-educated via SUSPECT
/// (see [`SessionMsg::Hello`]).
#[derive(Clone, Debug, PartialEq)]
pub enum SessionMsg<M> {
    /// A (possibly retransmitted) payload with its per-link sequence
    /// number.
    Data {
        /// Sequence number on the `src -> dst` link, from 0.
        seq: u64,
        /// `true` iff this is a retransmission (counted as
        /// [`kinds::RETX`] instead of the payload's own kind).
        retx: bool,
        /// The sender's incarnation.
        src_inc: u32,
        /// The receiver's incarnation, as known to the sender.
        dst_inc: u32,
        /// The protocol message being carried.
        payload: M,
    },
    /// A cumulative acknowledgement: the receiver has delivered every
    /// sequence number below `cum` on this link.
    Ack {
        /// The next sequence number the receiver expects.
        cum: u64,
        /// The sender's incarnation.
        src_inc: u32,
        /// The receiver's incarnation, as known to the sender.
        dst_inc: u32,
    },
    /// An unsequenced, unacknowledged datagram. Used for liveness probes
    /// ([`kinds::HEARTBEAT`]): a lost heartbeat is superseded by the next
    /// one, and giving heartbeats sequence numbers would retransmit them
    /// to a crashed peer forever, growing the unacked buffer without
    /// bound. Delivered to the protocol as-is — no dedup, no reordering
    /// repair — which heartbeats tolerate by construction.
    Raw(M),
    /// An incarnation announcement. Broadcast by a restarted node so
    /// peers rebase their sequence spaces toward it, and sent as the
    /// reply to any frame stamped with a stale `dst_inc` — which makes
    /// the retransmit/re-ack loop itself carry the news: a peer that
    /// missed the broadcast keeps retransmitting, each retransmission
    /// draws a `Hello`, and the first one to arrive resynchronizes the
    /// link. Unsequenced and never retransmitted.
    Hello {
        /// The announcer's current incarnation.
        inc: u32,
    },
}

impl<M: Tagged> Tagged for SessionMsg<M> {
    fn kind(&self) -> &'static str {
        match self {
            // Fresh data keeps the payload's kind so protocol message
            // counts stay comparable with and without the session layer.
            SessionMsg::Data {
                retx: false,
                payload,
                ..
            } => payload.kind(),
            SessionMsg::Data { retx: true, .. } => kinds::RETX,
            SessionMsg::Ack { .. } => kinds::ACK,
            SessionMsg::Raw(payload) => payload.kind(),
            SessionMsg::Hello { .. } => kinds::HELLO,
        }
    }

    fn wire_size(&self) -> Option<usize> {
        // seq (8) + flag (1) + incarnations (4 + 4), or cum (8) + tag (1)
        // + incarnations, or tag (1), or inc (4) + tag (1).
        match self {
            SessionMsg::Data { payload, .. } => payload.wire_size().map(|s| s + 17),
            SessionMsg::Ack { .. } => Some(17),
            SessionMsg::Raw(payload) => payload.wire_size().map(|s| s + 1),
            SessionMsg::Hello { .. } => Some(5),
        }
    }

    fn batch_parts(&self) -> Option<Vec<(&'static str, Option<usize>)>> {
        // Fresh data carrying a transport batch stays transparent to the
        // logical counters, exactly like its kind; retransmissions and
        // acks are session overhead and count as themselves.
        match self {
            SessionMsg::Data {
                retx: false,
                payload,
                ..
            } => payload.batch_parts(),
            _ => None,
        }
    }
}

impl<M: Wire> Wire for SessionMsg<M> {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            SessionMsg::Data {
                seq,
                retx,
                src_inc,
                dst_inc,
                payload,
            } => {
                buf.put_u8(0);
                seq.encode(buf);
                retx.encode(buf);
                src_inc.encode(buf);
                dst_inc.encode(buf);
                payload.encode(buf);
            }
            SessionMsg::Ack {
                cum,
                src_inc,
                dst_inc,
            } => {
                buf.put_u8(1);
                cum.encode(buf);
                src_inc.encode(buf);
                dst_inc.encode(buf);
            }
            SessionMsg::Raw(payload) => {
                buf.put_u8(2);
                payload.encode(buf);
            }
            SessionMsg::Hello { inc } => {
                buf.put_u8(3);
                inc.encode(buf);
            }
        }
    }

    fn decode(buf: &mut Bytes) -> Result<Self, CodecError> {
        match u8::decode(buf)? {
            0 => Ok(SessionMsg::Data {
                seq: u64::decode(buf)?,
                retx: bool::decode(buf)?,
                src_inc: u32::decode(buf)?,
                dst_inc: u32::decode(buf)?,
                payload: M::decode(buf)?,
            }),
            1 => Ok(SessionMsg::Ack {
                cum: u64::decode(buf)?,
                src_inc: u32::decode(buf)?,
                dst_inc: u32::decode(buf)?,
            }),
            2 => Ok(SessionMsg::Raw(M::decode(buf)?)),
            3 => Ok(SessionMsg::Hello {
                inc: u32::decode(buf)?,
            }),
            d => Err(CodecError::BadDiscriminant(d)),
        }
    }

    fn encoded_len(&self) -> usize {
        match self {
            SessionMsg::Data { payload, .. } => 1 + 8 + 1 + 4 + 4 + payload.encoded_len(),
            SessionMsg::Ack { .. } => 1 + 8 + 4 + 4,
            SessionMsg::Raw(payload) => 1 + payload.encoded_len(),
            SessionMsg::Hello { .. } => 1 + 4,
        }
    }
}

/// Counters kept by one node's [`ReliableLink`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Fresh payloads sent (first transmissions).
    pub data_sent: u64,
    /// Retransmitted payloads.
    pub retransmits: u64,
    /// Acks sent.
    pub acks_sent: u64,
    /// Incoming payloads discarded as already-delivered duplicates.
    pub duplicates_suppressed: u64,
}

#[derive(Clone, Debug)]
struct TxPeer<M> {
    next_seq: u64,
    /// seq -> (last transmission time, payload).
    unacked: BTreeMap<u64, (u64, M)>,
}

impl<M> Default for TxPeer<M> {
    fn default() -> Self {
        TxPeer {
            next_seq: 0,
            unacked: BTreeMap::new(),
        }
    }
}

#[derive(Clone, Debug)]
struct RxPeer<M> {
    next_expected: u64,
    buffer: BTreeMap<u64, M>,
}

impl<M> Default for RxPeer<M> {
    fn default() -> Self {
        RxPeer {
            next_expected: 0,
            buffer: BTreeMap::new(),
        }
    }
}

/// One node's end of the session protocol, covering its links to every
/// peer (sequence numbers and acks are tracked per peer).
#[derive(Clone, Debug)]
pub struct ReliableLink<M> {
    rto: u64,
    /// This endpoint's incarnation (0 for a first life; a durable
    /// recovery constructs the link with the bumped number).
    inc: u32,
    /// Each peer's incarnation, as last learned. Absent means "never
    /// heard": the first stamped frame's `src_inc` is adopted as-is.
    peer_inc: HashMap<u32, u32>,
    tx: HashMap<u32, TxPeer<M>>,
    rx: HashMap<u32, RxPeer<M>>,
    /// When the retransmission timer should next fire; `None` while
    /// nothing is unacknowledged.
    deadline: Option<u64>,
    stats: SessionStats,
}

impl<M: Clone> ReliableLink<M> {
    /// A fresh session endpoint with retransmission timeout `rto` (time
    /// units between a send and its first retransmission).
    ///
    /// # Panics
    ///
    /// Panics if `rto` is zero.
    #[must_use]
    pub fn new(rto: u64) -> Self {
        Self::with_incarnation(rto, 0)
    }

    /// A fresh session endpoint running as incarnation `inc` — what a
    /// node recovering from its write-ahead log constructs (the WAL
    /// records which incarnations existed; the new life runs one past
    /// the persisted maximum, fencing every frame its predecessor left
    /// in flight).
    ///
    /// # Panics
    ///
    /// Panics if `rto` is zero.
    #[must_use]
    pub fn with_incarnation(rto: u64, inc: u32) -> Self {
        assert!(rto > 0, "retransmission timeout must be positive");
        ReliableLink {
            rto,
            inc,
            peer_inc: HashMap::new(),
            tx: HashMap::new(),
            rx: HashMap::new(),
            deadline: None,
            stats: SessionStats::default(),
        }
    }

    /// This endpoint's incarnation.
    #[must_use]
    pub fn incarnation(&self) -> u32 {
        self.inc
    }

    /// The [`SessionMsg::Hello`] announcing this endpoint's incarnation.
    /// A restarted node broadcasts it to every peer; lost copies are
    /// compensated by the stale-`dst_inc` reply path.
    #[must_use]
    pub fn hello(&self) -> SessionMsg<M> {
        SessionMsg::Hello { inc: self.inc }
    }

    /// Wraps `payload` for transmission to `dst`, assigning the link's
    /// next sequence number and arming the retransmission timer.
    pub fn send(&mut self, now: u64, dst: NodeId, payload: M) -> SessionMsg<M> {
        let dst_inc = self.known_inc(dst.index() as u32);
        let peer = self.tx.entry(dst.index() as u32).or_default();
        let seq = peer.next_seq;
        peer.next_seq += 1;
        peer.unacked.insert(seq, (now, payload.clone()));
        let due = now + self.rto;
        self.deadline = Some(self.deadline.map_or(due, |d| d.min(due)));
        self.stats.data_sent += 1;
        SessionMsg::Data {
            seq,
            retx: false,
            src_inc: self.inc,
            dst_inc,
            payload,
        }
    }

    /// The incarnation this endpoint believes `peer` runs as (0 until a
    /// stamped frame or Hello says otherwise — first lives are 0, so the
    /// default is right for peers that never crashed).
    fn known_inc(&self, peer: u32) -> u32 {
        self.peer_inc.get(&peer).copied().unwrap_or(0)
    }

    /// Absorbs an incarnation claim from `peer`. A *newer* incarnation
    /// means the peer crashed and restarted: its rx state is gone, so
    /// every unacked frame we hold is resequenced from 0 (in order) and
    /// returned for immediate retransmission — the recovered peer is
    /// fast-forwarded by the retransmission window instead of waiting to
    /// be re-educated through SUSPECT/failover. Our rx state for the
    /// peer resets too (its old sequence space is dead). Returns `None`
    /// if the claim was stale or already known.
    fn adopt_inc(&mut self, now: u64, peer: u32, claimed: u32) -> Option<Vec<SessionMsg<M>>> {
        match self.peer_inc.get(&peer) {
            Some(&known) if claimed <= known => return None,
            // First contact: adopt the claim without touching state —
            // there is no stale sequence space to fence.
            None => {
                self.peer_inc.insert(peer, claimed);
                return None;
            }
            Some(_) => {}
        }
        self.peer_inc.insert(peer, claimed);
        self.rx.remove(&peer);
        let mut rebased = Vec::new();
        if let Some(tx) = self.tx.get_mut(&peer) {
            let old = std::mem::take(&mut tx.unacked);
            tx.next_seq = old.len() as u64;
            for (new_seq, (_, (_, payload))) in old.into_iter().enumerate() {
                rebased.push(SessionMsg::Data {
                    seq: new_seq as u64,
                    retx: true,
                    src_inc: self.inc,
                    dst_inc: claimed,
                    payload: payload.clone(),
                });
                tx.unacked.insert(new_seq as u64, (now, payload));
            }
        }
        self.stats.retransmits += rebased.len() as u64;
        self.recompute_deadline();
        Some(rebased)
    }

    /// Processes an incoming frame from `from`.
    ///
    /// Returns `(replies, delivered)`: session frames to send back to
    /// `from` (acks), and payloads released to the protocol — strictly in
    /// per-link sequence order, each exactly once.
    pub fn on_receive(
        &mut self,
        now: u64,
        from: NodeId,
        msg: SessionMsg<M>,
    ) -> (Vec<SessionMsg<M>>, Vec<M>) {
        let f = from.index() as u32;
        // Incarnation fencing happens before any sequence-space state is
        // touched: a frame from a dead life must not perturb the live
        // link, and a frame *to* a dead life of ours proves the sender
        // has not heard about our restart yet.
        let (src_inc, dst_inc) = match &msg {
            SessionMsg::Data {
                src_inc, dst_inc, ..
            }
            | SessionMsg::Ack {
                src_inc, dst_inc, ..
            } => (*src_inc, *dst_inc),
            SessionMsg::Raw(_) => {
                let SessionMsg::Raw(payload) = msg else {
                    unreachable!()
                };
                // Datagrams carry no session state: release immediately.
                return (Vec::new(), vec![payload]);
            }
            SessionMsg::Hello { inc } => {
                // A newer incarnation rebases the link toward the
                // announcer; anything else is a duplicate announcement.
                let rebased = self.adopt_inc(now, f, *inc).unwrap_or_default();
                return (rebased, Vec::new());
            }
        };
        let mut replies = Vec::new();
        if src_inc < self.known_inc(f) {
            // A dead life's leftover: drop silently (its ack would only
            // confuse the old sequence space).
            return (replies, Vec::new());
        }
        if let Some(rebased) = self.adopt_inc(now, f, src_inc) {
            // The peer restarted: the frame itself is from the new life
            // and processes below, against the freshly reset state.
            replies.extend(rebased);
        }
        if dst_inc != self.inc {
            // Addressed to a dead life of ours — its sequence numbers
            // mean nothing here. Tell the sender who we are now; their
            // retransmission loop re-drives the payload with fresh
            // stamps.
            replies.push(SessionMsg::Hello { inc: self.inc });
            return (replies, Vec::new());
        }
        match msg {
            SessionMsg::Data { seq, payload, .. } => {
                let peer = self.rx.entry(f).or_default();
                let mut delivered = Vec::new();
                if seq < peer.next_expected || peer.buffer.contains_key(&seq) {
                    // Already delivered or already buffered: suppress, but
                    // re-ack — the original ack may have been lost.
                    self.stats.duplicates_suppressed += 1;
                } else {
                    peer.buffer.insert(seq, payload);
                    while let Some(p) = peer.buffer.remove(&peer.next_expected) {
                        delivered.push(p);
                        peer.next_expected += 1;
                    }
                }
                let cum = peer.next_expected;
                self.stats.acks_sent += 1;
                replies.push(SessionMsg::Ack {
                    cum,
                    src_inc: self.inc,
                    dst_inc: src_inc,
                });
                (replies, delivered)
            }
            SessionMsg::Ack { cum, .. } => {
                if let Some(peer) = self.tx.get_mut(&f) {
                    peer.unacked = peer.unacked.split_off(&cum);
                }
                self.recompute_deadline();
                (replies, Vec::new())
            }
            SessionMsg::Raw(_) | SessionMsg::Hello { .. } => unreachable!("handled above"),
        }
    }

    /// Fires the retransmission timer: if it is due, every payload that
    /// has gone unacknowledged for a full RTO (to any peer) is
    /// retransmitted and the timer re-arms for the next oldest payload.
    pub fn on_timer(&mut self, now: u64) -> Vec<(NodeId, SessionMsg<M>)> {
        if self.deadline.is_none_or(|d| d > now) {
            return Vec::new();
        }
        let rto = self.rto;
        let mut out = Vec::new();
        let mut peers: Vec<u32> = self.tx.keys().copied().collect();
        peers.sort_unstable(); // deterministic iteration order
        for p in peers {
            let dst_inc = self.peer_inc.get(&p).copied().unwrap_or(0);
            let peer = self.tx.get_mut(&p).expect("key from iteration");
            for (&seq, entry) in peer.unacked.iter_mut() {
                if entry.0 + rto <= now {
                    entry.0 = now;
                    out.push((
                        NodeId::new(p),
                        SessionMsg::Data {
                            seq,
                            retx: true,
                            src_inc: self.inc,
                            dst_inc,
                            payload: entry.1.clone(),
                        },
                    ));
                }
            }
        }
        self.stats.retransmits += out.len() as u64;
        self.recompute_deadline();
        out
    }

    /// Immediately retransmits everything unacknowledged to `dst`,
    /// regardless of how recently it was sent, and re-arms the timer as
    /// if each frame were freshly transmitted.
    ///
    /// This is the reconnection hook: when a transport re-establishes a
    /// dropped connection it cannot know which in-flight frames died in
    /// the old socket's buffers, so it replays the whole unacked window
    /// and lets the receiver's duplicate suppression sort it out.
    pub fn retransmit_to(&mut self, now: u64, dst: NodeId) -> Vec<SessionMsg<M>> {
        let dst_inc = self.known_inc(dst.index() as u32);
        let src_inc = self.inc;
        let Some(peer) = self.tx.get_mut(&(dst.index() as u32)) else {
            return Vec::new();
        };
        let mut out = Vec::with_capacity(peer.unacked.len());
        for (&seq, entry) in peer.unacked.iter_mut() {
            entry.0 = now;
            out.push(SessionMsg::Data {
                seq,
                retx: true,
                src_inc,
                dst_inc,
                payload: entry.1.clone(),
            });
        }
        self.stats.retransmits += out.len() as u64;
        self.recompute_deadline();
        out
    }

    /// When the retransmission timer should next fire, if armed.
    #[must_use]
    pub fn next_timer(&self) -> Option<u64> {
        self.deadline
    }

    /// Total payloads awaiting acknowledgement, across peers.
    #[must_use]
    pub fn unacked(&self) -> usize {
        self.tx.values().map(|p| p.unacked.len()).sum()
    }

    /// The endpoint's counters.
    #[must_use]
    pub fn stats(&self) -> SessionStats {
        self.stats
    }

    /// Earliest `last_sent + rto` over every unacknowledged payload.
    fn recompute_deadline(&mut self) {
        let rto = self.rto;
        self.deadline = self
            .tx
            .values()
            .flat_map(|p| p.unacked.values().map(|(sent, _)| sent + rto))
            .min();
    }
}

/// An [`Actor`] adapter inserting a [`ReliableLink`] *under* any protocol
/// actor: the wrapped protocol runs unchanged, believing the network is
/// reliable and FIFO, while the session layer earns that belief over a
/// faulty one.
#[derive(Debug)]
pub struct SessionActor<V: Value, A: Actor<V>> {
    inner: A,
    link: ReliableLink<A::Msg>,
    /// Latest simulated time observed, so the non-`_at` trait methods
    /// still work if called directly.
    now: u64,
    _marker: PhantomData<fn() -> V>,
}

impl<V: Value, A: Actor<V>> SessionActor<V, A> {
    /// Wraps `inner` with a session endpoint using retransmission timeout
    /// `rto`.
    ///
    /// # Panics
    ///
    /// Panics if `rto` is zero.
    #[must_use]
    pub fn new(inner: A, rto: u64) -> Self {
        Self::with_incarnation(inner, rto, 0)
    }

    /// Wraps `inner` with a session endpoint running as incarnation
    /// `inc` — the constructor a durable recovery uses, so the new
    /// life's frames fence its predecessor's.
    ///
    /// # Panics
    ///
    /// Panics if `rto` is zero.
    #[must_use]
    pub fn with_incarnation(inner: A, rto: u64, inc: u32) -> Self {
        SessionActor {
            inner,
            link: ReliableLink::with_incarnation(rto, inc),
            now: 0,
            _marker: PhantomData,
        }
    }

    /// The [`SessionMsg::Hello`] announcing this endpoint's incarnation
    /// (see [`ReliableLink::hello`]).
    #[must_use]
    pub fn hello(&self) -> SessionMsg<A::Msg> {
        self.link.hello()
    }

    /// The wrapped protocol actor (inspection).
    #[must_use]
    pub fn inner(&self) -> &A {
        &self.inner
    }

    /// Mutable access to the wrapped protocol actor — what a durability
    /// wrapper needs to drain the protocol state's journal after each
    /// event.
    #[must_use]
    pub fn inner_mut(&mut self) -> &mut A {
        &mut self.inner
    }

    /// The session endpoint's counters.
    #[must_use]
    pub fn session_stats(&self) -> SessionStats {
        self.link.stats()
    }

    /// Frames one protocol message: heartbeats go as unsequenced
    /// datagrams (see [`SessionMsg::Raw`]), everything else through the
    /// reliable link.
    fn frame(&mut self, now: u64, dst: NodeId, m: A::Msg) -> SessionMsg<A::Msg> {
        if m.kind() == kinds::HEARTBEAT {
            SessionMsg::Raw(m)
        } else {
            self.link.send(now, dst, m)
        }
    }

    fn wrap(&mut self, now: u64, effects: Effects<V, A::Msg>) -> Effects<V, SessionMsg<A::Msg>> {
        Effects {
            outgoing: effects
                .outgoing
                .into_iter()
                .map(|(dst, m)| (dst, self.frame(now, dst, m)))
                .collect(),
            completion: effects.completion,
        }
    }
}

impl<V: Value, A: Actor<V>> Actor<V> for SessionActor<V, A> {
    type Msg = SessionMsg<A::Msg>;

    fn id(&self) -> NodeId {
        self.inner.id()
    }

    fn submit(&mut self, op: &ClientOp<V>) -> Effects<V, Self::Msg> {
        let now = self.now;
        self.submit_at(now, op)
    }

    fn deliver(&mut self, from: NodeId, msg: Self::Msg) -> Effects<V, Self::Msg> {
        let now = self.now;
        self.deliver_at(now, from, msg)
    }

    fn submit_at(&mut self, now: u64, op: &ClientOp<V>) -> Effects<V, Self::Msg> {
        self.now = now;
        let effects = self.inner.submit_at(now, op);
        self.wrap(now, effects)
    }

    fn deliver_at(&mut self, now: u64, from: NodeId, msg: Self::Msg) -> Effects<V, Self::Msg> {
        self.now = now;
        let (mut outgoing, released) = match msg {
            // Datagrams bypass the sequencing machinery entirely.
            SessionMsg::Raw(payload) => (Vec::new(), vec![payload]),
            framed => {
                let (replies, released) = self.link.on_receive(now, from, framed);
                (replies.into_iter().map(|m| (from, m)).collect(), released)
            }
        };
        let mut completion = None;
        for payload in released {
            let effects = self.inner.deliver_at(now, from, payload);
            for (dst, m) in effects.outgoing {
                let framed = self.frame(now, dst, m);
                outgoing.push((dst, framed));
            }
            if let Some(c) = effects.completion {
                debug_assert!(completion.is_none(), "one outstanding op per node");
                completion = Some(c);
            }
        }
        Effects {
            outgoing,
            completion,
        }
    }

    fn next_timer(&self) -> Option<u64> {
        // Earliest of the link's retransmission deadline and whatever the
        // wrapped protocol wants (heartbeat/suspicion timers under owner
        // failover).
        match (self.link.next_timer(), self.inner.next_timer()) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    fn on_timer(&mut self, now: u64) -> Effects<V, Self::Msg> {
        self.now = now;
        let mut outgoing: Vec<(NodeId, Self::Msg)> = self.link.on_timer(now);
        let mut completion = None;
        if self.inner.next_timer().is_some_and(|want| want <= now) {
            let effects = self.inner.on_timer(now);
            for (dst, m) in effects.outgoing {
                // The protocol's timer-driven traffic rides the session
                // layer like any other payload (heartbeats as datagrams).
                let framed = self.frame(now, dst, m);
                outgoing.push((dst, framed));
            }
            completion = effects.completion;
        }
        Effects {
            outgoing,
            completion,
        }
    }

    fn authority(&self, loc: Location) -> NodeId {
        self.inner.authority(loc)
    }

    fn peek(&self, loc: Location) -> Option<V> {
        self.inner.peek(loc)
    }
}

/// A simulated causal-DSM cluster with a [`ReliableLink`] session layer
/// under every node — the counterpart of [`dsm_sim::causal_sim`] for
/// faulty networks.
///
/// `rto` is the retransmission timeout in simulator time units; pick it a
/// few times the expected link latency so healthy traffic rarely
/// retransmits.
#[must_use]
pub fn session_causal_sim<V: Value>(
    config: &causal_dsm::CausalConfig<V>,
    rto: u64,
    opts: dsm_sim::SimOpts<V>,
) -> dsm_sim::Sim<V, SessionActor<V, dsm_sim::CausalActor<V>>> {
    let actors = (0..config.nodes())
        .map(|i| {
            SessionActor::new(
                dsm_sim::CausalActor::new(causal_dsm::CausalState::new(
                    NodeId::new(i),
                    config.clone(),
                )),
                rto,
            )
        })
        .collect();
    dsm_sim::Sim::new(actors, opts)
}

#[cfg(test)]
mod tests {
    use bytes::Buf;

    use super::*;

    #[derive(Clone, Debug, PartialEq)]
    struct P(u32);
    impl Tagged for P {
        fn kind(&self) -> &'static str {
            "P"
        }
        fn wire_size(&self) -> Option<usize> {
            Some(4)
        }
    }

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn in_order_delivery_with_cumulative_acks() {
        let mut tx: ReliableLink<P> = ReliableLink::new(10);
        let mut rx: ReliableLink<P> = ReliableLink::new(10);
        let m0 = tx.send(0, n(1), P(0));
        let m1 = tx.send(0, n(1), P(1));
        let (acks, got) = rx.on_receive(1, n(0), m0);
        assert_eq!(got, vec![P(0)]);
        assert_eq!(
            acks,
            vec![SessionMsg::Ack {
                cum: 1,
                src_inc: 0,
                dst_inc: 0,
            }]
        );
        let (acks, got) = rx.on_receive(2, n(0), m1);
        assert_eq!(got, vec![P(1)]);
        assert_eq!(
            acks,
            vec![SessionMsg::Ack {
                cum: 2,
                src_inc: 0,
                dst_inc: 0,
            }]
        );
        // Acks drain the sender's unacked set and disarm the timer.
        assert_eq!(tx.unacked(), 2);
        tx.on_receive(
            3,
            n(1),
            SessionMsg::Ack {
                cum: 2,
                src_inc: 0,
                dst_inc: 0,
            },
        );
        assert_eq!(tx.unacked(), 0);
        assert_eq!(tx.next_timer(), None);
    }

    #[test]
    fn reordering_is_repaired_by_the_buffer() {
        let mut tx: ReliableLink<P> = ReliableLink::new(10);
        let mut rx: ReliableLink<P> = ReliableLink::new(10);
        let m0 = tx.send(0, n(1), P(0));
        let m1 = tx.send(0, n(1), P(1));
        let m2 = tx.send(0, n(1), P(2));
        // Arrivals: 2, 0, 1 — released: [], [0], [1, 2].
        let (acks, got) = rx.on_receive(1, n(0), m2);
        assert!(got.is_empty());
        assert_eq!(
            acks,
            vec![SessionMsg::Ack {
                cum: 0,
                src_inc: 0,
                dst_inc: 0,
            }]
        );
        let (_, got) = rx.on_receive(2, n(0), m0);
        assert_eq!(got, vec![P(0)]);
        let (acks, got) = rx.on_receive(3, n(0), m1);
        assert_eq!(got, vec![P(1), P(2)]);
        assert_eq!(
            acks,
            vec![SessionMsg::Ack {
                cum: 3,
                src_inc: 0,
                dst_inc: 0,
            }]
        );
    }

    #[test]
    fn duplicates_are_suppressed_but_reacked() {
        let mut tx: ReliableLink<P> = ReliableLink::new(10);
        let mut rx: ReliableLink<P> = ReliableLink::new(10);
        let m0 = tx.send(0, n(1), P(0));
        let (_, got) = rx.on_receive(1, n(0), m0.clone());
        assert_eq!(got, vec![P(0)]);
        let (acks, got) = rx.on_receive(2, n(0), m0);
        assert!(got.is_empty());
        assert_eq!(
            acks,
            vec![SessionMsg::Ack {
                cum: 1,
                src_inc: 0,
                dst_inc: 0,
            }]
        );
        assert_eq!(rx.stats().duplicates_suppressed, 1);
    }

    #[test]
    fn timer_retransmits_all_unacked_until_acked() {
        let mut tx: ReliableLink<P> = ReliableLink::new(5);
        let _ = tx.send(0, n(1), P(0));
        let _ = tx.send(0, n(2), P(1));
        assert_eq!(tx.next_timer(), Some(5));
        assert!(tx.on_timer(4).is_empty()); // not due yet
        let retx = tx.on_timer(5);
        assert_eq!(retx.len(), 2);
        assert!(retx
            .iter()
            .all(|(_, m)| matches!(m, SessionMsg::Data { retx: true, .. })));
        assert_eq!(retx[0].0, n(1)); // deterministic peer order
        assert_eq!(tx.next_timer(), Some(10)); // re-armed
        assert_eq!(tx.stats().retransmits, 2);
        // Partial ack: only peer 1's payload clears.
        tx.on_receive(
            11,
            n(1),
            SessionMsg::Ack {
                cum: 1,
                src_inc: 0,
                dst_inc: 0,
            },
        );
        assert_eq!(tx.unacked(), 1);
        assert!(tx.next_timer().is_some());
    }

    #[test]
    fn retransmit_to_replays_the_whole_unacked_window() {
        let mut tx: ReliableLink<P> = ReliableLink::new(10);
        let _ = tx.send(0, n(1), P(0));
        let _ = tx.send(1, n(1), P(1));
        let _ = tx.send(2, n(2), P(9));
        // A reconnect to peer 1 replays its frames even though no RTO
        // has elapsed, in sequence order, flagged as retransmissions.
        let replay = tx.retransmit_to(3, n(1));
        assert_eq!(replay.len(), 2);
        assert!(matches!(
            replay[0],
            SessionMsg::Data {
                seq: 0,
                retx: true,
                ..
            }
        ));
        assert!(matches!(replay[1], SessionMsg::Data { seq: 1, .. }));
        assert_eq!(tx.stats().retransmits, 2);
        // Peer 2 is untouched; the timer re-arms from the replay time.
        assert_eq!(tx.unacked(), 3);
        assert_eq!(tx.next_timer(), Some(12)); // peer 2's 2 + rto 10
                                               // A peer with nothing unacked replays nothing.
        assert!(tx.retransmit_to(4, n(3)).is_empty());
        // Delivery after replay still happens exactly once downstream.
        let mut rx: ReliableLink<P> = ReliableLink::new(10);
        let mut got = Vec::new();
        for m in replay {
            got.extend(rx.on_receive(5, n(0), m).1);
        }
        assert_eq!(got, vec![P(0), P(1)]);
    }

    #[test]
    fn restart_rebases_the_window_and_fences_the_old_life() {
        let mut a: ReliableLink<P> = ReliableLink::new(10);
        let mut b: ReliableLink<P> = ReliableLink::new(10);
        // A sends two frames; B delivers and acks the first, then
        // crashes before seeing the second.
        let m0 = a.send(0, n(1), P(0));
        let m1 = a.send(0, n(1), P(1));
        let (acks, got) = b.on_receive(1, n(0), m0);
        assert_eq!(got, vec![P(0)]);
        a.on_receive(1, n(1), acks[0].clone());
        assert_eq!(a.unacked(), 1);
        // B restarts as incarnation 1 (recovered from its WAL).
        let mut b2: ReliableLink<P> = ReliableLink::with_incarnation(10, 1);
        assert_eq!(b2.incarnation(), 1);
        // Its Hello makes A rebase: the surviving unacked frame is
        // resequenced from 0 and returned for immediate retransmission —
        // the recovered node is fast-forwarded by the window.
        let (rebased, got) = a.on_receive(2, n(1), b2.hello());
        assert!(got.is_empty());
        assert_eq!(rebased.len(), 1);
        assert!(matches!(
            rebased[0],
            SessionMsg::Data {
                seq: 0,
                retx: true,
                src_inc: 0,
                dst_inc: 1,
                ..
            }
        ));
        let (_, got) = b2.on_receive(3, n(0), rebased[0].clone());
        assert_eq!(got, vec![P(1)]);
        // The old life's in-flight frame reaches the new life: dropped,
        // answered with a Hello instead of corrupting the fresh space.
        let (replies, got) = b2.on_receive(4, n(0), m1);
        assert!(got.is_empty());
        assert_eq!(replies, vec![SessionMsg::Hello { inc: 1 }]);
        // And a dead life's ack reaching A is dropped silently.
        let before = a.unacked();
        let (replies, got) = a.on_receive(
            5,
            n(1),
            SessionMsg::Ack {
                cum: 99,
                src_inc: 0,
                dst_inc: 0,
            },
        );
        assert!(replies.is_empty() && got.is_empty());
        assert_eq!(a.unacked(), before);
    }

    #[test]
    fn session_kinds_separate_fresh_retx_and_acks() {
        let fresh = SessionMsg::Data {
            seq: 0,
            retx: false,
            src_inc: 0,
            dst_inc: 0,
            payload: P(1),
        };
        let again = SessionMsg::Data {
            seq: 0,
            retx: true,
            src_inc: 0,
            dst_inc: 0,
            payload: P(1),
        };
        let ack: SessionMsg<P> = SessionMsg::Ack {
            cum: 1,
            src_inc: 0,
            dst_inc: 0,
        };
        let hello: SessionMsg<P> = SessionMsg::Hello { inc: 2 };
        assert_eq!(fresh.kind(), "P");
        assert_eq!(again.kind(), kinds::RETX);
        assert_eq!(ack.kind(), kinds::ACK);
        assert_eq!(hello.kind(), kinds::HELLO);
        // Incarnation stamps cost 8 bytes per sequenced frame.
        assert_eq!(fresh.wire_size(), Some(21));
        assert_eq!(ack.wire_size(), Some(17));
        assert_eq!(hello.wire_size(), Some(5));
    }

    #[test]
    fn session_msgs_round_trip_on_the_wire() {
        fn round_trip(msg: SessionMsg<u64>) {
            let mut buf = BytesMut::new();
            msg.encode(&mut buf);
            assert_eq!(buf.len(), msg.encoded_len());
            let mut bytes = buf.freeze();
            assert_eq!(SessionMsg::<u64>::decode(&mut bytes).unwrap(), msg);
            assert_eq!(bytes.remaining(), 0);
        }
        round_trip(SessionMsg::Data {
            seq: 42,
            retx: true,
            src_inc: 3,
            dst_inc: 1,
            payload: 7,
        });
        round_trip(SessionMsg::Ack {
            cum: 9,
            src_inc: 2,
            dst_inc: 0,
        });
        round_trip(SessionMsg::Raw(3));
        round_trip(SessionMsg::Hello { inc: 5 });
        let mut bad = Bytes::from(vec![9u8]);
        assert_eq!(
            SessionMsg::<u64>::decode(&mut bad),
            Err(CodecError::BadDiscriminant(9))
        );
    }
}
