//! CI smoke batch for the typed-object layer: fixed-seed object chaos
//! runs (family cycles counter → set → map → queue with the seed) under
//! random drop/partition/crash plans, each run checked by the causal
//! oracle *and* its family's per-object sequential-spec oracle, plus a
//! smaller owner-crash batch with failover enabled.
//!
//! Exits nonzero if any run wedges or violates either oracle, printing
//! the reproducing seed and fault plan.
//!
//! ```text
//! cargo run -p dsm-faults --bin objects-smoke [runs] [owner_crash_runs]
//! ```

use dsm_faults::{run_object_chaos_batch, run_object_owner_crash_batch, ChaosConfig};

fn main() {
    let mut args = std::env::args().skip(1);
    let runs: usize = args
        .next()
        .map(|a| a.parse().expect("runs must be a number"))
        .unwrap_or(100);
    let owner_crash_runs: usize = args
        .next()
        .map(|a| a.parse().expect("owner_crash_runs must be a number"))
        .unwrap_or(8);
    let cfg = ChaosConfig::default(); // 3 nodes, random drops/partitions/crashes
    let batch = run_object_chaos_batch(0, runs, &cfg);
    print!("objects {batch}");
    let owner_batch = run_object_owner_crash_batch(0, owner_crash_runs, &cfg);
    print!("objects owner-crash {owner_batch}");
    if !batch.all_ok() || !owner_batch.all_ok() {
        std::process::exit(1);
    }
}
