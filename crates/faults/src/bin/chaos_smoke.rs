//! CI smoke batch: 25 fixed-seed chaos runs on a 3-node cluster.
//!
//! Exits nonzero if any run violates the causal specification or wedges,
//! printing the reproducing seed and fault plan.
//!
//! ```text
//! cargo run -p dsm-faults --bin chaos-smoke [runs]
//! ```

use dsm_faults::{run_chaos_batch, ChaosConfig};

fn main() {
    let runs: usize = std::env::args()
        .nth(1)
        .map(|a| a.parse().expect("runs must be a number"))
        .unwrap_or(25);
    let cfg = ChaosConfig::default(); // 3 nodes, random drops/partitions/crashes
    let batch = run_chaos_batch(0, runs, &cfg);
    print!("{batch}");
    if !batch.all_ok() {
        std::process::exit(1);
    }
}
