//! CI smoke batch: 25 fixed-seed chaos runs on a 3-node cluster, plus
//! 10 fixed-seed **owner-crash** runs with failover enabled (a page's
//! static owner fail-stops permanently mid-run; the surviving clients
//! must still finish via epoch-stamped migration).
//!
//! Exits nonzero if any run violates the causal specification or wedges,
//! printing the reproducing seed and fault plan.
//!
//! ```text
//! cargo run -p dsm-faults --bin chaos-smoke [runs] [owner_crash_runs]
//! ```

use dsm_faults::{run_chaos_batch, run_owner_crash_batch, ChaosConfig};

fn main() {
    let mut args = std::env::args().skip(1);
    let runs: usize = args
        .next()
        .map(|a| a.parse().expect("runs must be a number"))
        .unwrap_or(25);
    let owner_crash_runs: usize = args
        .next()
        .map(|a| a.parse().expect("owner_crash_runs must be a number"))
        .unwrap_or(10);
    let cfg = ChaosConfig::default(); // 3 nodes, random drops/partitions/crashes
    let batch = run_chaos_batch(0, runs, &cfg);
    print!("{batch}");
    let owner_batch = run_owner_crash_batch(0, owner_crash_runs, &cfg);
    print!("owner-crash {owner_batch}");
    if !batch.all_ok() || !owner_batch.all_ok() {
        std::process::exit(1);
    }
}
