//! CI smoke batch for the durability layer: fixed-seed restart-with-disk
//! chaos runs. Each run crashes a durable owner at a seeded WAL offset
//! (including mid-record torn tails), restarts it against the surviving
//! bytes, and checks the extended oracle: termination, causality,
//! incarnation bump, and — under `every_op` sync — that no certified
//! write was lost at the recovery instant. A smaller second batch runs
//! the same scenario under `interval(4)` sync, checking the liveness
//! half only.
//!
//! Exits nonzero on any failure, printing the reproducing seed and plan.
//!
//! ```text
//! cargo run -p dsm-faults --bin recovery-smoke [runs] [liveness_runs]
//! ```

use dsm_faults::{
    run_recovery_chaos_batch, run_recovery_liveness_once, sample_recovery_config, ChaosConfig,
};

fn main() {
    let mut args = std::env::args().skip(1);
    let runs: usize = args
        .next()
        .map(|a| a.parse().expect("runs must be a number"))
        .unwrap_or(100);
    let liveness_runs: usize = args
        .next()
        .map(|a| a.parse().expect("liveness_runs must be a number"))
        .unwrap_or(10);
    let cfg = ChaosConfig::default();
    let batch = run_recovery_chaos_batch(0, runs, &cfg);
    print!("recovery {batch}");
    let mut liveness_failures = 0usize;
    for seed in 0..liveness_runs as u64 {
        let outcome = run_recovery_liveness_once(seed, &sample_recovery_config(&cfg, seed));
        if !outcome.ok() {
            liveness_failures += 1;
            print!("{outcome}");
        }
    }
    println!(
        "recovery-liveness: {liveness_runs} runs, {liveness_failures} failures (interval sync)"
    );
    if !batch.all_ok() || liveness_failures > 0 {
        std::process::exit(1);
    }
}
