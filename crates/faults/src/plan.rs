//! Replayable fault plans: *what* goes wrong, *where*, and *when*.
//!
//! A [`FaultPlan`] is pure data — probabilities per link plus scheduled
//! partition and crash windows — so printing it (it implements `Debug`)
//! together with its seed is a complete reproduction recipe. The
//! [`FaultInjector`](crate::FaultInjector) turns a plan into a live
//! [`FaultHook`](simnet::FaultHook) by pairing it with a seeded RNG.

use memcore::NodeId;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Per-link fault probabilities, applied independently to every message
/// the link carries.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkFaults {
    /// Probability a message is silently lost.
    pub drop: f64,
    /// Probability a message is delivered twice.
    pub dup: f64,
    /// Probability a message suffers an extra delay spike.
    pub spike: f64,
    /// The extra delay of a spike, in simulator time units.
    pub spike_delay: u64,
}

impl LinkFaults {
    /// A perfectly healthy link.
    #[must_use]
    pub fn none() -> Self {
        LinkFaults {
            drop: 0.0,
            dup: 0.0,
            spike: 0.0,
            spike_delay: 0,
        }
    }

    /// A link that only drops, with probability `p`.
    #[must_use]
    pub fn dropping(p: f64) -> Self {
        LinkFaults {
            drop: p,
            ..LinkFaults::none()
        }
    }
}

impl Default for LinkFaults {
    fn default() -> Self {
        LinkFaults::none()
    }
}

/// A scheduled network partition: during `[start, heal)`, messages
/// between `group` and the remaining nodes are cut (dropped). Both sides
/// stay alive and talk freely within themselves; at `heal` the cut closes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Partition {
    /// First instant the cut is active.
    pub start: u64,
    /// First instant after healing (exclusive end).
    pub heal: u64,
    /// One side of the cut (node indices); the other side is everyone else.
    pub group: Vec<u32>,
}

impl Partition {
    /// `true` iff a message from `src` to `dst` at time `now` crosses the
    /// active cut.
    #[must_use]
    pub fn cuts(&self, src: NodeId, dst: NodeId, now: u64) -> bool {
        if now < self.start || now >= self.heal {
            return false;
        }
        let a = self.group.contains(&(src.index() as u32));
        let b = self.group.contains(&(dst.index() as u32));
        a != b
    }
}

/// A scheduled crash: `node` is down during `[start, restart)` — it loses
/// every message addressed to it and performs no work — then resumes with
/// its durable protocol state intact (a pause-crash, the model under which
/// the session layer must re-derive exactly-once delivery).
///
/// A `restart` of [`u64::MAX`] means the node never comes back within the
/// run — a permanent fail-stop, survivable only with owner failover
/// enabled (see [`FaultPlan::crash_owner_at`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Crash {
    /// The crashing node's index.
    pub node: u32,
    /// First instant of the outage.
    pub start: u64,
    /// First instant the node is back (exclusive end of the outage).
    pub restart: u64,
}

/// A complete, replayable description of everything the network will do
/// wrong: probabilistic per-link faults plus scheduled partitions and
/// crashes.
///
/// Plans whose partitions all heal and whose crashes all restart — which
/// [`FaultPlan::random`] guarantees — cannot wedge a session-layered run:
/// every retransmission eventually finds a live path.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    /// Faults applied to every link without an override.
    pub default_link: LinkFaults,
    /// Per-link overrides, keyed by `(src, dst)` node indices.
    pub link_overrides: Vec<((u32, u32), LinkFaults)>,
    /// Scheduled partitions (all heal).
    pub partitions: Vec<Partition>,
    /// Scheduled crashes (all restart).
    pub crashes: Vec<Crash>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

impl FaultPlan {
    /// The empty plan: a perfectly reliable network.
    #[must_use]
    pub fn none() -> Self {
        FaultPlan {
            default_link: LinkFaults::none(),
            link_overrides: Vec::new(),
            partitions: Vec::new(),
            crashes: Vec::new(),
        }
    }

    /// A plan applying `faults` uniformly to every link.
    #[must_use]
    pub fn uniform(faults: LinkFaults) -> Self {
        FaultPlan {
            default_link: faults,
            ..FaultPlan::none()
        }
    }

    /// Overrides the faults of one directed link.
    #[must_use]
    pub fn with_link(mut self, src: u32, dst: u32, faults: LinkFaults) -> Self {
        self.link_overrides.push(((src, dst), faults));
        self
    }

    /// Adds a scheduled partition.
    ///
    /// # Panics
    ///
    /// Panics if the partition never heals (`heal <= start`).
    #[must_use]
    pub fn with_partition(mut self, start: u64, heal: u64, group: Vec<u32>) -> Self {
        assert!(heal > start, "partitions must heal");
        self.partitions.push(Partition { start, heal, group });
        self
    }

    /// Adds a scheduled crash.
    ///
    /// # Panics
    ///
    /// Panics if the node never restarts (`restart <= start`).
    #[must_use]
    pub fn with_crash(mut self, node: u32, start: u64, restart: u64) -> Self {
        assert!(restart > start, "crashed nodes must restart");
        self.crashes.push(Crash {
            node,
            start,
            restart,
        });
        self
    }

    /// Crashes the node serving `page` under the static (epoch-zero)
    /// assignment at time `at`, **permanently**: the owner never restarts
    /// within the run. Without owner failover such a run wedges (every
    /// miss on the page times out forever); with failover enabled the
    /// page migrates to its successor and the run completes — which is
    /// exactly what the owner-crash chaos suite checks. Chain
    /// [`FaultPlan::restart_at`] to turn the outage into a
    /// crash-*recovery* scenario instead.
    #[must_use]
    pub fn crash_owner_at(
        mut self,
        owners: &dyn memcore::OwnerMap,
        page: memcore::PageId,
        at: u64,
    ) -> Self {
        let node = owners.owner_of_page(page).index() as u32;
        self.crashes.push(Crash {
            node,
            start: at,
            restart: u64::MAX,
        });
        self
    }

    /// Schedules the restart of the most recently added crash at `at`
    /// (typically after [`FaultPlan::crash_owner_at`], turning a
    /// permanent fail-stop into a crash-recovery window: the ex-owner
    /// rejoins as a cache-only node for its migrated pages).
    ///
    /// # Panics
    ///
    /// Panics if no crash was added yet, or if `at` does not lie after
    /// the crash's start.
    #[must_use]
    pub fn restart_at(mut self, at: u64) -> Self {
        let crash = self
            .crashes
            .last_mut()
            .expect("restart_at needs a preceding crash");
        assert!(at > crash.start, "restart must follow the crash");
        crash.restart = at;
        self
    }

    /// The faults governing the `src -> dst` link.
    #[must_use]
    pub fn link(&self, src: NodeId, dst: NodeId) -> LinkFaults {
        let key = (src.index() as u32, dst.index() as u32);
        self.link_overrides
            .iter()
            .rev() // last override wins
            .find(|(k, _)| *k == key)
            .map_or(self.default_link, |(_, f)| *f)
    }

    /// `true` iff an active partition cuts `src -> dst` at `now`.
    #[must_use]
    pub fn cut(&self, src: NodeId, dst: NodeId, now: u64) -> bool {
        self.partitions.iter().any(|p| p.cuts(src, dst, now))
    }

    /// If `node` is down at `at`, the time it restarts.
    #[must_use]
    pub fn down_until(&self, node: NodeId, at: u64) -> Option<u64> {
        let idx = node.index() as u32;
        self.crashes
            .iter()
            .filter(|c| c.node == idx && c.start <= at && at < c.restart)
            .map(|c| c.restart)
            .max()
    }

    /// A random but fully determined plan for an `nodes`-node run expected
    /// to last about `horizon` time units: uniform drop/dup/spike rates
    /// (drops up to 20%), usually one partition, and usually one
    /// crash/restart. The same `(seed, nodes, horizon)` always yields the
    /// same plan.
    ///
    /// # Panics
    ///
    /// Panics if `nodes < 2` or `horizon < 8`.
    #[must_use]
    pub fn random(seed: u64, nodes: u32, horizon: u64) -> Self {
        assert!(nodes >= 2, "fault plans need at least two nodes");
        assert!(horizon >= 8, "horizon too short to schedule faults");
        // Distinct stream from the workload/latency RNGs using the same seed.
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xFA17_AB1E_D00D_0001);
        let default_link = LinkFaults {
            drop: rng.gen_range(0.0..0.20),
            dup: rng.gen_range(0.0..0.10),
            spike: rng.gen_range(0.0..0.10),
            spike_delay: rng.gen_range(1..=horizon / 8),
        };
        let mut plan = FaultPlan::uniform(default_link);
        if rng.gen_bool(0.7) {
            // One partition, cutting a random nonempty proper subset.
            let start = rng.gen_range(0..horizon / 2);
            let heal = start + rng.gen_range(1..=horizon / 4);
            let split = rng.gen_range(1..nodes);
            let group: Vec<u32> = (0..split).collect();
            plan = plan.with_partition(start, heal, group);
        }
        if rng.gen_bool(0.7) {
            let node = rng.gen_range(0..nodes);
            let start = rng.gen_range(0..horizon / 2);
            let restart = start + rng.gen_range(1..=horizon / 4);
            plan = plan.with_crash(node, start, restart);
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn partition_cuts_only_across_groups_and_only_while_active() {
        let plan = FaultPlan::none().with_partition(10, 20, vec![0]);
        assert!(!plan.cut(p(0), p(1), 9));
        assert!(plan.cut(p(0), p(1), 10));
        assert!(plan.cut(p(1), p(0), 19));
        assert!(!plan.cut(p(0), p(1), 20));
        // Within one side, traffic flows.
        let plan2 = FaultPlan::none().with_partition(0, 100, vec![0, 1]);
        assert!(!plan2.cut(p(0), p(1), 50));
        assert!(plan2.cut(p(1), p(2), 50));
    }

    #[test]
    fn crash_window_is_half_open() {
        let plan = FaultPlan::none().with_crash(1, 5, 15);
        assert_eq!(plan.down_until(p(1), 4), None);
        assert_eq!(plan.down_until(p(1), 5), Some(15));
        assert_eq!(plan.down_until(p(1), 14), Some(15));
        assert_eq!(plan.down_until(p(1), 15), None);
        assert_eq!(plan.down_until(p(0), 10), None);
    }

    #[test]
    fn link_overrides_beat_default() {
        let plan =
            FaultPlan::uniform(LinkFaults::dropping(0.5)).with_link(0, 1, LinkFaults::none());
        assert_eq!(plan.link(p(0), p(1)), LinkFaults::none());
        assert_eq!(plan.link(p(1), p(0)), LinkFaults::dropping(0.5));
    }

    #[test]
    fn random_plans_are_reproducible_and_always_heal() {
        for seed in 0..50 {
            let a = FaultPlan::random(seed, 4, 1000);
            let b = FaultPlan::random(seed, 4, 1000);
            assert_eq!(a, b);
            assert!(a.default_link.drop < 0.20);
            for part in &a.partitions {
                assert!(part.heal > part.start);
            }
            for crash in &a.crashes {
                assert!(crash.restart > crash.start);
            }
        }
        assert_ne!(FaultPlan::random(1, 4, 1000), FaultPlan::random(2, 4, 1000));
    }

    #[test]
    #[should_panic(expected = "must heal")]
    fn eternal_partitions_are_rejected() {
        let _ = FaultPlan::none().with_partition(10, 10, vec![0]);
    }

    #[test]
    fn crash_owner_at_targets_the_static_owner_permanently() {
        // Round-robin over 3 nodes: page 4 belongs to node 1.
        let owners = memcore::RoundRobinOwners::new(3, 2);
        let plan = FaultPlan::none().crash_owner_at(&owners, memcore::PageId::new(4), 100);
        assert_eq!(
            plan.crashes,
            vec![Crash {
                node: 1,
                start: 100,
                restart: u64::MAX
            }]
        );
        // Permanent: still down arbitrarily far into the run.
        assert_eq!(plan.down_until(p(1), u64::MAX - 1), Some(u64::MAX));
        assert_eq!(plan.down_until(p(0), 1_000_000), None);
    }

    #[test]
    fn restart_at_turns_the_fail_stop_into_a_recovery_window() {
        let owners = memcore::RoundRobinOwners::new(3, 2);
        let plan = FaultPlan::none()
            .crash_owner_at(&owners, memcore::PageId::new(0), 50)
            .restart_at(200);
        assert_eq!(
            plan.crashes,
            vec![Crash {
                node: 0,
                start: 50,
                restart: 200
            }]
        );
        assert_eq!(plan.down_until(p(0), 199), Some(200));
        assert_eq!(plan.down_until(p(0), 200), None);
    }

    #[test]
    #[should_panic(expected = "restart must follow")]
    fn restart_before_crash_is_rejected() {
        let owners = memcore::RoundRobinOwners::new(3, 2);
        let _ = FaultPlan::none()
            .crash_owner_at(&owners, memcore::PageId::new(0), 50)
            .restart_at(50);
    }
}
