//! The live fault injector: a [`FaultPlan`] plus a seeded RNG, exposed as
//! a [`FaultHook`] the transports consult.

use memcore::NodeId;
use parking_lot::Mutex;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use simnet::{FaultHook, SendFate};

use crate::plan::FaultPlan;

/// Turns a [`FaultPlan`] into per-message fate decisions.
///
/// Every probabilistic decision draws from one seeded ChaCha8 stream, and
/// each `on_send` consumes a fixed number of draws (drop, spike, dup — in
/// that order), so a run is replayable: the same seed, plan, and send
/// sequence yield the same faults. The deterministic simulator calls
/// `on_send` from a single thread in event order, which makes the whole
/// execution a pure function of `(workload seed, plan, injector seed)`.
pub struct FaultInjector {
    plan: FaultPlan,
    rng: Mutex<ChaCha8Rng>,
}

impl FaultInjector {
    /// Pairs `plan` with a ChaCha8 stream seeded by `seed`.
    #[must_use]
    pub fn new(seed: u64, plan: FaultPlan) -> Self {
        FaultInjector {
            plan,
            rng: Mutex::new(ChaCha8Rng::seed_from_u64(seed)),
        }
    }

    /// The plan this injector executes.
    #[must_use]
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }
}

impl std::fmt::Debug for FaultInjector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultInjector")
            .field("plan", &self.plan)
            .finish_non_exhaustive()
    }
}

impl FaultHook for FaultInjector {
    fn on_send(&self, src: NodeId, dst: NodeId, _kind: &'static str, now: u64) -> SendFate {
        let faults = self.plan.link(src, dst);
        // Fixed draw count per send keeps the stream aligned across
        // replays regardless of which faults fire.
        let mut rng = self.rng.lock();
        let dropped = rng.gen_bool(faults.drop);
        let spiked = rng.gen_bool(faults.spike);
        let duplicated = rng.gen_bool(faults.dup);
        drop(rng);

        // Scheduled cuts are deterministic in time and override the dice.
        if self.plan.cut(src, dst, now) || dropped {
            return SendFate::dropped();
        }
        let extra = if spiked { faults.spike_delay } else { 0 };
        if duplicated {
            // The duplicate trails the original by one time unit.
            SendFate {
                copies: vec![extra, extra + 1],
            }
        } else {
            SendFate::delayed(extra)
        }
    }

    fn down_until(&self, node: NodeId, at: u64) -> Option<u64> {
        self.plan.down_until(node, at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::LinkFaults;

    fn p(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn same_seed_same_fates() {
        let plan = FaultPlan::uniform(LinkFaults {
            drop: 0.3,
            dup: 0.3,
            spike: 0.3,
            spike_delay: 5,
        });
        let a = FaultInjector::new(42, plan.clone());
        let b = FaultInjector::new(42, plan);
        for i in 0..1000 {
            assert_eq!(
                a.on_send(p(0), p(1), "READ", i),
                b.on_send(p(0), p(1), "READ", i)
            );
        }
    }

    #[test]
    fn healthy_plan_never_interferes() {
        let inj = FaultInjector::new(7, FaultPlan::none());
        for i in 0..100 {
            assert_eq!(inj.on_send(p(0), p(1), "X", i), SendFate::deliver());
        }
        assert_eq!(inj.down_until(p(0), 50), None);
    }

    #[test]
    fn partitions_cut_deterministically() {
        let plan = FaultPlan::none().with_partition(10, 20, vec![0]);
        let inj = FaultInjector::new(7, plan);
        assert_eq!(inj.on_send(p(0), p(1), "X", 15), SendFate::dropped());
        assert_eq!(inj.on_send(p(0), p(1), "X", 25), SendFate::deliver());
    }

    #[test]
    fn crash_windows_pass_through() {
        let plan = FaultPlan::none().with_crash(2, 5, 9);
        let inj = FaultInjector::new(0, plan);
        assert_eq!(inj.down_until(p(2), 6), Some(9));
        assert_eq!(inj.down_until(p(2), 9), None);
    }
}
