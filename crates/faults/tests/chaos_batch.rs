//! The chaos suite's acceptance run: hundreds of seeded executions under
//! random fault plans — drop rates up to 20%, partitions that heal, node
//! crash/restart — every one checked against the causal specification,
//! none allowed to wedge, and any failure reported with its reproducing
//! seed and plan.

use dsm_faults::{run_chaos_batch, run_chaos_once, ChaosConfig};

#[test]
fn two_hundred_seeded_chaos_runs_stay_causal_and_terminate() {
    let cfg = ChaosConfig::default();
    let batch = run_chaos_batch(0, 200, &cfg);
    assert!(batch.all_ok(), "{batch}");
    assert_eq!(batch.runs, 200);
    // The batch exercised the whole fault envelope, not a lucky corner:
    // real drop rates, at least one partition, at least one crash/restart.
    let plans: Vec<_> = (0..200u64)
        .map(|seed| run_chaos_once(seed, &cfg).plan)
        .collect();
    assert!(plans.iter().any(|p| p.default_link.drop > 0.10));
    assert!(plans.iter().all(|p| p.default_link.drop < 0.20));
    assert!(plans.iter().any(|p| !p.partitions.is_empty()));
    assert!(plans.iter().any(|p| !p.crashes.is_empty()));
    assert!(plans
        .iter()
        .flat_map(|p| &p.partitions)
        .all(|part| part.heal > part.start));
    assert!(plans
        .iter()
        .flat_map(|p| &p.crashes)
        .all(|c| c.restart > c.start));
    // Faults made the session layer work for its living.
    assert!(batch.overhead_messages > 0);
    assert!(batch.protocol_messages > 0);
}

#[test]
fn bigger_clusters_survive_chaos_too() {
    let cfg = ChaosConfig {
        nodes: 5,
        ops_per_node: 10,
        ..ChaosConfig::default()
    };
    let batch = run_chaos_batch(1000, 25, &cfg);
    assert!(batch.all_ok(), "{batch}");
}

#[test]
fn a_seed_reproduces_its_execution_exactly() {
    let cfg = ChaosConfig::default();
    for seed in [0, 7, 42, 123] {
        let a = run_chaos_once(seed, &cfg);
        let b = run_chaos_once(seed, &cfg);
        assert_eq!(a.plan, b.plan, "seed {seed}: plans diverged");
        assert_eq!(a.time, b.time, "seed {seed}: makespans diverged");
        assert_eq!(
            a.messages.by_kind(),
            b.messages.by_kind(),
            "seed {seed}: message counts diverged"
        );
        assert_eq!(a.ops, b.ops, "seed {seed}: recorded operations diverged");
    }
}
