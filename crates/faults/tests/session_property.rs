//! Property test for the session layer: over a channel that drops,
//! duplicates, and reorders with random (but seeded) rates, a
//! [`ReliableLink`] pair still delivers every payload exactly once, in
//! order — here 10 000 payloads per case.

use std::collections::BTreeMap;

use dsm_faults::{ReliableLink, SessionMsg};
use memcore::NodeId;
use proptest::prelude::*;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

const N: u64 = 10_000;
const RTO: u64 = 16;

enum Event {
    /// The application hands payload `i` to the sender.
    Send(u64),
    /// A channel copy arrives at one end.
    Arrive {
        to_receiver: bool,
        msg: SessionMsg<u64>,
    },
}

/// Applies the lossy channel to one frame: maybe drop, maybe duplicate,
/// always delay by a random amount (which is what reorders frames).
#[allow(clippy::too_many_arguments)]
fn channel_push(
    rng: &mut ChaCha8Rng,
    events: &mut BTreeMap<(u64, u64), Event>,
    tie: &mut u64,
    now: u64,
    drop_rate: f64,
    dup_rate: f64,
    to_receiver: bool,
    msg: &SessionMsg<u64>,
) {
    if rng.gen_bool(drop_rate) {
        return;
    }
    let copies = if rng.gen_bool(dup_rate) { 2 } else { 1 };
    for _ in 0..copies {
        let arrival = now + 1 + rng.gen_range(0..8u64);
        events.insert(
            (arrival, *tie),
            Event::Arrive {
                to_receiver,
                msg: msg.clone(),
            },
        );
        *tie += 1;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    fn lossy_channel_still_delivers_exactly_once_in_order(
        drop_rate in 0.0..0.5f64,
        dup_rate in 0.0..0.4f64,
        seed in 0u64..1_000_000,
    ) {
        let sender_id = NodeId::new(0);
        let receiver_id = NodeId::new(1);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut tx: ReliableLink<u64> = ReliableLink::new(RTO);
        let mut rx: ReliableLink<u64> = ReliableLink::new(RTO);

        // One fresh payload enters the sender per time unit.
        let mut events: BTreeMap<(u64, u64), Event> = BTreeMap::new();
        let mut tie = 0u64;
        for i in 0..N {
            events.insert((i, tie), Event::Send(i));
            tie += 1;
        }

        let mut delivered: Vec<u64> = Vec::with_capacity(N as usize);
        let mut guard = 0u64;
        while (delivered.len() as u64) < N {
            guard += 1;
            prop_assert!(guard < 30_000_000, "channel wedged after {} deliveries", delivered.len());

            let queue_next = events.keys().next().copied();
            let timer = tx.next_timer();
            // Fire the retransmission timer when it is the earliest event.
            if let Some(due) = timer {
                if queue_next.is_none_or(|(t, _)| due <= t) {
                    let now = due;
                    for (_, frame) in tx.on_timer(now) {
                        channel_push(
                            &mut rng, &mut events, &mut tie, now, drop_rate, dup_rate, true,
                            &frame,
                        );
                    }
                    continue;
                }
            }
            let Some(key) = queue_next else {
                prop_assert!(
                    false,
                    "wedged: queue drained with {} of {N} delivered",
                    delivered.len()
                );
                unreachable!();
            };
            let now = key.0;
            match events.remove(&key).unwrap() {
                Event::Send(i) => {
                    let frame = tx.send(now, receiver_id, i);
                    channel_push(
                        &mut rng, &mut events, &mut tie, now, drop_rate, dup_rate, true, &frame,
                    );
                }
                Event::Arrive { to_receiver: true, msg } => {
                    let (acks, got) = rx.on_receive(now, sender_id, msg);
                    delivered.extend(got);
                    for ack in acks {
                        channel_push(
                            &mut rng, &mut events, &mut tie, now, drop_rate, dup_rate, false,
                            &ack,
                        );
                    }
                }
                Event::Arrive { to_receiver: false, msg } => {
                    let _ = tx.on_receive(now, receiver_id, msg);
                }
            }
        }

        // Exactly once, in order: the delivered stream is 0..N verbatim.
        prop_assert_eq!(delivered.len() as u64, N);
        for (i, &got) in delivered.iter().enumerate() {
            prop_assert_eq!(got, i as u64, "payload {} delivered out of order", i);
        }
        // The channel really was hostile (unless the dice said otherwise).
        let stats = tx.stats();
        prop_assert_eq!(stats.data_sent, N);
        if drop_rate > 0.05 {
            prop_assert!(stats.retransmits > 0, "no retransmissions at drop rate {}", drop_rate);
        }
    }
}
