//! Owner-crash chaos at scale: 200 seeded runs in which a page's static
//! owner fail-stops permanently mid-run, with owner failover as the
//! survival mechanism and the causal checker as oracle.
//!
//! Each seed samples its own crash instant, victim page, background drop
//! rate and pipeline window ([`sample_owner_crash_config`] alternates
//! `{0, 32}`, so writes-in-flight-during-migration are exercised both in
//! the paper's blocking protocol and under deep pipelining). Any failure
//! prints the seed + fault plan that reproduce it exactly.

use dsm_faults::{
    owner_crash_plan, run_owner_crash_batch, run_owner_crash_once, sample_owner_crash_config,
    ChaosConfig,
};

#[test]
fn two_hundred_owner_crash_runs_stay_causal() {
    let batch = run_owner_crash_batch(0, 200, &ChaosConfig::default());
    assert_eq!(batch.runs, 200);
    assert!(batch.all_ok(), "{batch}");
    // Failover is genuinely on across the batch: liveness probes and at
    // least one migration broadcast are visible in the overhead counters.
    assert!(batch.overhead_messages > 0);
}

#[test]
fn owner_crash_plans_are_pure_functions_of_the_seed() {
    let cfg = ChaosConfig::default();
    for seed in 0..50 {
        let (a, victim_a) = owner_crash_plan(seed, &cfg, 6);
        let (b, victim_b) = owner_crash_plan(seed, &cfg, 6);
        assert_eq!(a, b);
        assert_eq!(victim_a, victim_b);
        // The centerpiece crash is permanent and lands in the scheduled
        // window, so the victim serves first and dies mid-run.
        let crash = a.crashes.last().expect("plan has a crash");
        assert_eq!(crash.restart, u64::MAX);
        assert!(crash.start >= cfg.horizon / 4 && crash.start < cfg.horizon / 2);
        assert_eq!(crash.node, victim_a);
    }
}

#[test]
fn wedge_detection_still_works_under_failover() {
    // A degenerate budget must be reported as a wedge, not a pass — the
    // owner-crash judge may not weaken the termination check.
    let mut cfg = ChaosConfig::default();
    cfg.limits.max_events = 50;
    let outcome = run_owner_crash_once(0, &sample_owner_crash_config(&cfg, 0));
    assert!(outcome.wedged);
    assert!(!outcome.ok());
}
