//! The typed-operation alphabet shared by all object families.
//!
//! One enum covers every family so a single recorder, client, and oracle
//! type parameterization serves the whole crate; each concrete object
//! only ever emits its own subset.

use causal_spec::{TypedOp, TypedRecorder};

use crate::value::ObjVal;

/// A high-level object operation (kind + arguments).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ObjOp {
    /// PN-counter: add `delta` (negative deltas decrement).
    CtrAdd(i64),
    /// PN-counter: read the current value.
    CtrValue,
    /// OR-set: add an item to this process's own row.
    SetAdd(i64),
    /// OR-set: observed-remove an item wherever this view finds it.
    SetRemove(i64),
    /// OR-set: membership query on this process's view.
    SetContains(i64),
    /// Map: bind `key → val` in this process's own row.
    MapPut(i64, i64),
    /// Map: look a key up, resolving concurrent bindings by policy.
    MapGet(i64),
    /// Map: remove every observed binding of a key.
    MapRemove(i64),
    /// FIFO queue: append an item to this producer's row.
    QPush(i64),
    /// FIFO queue: consume the next visible item (per-producer FIFO).
    QPop,
    /// Discard all non-owned cells (the paper's view-liveness `discard`).
    Refresh,
}

/// The abstract return value of a typed operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ObjRet {
    /// No payload (updates, refresh).
    Unit,
    /// Success / membership flags.
    Bool(bool),
    /// Counter values.
    Int(i64),
    /// Lookup / pop results.
    Opt(Option<i64>),
}

/// The typed-operation recorder all object clients share.
pub type ObjRecorder = TypedRecorder<ObjVal, ObjOp, ObjRet>;

/// One recorded typed operation.
pub type ObjTypedOp = TypedOp<ObjVal, ObjOp, ObjRet>;
