//! dsm-objects: a typed causal-object layer over [`memcore::SharedMemory`].
//!
//! The paper's §4.2 shows one object — a distributed dictionary — built
//! from nothing but causal reads, writes, and owner-favored conflict
//! resolution. This crate generalizes that construction into a small
//! library of **typed objects**, each encoding its state through the
//! same single-writer row-grid trick ([`GridLayout`]) so it rides every
//! layer the registers already have (pipelining, batching, failover,
//! hash-ring scoping, durability) without touching the wire protocol:
//!
//! * [`PnCounter`] — increment/decrement via per-process `(pos, neg)`
//!   component cells;
//! * [`CausalSet`] — grow/observed-remove set, the dictionary itself;
//! * [`CausalMap`] — key→value bindings whose concurrent writes are
//!   resolved by a pluggable [`MergePolicy`];
//! * [`FifoQueue`] — a per-producer FIFO append-stream whose gap-free
//!   delivery comes from causality alone.
//!
//! Cells hold [`ObjVal`], a [`simnet::codec::Wire`]-codable value type, so
//! objects serialize onto pages exactly like `Word` registers do —
//! register traffic stays byte-identical to Figure 4.
//!
//! Every object records the tagged register accesses behind each
//! high-level operation (via [`memcore::SharedMemory::read_tagged`]);
//! the recorded history is checked against the family's **sequential
//! specification** by [`ObjectOracle`] + [`causal_spec::check_object`],
//! following the lifting of causal registers to sequential-spec objects
//! in Mostéfaoui–Perrin–Raynal. [`ObjectClient`] runs the same state
//! machines inside the deterministic simulator for chaos testing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod counter;
pub mod layout;
pub mod map;
pub mod ops;
pub mod oracle;
pub mod policy;
pub mod queue;
pub mod set;
pub mod sim;
mod trace;
pub mod value;

pub use counter::PnCounter;
pub use layout::GridLayout;
pub use map::CausalMap;
pub use ops::{ObjOp, ObjRecorder, ObjRet, ObjTypedOp};
pub use oracle::{Family, ObjectOracle};
pub use policy::{BrokenFirstObserved, Candidate, MergePolicy, PolicyKind};
pub use queue::FifoQueue;
pub use set::CausalSet;
pub use sim::{FinishHook, ObjectClient};
pub use value::ObjVal;
