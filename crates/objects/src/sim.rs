//! The typed objects as a simulator client — one resumable state machine
//! covering every family, so chaos plans and adversarial schedules can
//! drive object workloads exactly as they drive register scripts.
//!
//! [`ObjectClient`] performs each [`ObjOp`] with the same register
//! accesses the threaded objects issue (own-row appends, row-major
//! scans, cursor probes, discard sweeps), records the tagged
//! observations into an [`ObjRecorder`], and hands the recorded history
//! to [`causal_spec::check_object`] via the family's
//! [`ObjectOracle`](crate::ObjectOracle).

use std::collections::VecDeque;
use std::sync::Arc;

use causal_spec::{Obs, TypedOp};
use dsm_sim::{Client, ClientOp, Outcome};
use memcore::{Location, NodeId, WriteId};

use crate::layout::GridLayout;
use crate::ops::{ObjOp, ObjRecorder, ObjRet};
use crate::policy::{Candidate, MergePolicy};
use crate::value::ObjVal;

/// Observes every finished `(op, ret)` pair, in program order (used by
/// ports that keep their own result logs).
pub type FinishHook = Box<dyn FnMut(ObjOp, ObjRet) + Send>;

enum Phase {
    /// Reading flat slots `cursor..end` (semantics depend on the op).
    Scan { cursor: usize, end: usize },
    /// Queue pop: awaiting the cell under producer `reading`'s cursor.
    Probe { reading: usize },
    /// Draining the op's pending writes.
    Commit,
    /// Discarding non-owned slots starting at flat `cursor`.
    Discard { cursor: usize },
}

enum Awaiting {
    None,
    Read(Location),
    Write(Location, ObjVal),
    Discard,
}

/// A scripted object process for the deterministic simulator.
pub struct ObjectClient {
    layout: GridLayout,
    row: usize,
    policy: Arc<dyn MergePolicy>,
    script: std::vec::IntoIter<ObjOp>,
    current: Option<ObjOp>,
    phase: Phase,
    awaiting: Awaiting,
    heads: Vec<usize>,
    // Per-operation scratch state, reset by `finish`.
    observed: Vec<Obs<ObjVal>>,
    wrote: Vec<Obs<ObjVal>>,
    last_read: Option<(Location, ObjVal, WriteId)>,
    first_free: Option<Location>,
    candidates: Vec<Candidate>,
    pending: VecDeque<(Location, ObjVal)>,
    total: i64,
    rec: Option<ObjRecorder>,
    on_finish: Option<FinishHook>,
}

impl ObjectClient {
    /// A client for process `row` of `layout`, running `script`; map
    /// lookups resolve concurrent bindings with `policy`.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    #[must_use]
    pub fn new(
        layout: GridLayout,
        row: usize,
        script: Vec<ObjOp>,
        policy: impl MergePolicy,
    ) -> Self {
        assert!(row < layout.rows(), "row out of range");
        ObjectClient {
            layout,
            row,
            policy: Arc::new(policy),
            script: script.into_iter(),
            current: None,
            phase: Phase::Scan { cursor: 0, end: 0 },
            awaiting: Awaiting::None,
            heads: vec![0; layout.rows()],
            observed: Vec::new(),
            wrote: Vec::new(),
            last_read: None,
            first_free: None,
            candidates: Vec::new(),
            pending: VecDeque::new(),
            total: 0,
            rec: None,
            on_finish: None,
        }
    }

    /// Records every finished operation's typed trace into `rec`.
    #[must_use]
    pub fn with_recorder(mut self, rec: ObjRecorder) -> Self {
        self.rec = Some(rec);
        self
    }

    /// Calls `hook` with every finished `(op, ret)` pair.
    #[must_use]
    pub fn with_finish_hook(mut self, hook: FinishHook) -> Self {
        self.on_finish = Some(hook);
        self
    }

    fn flat(&self, flat: usize) -> Location {
        self.layout.slot_flat(flat)
    }

    /// The flat scan range an operation covers: own-row for appends and
    /// counter bumps, the whole grid for queries and removes.
    fn scan_range(&self, op: ObjOp) -> (usize, usize) {
        let own_start = self.row * self.layout.cols();
        match op {
            ObjOp::CtrAdd(delta) => {
                let cell = own_start + usize::from(delta < 0);
                (cell, cell + 1)
            }
            ObjOp::SetAdd(_) | ObjOp::QPush(_) | ObjOp::MapPut(..) => {
                (own_start, own_start + self.layout.cols())
            }
            _ => (0, self.layout.rows() * self.layout.cols()),
        }
    }

    fn begin(&mut self, op: ObjOp) {
        self.current = Some(op);
        match op {
            ObjOp::Refresh => self.phase = Phase::Discard { cursor: 0 },
            ObjOp::QPop => match self.eligible_producer(0) {
                Some(p) => self.phase = Phase::Probe { reading: p },
                None => {
                    self.finish(ObjRet::Opt(None));
                }
            },
            _ => {
                let (start, end) = self.scan_range(op);
                self.phase = Phase::Scan { cursor: start, end };
            }
        }
    }

    /// The first producer row at or after `from` whose cursor still has
    /// cells left to poll.
    fn eligible_producer(&self, from: usize) -> Option<usize> {
        (from..self.layout.rows()).find(|&p| self.heads[p] < self.layout.cols())
    }

    fn finish(&mut self, ret: ObjRet) {
        let op = self.current.take().expect("finish mid-operation");
        if let Some(rec) = &self.rec {
            rec.record(
                NodeId::new(self.row as u32),
                TypedOp {
                    desc: op,
                    returned: ret,
                    observed: std::mem::take(&mut self.observed),
                    wrote: std::mem::take(&mut self.wrote),
                },
            );
        } else {
            self.observed.clear();
            self.wrote.clear();
        }
        if let Some(hook) = &mut self.on_finish {
            hook(op, ret);
        }
        self.first_free = None;
        self.candidates.clear();
        self.pending.clear();
        self.total = 0;
        self.last_read = None;
    }

    /// Folds the previous read into the scan: records candidates and
    /// running sums, and returns `Some(ret)` when the op resolves early,
    /// or commits pending writes by switching phase.
    fn interpret(&mut self, op: ObjOp, loc: Location, value: ObjVal) -> Option<ObjRet> {
        match op {
            ObjOp::CtrAdd(delta) => {
                let old = value.as_count().unwrap_or(0);
                self.pending
                    .push_back((loc, ObjVal::Count(old + delta.unsigned_abs())));
                self.phase = Phase::Commit;
            }
            ObjOp::CtrValue => {
                let count = value.as_count().unwrap_or(0) as i64;
                let (_, col) = self.layout.coords(loc);
                self.total += if col == crate::counter::POS { count } else { -count };
            }
            ObjOp::SetAdd(item) | ObjOp::QPush(item) => {
                if value.is_free() {
                    self.pending.push_back((loc, ObjVal::Item(item)));
                    self.phase = Phase::Commit;
                }
            }
            ObjOp::SetRemove(item) => {
                if value == ObjVal::Item(item) {
                    self.pending.push_back((loc, ObjVal::Free));
                    self.phase = Phase::Commit;
                }
            }
            ObjOp::SetContains(item) => {
                if value == ObjVal::Item(item) {
                    return Some(ObjRet::Bool(true));
                }
            }
            ObjOp::MapPut(key, val) => match value {
                ObjVal::Entry(k, _) if k == key => {
                    self.pending.push_back((loc, ObjVal::Entry(key, val)));
                    self.phase = Phase::Commit;
                }
                ObjVal::Free if self.first_free.is_none() => self.first_free = Some(loc),
                _ => {}
            },
            ObjOp::MapGet(key) => {
                if let ObjVal::Entry(k, val) = value {
                    if k == key {
                        let wid = self
                            .observed
                            .last()
                            .map_or_else(|| WriteId::initial(loc), |o| o.wid);
                        self.candidates.push(Candidate {
                            row: self.layout.coords(loc).0,
                            wid,
                            val,
                        });
                    }
                }
            }
            ObjOp::MapRemove(key) => {
                if matches!(value, ObjVal::Entry(k, _) if k == key) {
                    self.pending.push_back((loc, ObjVal::Free));
                }
            }
            ObjOp::QPop | ObjOp::Refresh => unreachable!("not scan operations"),
        }
        None
    }

    /// The result of a scan that reached its end without resolving.
    fn scan_exhausted(&mut self, op: ObjOp) -> Option<ObjRet> {
        match op {
            ObjOp::CtrValue => Some(ObjRet::Int(self.total)),
            ObjOp::SetAdd(_) | ObjOp::QPush(_) | ObjOp::SetRemove(_) | ObjOp::SetContains(_) => {
                Some(ObjRet::Bool(false))
            }
            ObjOp::MapPut(key, val) => match self.first_free.take() {
                Some(loc) => {
                    self.pending.push_back((loc, ObjVal::Entry(key, val)));
                    self.phase = Phase::Commit;
                    None
                }
                None => Some(ObjRet::Bool(false)),
            },
            ObjOp::MapGet(key) => Some(ObjRet::Opt(if self.candidates.is_empty() {
                None
            } else {
                Some(self.policy.resolve(key, &self.candidates))
            })),
            ObjOp::MapRemove(_) => {
                if self.pending.is_empty() {
                    Some(ObjRet::Bool(false))
                } else {
                    self.phase = Phase::Commit;
                    None
                }
            }
            _ => unreachable!("ops with early exits never exhaust"),
        }
    }

    /// The return value a committed (write-completing) operation reports.
    fn commit_ret(op: ObjOp) -> ObjRet {
        match op {
            ObjOp::CtrAdd(_) => ObjRet::Unit,
            _ => ObjRet::Bool(true),
        }
    }

    /// Absorbs the previous operation's outcome into the typed trace.
    fn absorb(&mut self, last: Option<&Outcome<ObjVal>>) {
        match std::mem::replace(&mut self.awaiting, Awaiting::None) {
            Awaiting::None => {}
            Awaiting::Read(loc) => {
                let Some(Outcome::Read { value, wid }) = last else {
                    panic!("scan step expects a read outcome");
                };
                self.observed.push(Obs::new(loc, *wid, *value));
                self.last_read = Some((loc, *value, *wid));
            }
            Awaiting::Write(loc, value) => {
                let Some(Outcome::Wrote { wid, .. }) = last else {
                    panic!("commit step expects a write outcome");
                };
                self.wrote.push(Obs::new(loc, *wid, value));
            }
            Awaiting::Discard => {}
        }
    }
}

impl Client<ObjVal> for ObjectClient {
    fn next(&mut self, last: Option<&Outcome<ObjVal>>) -> Option<ClientOp<ObjVal>> {
        self.absorb(last);
        loop {
            let Some(op) = self.current else {
                let op = self.script.next()?;
                self.begin(op);
                continue;
            };

            match self.phase {
                Phase::Scan { cursor, end } => {
                    if let Some((loc, value, _)) = self.last_read.take() {
                        if let Some(ret) = self.interpret(op, loc, value) {
                            self.finish(ret);
                            continue;
                        }
                        if !matches!(self.phase, Phase::Scan { .. }) {
                            continue; // the scan resolved into a commit
                        }
                    }
                    if cursor >= end {
                        if let Some(ret) = self.scan_exhausted(op) {
                            self.finish(ret);
                        }
                        continue;
                    }
                    self.phase = Phase::Scan {
                        cursor: cursor + 1,
                        end,
                    };
                    let loc = self.flat(cursor);
                    self.awaiting = Awaiting::Read(loc);
                    return Some(ClientOp::Read(loc));
                }
                Phase::Probe { reading } => {
                    if let Some((_, value, _)) = self.last_read.take() {
                        if let ObjVal::Item(item) = value {
                            self.heads[reading] += 1;
                            self.finish(ObjRet::Opt(Some(item)));
                            continue;
                        }
                        match self.eligible_producer(reading + 1) {
                            Some(p) => self.phase = Phase::Probe { reading: p },
                            None => {
                                self.finish(ObjRet::Opt(None));
                                continue;
                            }
                        }
                    }
                    let Phase::Probe { reading } = self.phase else {
                        unreachable!()
                    };
                    let loc = self.layout.slot(reading, self.heads[reading]);
                    self.awaiting = Awaiting::Read(loc);
                    return Some(ClientOp::Read(loc));
                }
                Phase::Commit => {
                    let Some((loc, value)) = self.pending.pop_front() else {
                        self.finish(Self::commit_ret(op));
                        continue;
                    };
                    self.awaiting = Awaiting::Write(loc, value);
                    return Some(ClientOp::Write(loc, value));
                }
                Phase::Discard { cursor } => {
                    let mut cursor = cursor;
                    let total = self.layout.rows() * self.layout.cols();
                    while cursor < total && cursor / self.layout.cols() == self.row {
                        cursor += 1;
                    }
                    if cursor >= total {
                        self.finish(ObjRet::Unit);
                        continue;
                    }
                    self.phase = Phase::Discard { cursor: cursor + 1 };
                    self.awaiting = Awaiting::Discard;
                    return Some(ClientOp::Discard(self.flat(cursor)));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use causal_dsm::{CausalConfig, WritePolicy};
    use causal_spec::{check_causal, check_object, Execution};
    use dsm_sim::{causal_sim, RunLimits, SimOpts};
    use memcore::Recorder;
    use simnet::latency::Uniform;

    use crate::oracle::{Family, ObjectOracle};
    use crate::policy::PolicyKind;

    fn run_scripts(
        layout: GridLayout,
        policy: PolicyKind,
        scripts: Vec<Vec<ObjOp>>,
        seed: u64,
    ) -> (Vec<Vec<crate::ops::ObjTypedOp>>, Execution<ObjVal>) {
        let recorder: Recorder<ObjVal> = Recorder::new(layout.rows());
        let typed = ObjRecorder::new(layout.rows());
        let config = CausalConfig::<ObjVal>::builder(layout.rows() as u32, layout.locations())
            .owners(layout.owners())
            .policy(WritePolicy::OwnerFavored)
            .build();
        let mut sim = causal_sim(
            &config,
            SimOpts {
                latency: Box::new(Uniform::new(1, 12)),
                seed,
                recorder: Some(recorder.clone()),
                ..SimOpts::default()
            },
        );
        for (row, script) in scripts.into_iter().enumerate() {
            sim.set_client(
                row,
                ObjectClient::new(layout, row, script, policy).with_recorder(typed.clone()),
            );
        }
        let report = sim.run(RunLimits::default());
        assert!(report.all_done, "{report:?}");
        (typed.processes(), Execution::from_recorder(&recorder))
    }

    #[test]
    fn simulated_counter_history_passes_its_oracle() {
        let layout = GridLayout::new(2, 2);
        for seed in 0..10u64 {
            let scripts = vec![
                vec![ObjOp::CtrAdd(5), ObjOp::CtrAdd(-2), ObjOp::Refresh, ObjOp::CtrValue],
                vec![ObjOp::CtrAdd(3), ObjOp::Refresh, ObjOp::CtrValue],
            ];
            let (history, exec) = run_scripts(layout, PolicyKind::LastWriter, scripts, seed);
            assert!(check_causal(&exec).unwrap().is_correct(), "seed {seed}");
            let oracle = ObjectOracle::new(Family::Counter, layout);
            let report = check_object(&history, &oracle);
            assert!(report.is_correct(), "seed {seed}:\n{report}");
        }
    }

    #[test]
    fn simulated_set_history_passes_its_oracle() {
        let layout = GridLayout::new(3, 4);
        for seed in 0..10u64 {
            let scripts = vec![
                vec![ObjOp::SetAdd(1), ObjOp::SetAdd(2), ObjOp::Refresh, ObjOp::SetContains(10)],
                vec![ObjOp::SetAdd(10), ObjOp::Refresh, ObjOp::SetRemove(1)],
                vec![ObjOp::Refresh, ObjOp::SetContains(2), ObjOp::SetRemove(10)],
            ];
            let (history, exec) = run_scripts(layout, PolicyKind::LastWriter, scripts, seed);
            assert!(check_causal(&exec).unwrap().is_correct(), "seed {seed}");
            let oracle = ObjectOracle::new(Family::Set, layout);
            let report = check_object(&history, &oracle);
            assert!(report.is_correct(), "seed {seed}:\n{report}");
        }
    }

    #[test]
    fn simulated_map_history_passes_its_oracle() {
        let layout = GridLayout::new(2, 3);
        let policy = PolicyKind::OwnerWins { rows: 2 };
        for seed in 0..10u64 {
            let scripts = vec![
                vec![ObjOp::MapPut(1, 10), ObjOp::Refresh, ObjOp::MapGet(1), ObjOp::MapGet(2)],
                vec![ObjOp::MapPut(1, 20), ObjOp::MapPut(2, 5), ObjOp::Refresh, ObjOp::MapRemove(2)],
            ];
            let (history, exec) = run_scripts(layout, policy, scripts, seed);
            assert!(check_causal(&exec).unwrap().is_correct(), "seed {seed}");
            let oracle = ObjectOracle::new(Family::Map, layout).with_policy(policy);
            let report = check_object(&history, &oracle);
            assert!(report.is_correct(), "seed {seed}:\n{report}");
        }
    }

    #[test]
    fn simulated_queue_history_passes_its_oracle() {
        let layout = GridLayout::new(2, 4);
        for seed in 0..10u64 {
            let scripts = vec![
                vec![ObjOp::QPush(10), ObjOp::QPush(11), ObjOp::QPush(12)],
                vec![
                    ObjOp::Refresh,
                    ObjOp::QPop,
                    ObjOp::Refresh,
                    ObjOp::QPop,
                    ObjOp::Refresh,
                    ObjOp::QPop,
                ],
            ];
            let (history, exec) = run_scripts(layout, PolicyKind::LastWriter, scripts, seed);
            assert!(check_causal(&exec).unwrap().is_correct(), "seed {seed}");
            let oracle = ObjectOracle::new(Family::Queue, layout);
            let report = check_object(&history, &oracle);
            assert!(report.is_correct(), "seed {seed}:\n{report}");
        }
    }

    #[test]
    fn finish_hook_sees_every_result() {
        let layout = GridLayout::new(1, 2);
        let log = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let sink = Arc::clone(&log);
        let recorder: Recorder<ObjVal> = Recorder::new(1);
        let config = CausalConfig::<ObjVal>::builder(1, layout.locations())
            .owners(layout.owners())
            .build();
        let mut sim = causal_sim(
            &config,
            SimOpts {
                latency: Box::new(Uniform::new(1, 2)),
                seed: 0,
                recorder: Some(recorder.clone()),
                ..SimOpts::default()
            },
        );
        sim.set_client(
            0,
            ObjectClient::new(
                layout,
                0,
                vec![ObjOp::SetAdd(4), ObjOp::SetContains(4)],
                PolicyKind::LastWriter,
            )
            .with_finish_hook(Box::new(move |op, ret| sink.lock().push((op, ret)))),
        );
        let report = sim.run(RunLimits::default());
        assert!(report.all_done);
        assert_eq!(
            log.lock().as_slice(),
            &[
                (ObjOp::SetAdd(4), ObjRet::Bool(true)),
                (ObjOp::SetContains(4), ObjRet::Bool(true)),
            ]
        );
    }
}
