//! The cell value type objects store in shared-memory locations.
//!
//! Every typed object encodes its state into plain causal registers
//! holding [`ObjVal`] cells; the protocol underneath moves cells without
//! interpreting them, so objects ride every gated layer (pipelining,
//! batching, failover, interest scoping, durability) unchanged. The
//! [`Wire`] implementation gives cells a realistic byte representation on
//! the real transports, exactly as [`memcore::Word`] has — registers keep
//! their own type, so the paper's Figure-4 traffic is untouched.

use std::fmt;

use bytes::{BufMut, Bytes, BytesMut};
use serde::value::Value;
use serde::{DeError, Deserialize, Serialize};
use simnet::codec::{CodecError, Wire};

/// One shared-memory cell of a typed object.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub enum ObjVal {
    /// The free marker `λ` — doubles as the paper's initial value 0.
    #[default]
    Free,
    /// A monotone event count (one PN-counter component cell).
    Count(u64),
    /// A set element or queue item.
    Item(i64),
    /// A map binding `(key, value)`.
    Entry(i64, i64),
}

impl ObjVal {
    /// `true` iff the cell is free (or still holds the initial value).
    #[must_use]
    pub fn is_free(&self) -> bool {
        matches!(self, ObjVal::Free)
    }

    /// The count payload, treating `Free` as 0 (the initial count).
    ///
    /// Returns `None` for non-count cells.
    #[must_use]
    pub fn as_count(&self) -> Option<u64> {
        match self {
            ObjVal::Free => Some(0),
            ObjVal::Count(n) => Some(*n),
            _ => None,
        }
    }

    /// The item payload, or `None` for anything else.
    #[must_use]
    pub fn as_item(&self) -> Option<i64> {
        match self {
            ObjVal::Item(v) => Some(*v),
            _ => None,
        }
    }

    /// The binding payload, or `None` for anything else.
    #[must_use]
    pub fn as_entry(&self) -> Option<(i64, i64)> {
        match self {
            ObjVal::Entry(key, val) => Some((*key, *val)),
            _ => None,
        }
    }
}

// Hand-rolled (de)serialization in the same tagged shape the derive
// produces for single-payload variants: the two-field `Entry` carries
// its payload as one `(key, val)` tuple.
impl Serialize for ObjVal {
    fn to_value(&self) -> Value {
        match self {
            ObjVal::Free => Value::Str("Free".into()),
            ObjVal::Count(n) => Value::Map(vec![("Count".into(), n.to_value())]),
            ObjVal::Item(v) => Value::Map(vec![("Item".into(), v.to_value())]),
            ObjVal::Entry(key, val) => {
                Value::Map(vec![("Entry".into(), (*key, *val).to_value())])
            }
        }
    }
}

impl Deserialize for ObjVal {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(tag) if tag == "Free" => Ok(ObjVal::Free),
            Value::Map(entries) if entries.len() == 1 => match entries[0].0.as_str() {
                "Count" => Ok(ObjVal::Count(u64::from_value(&entries[0].1)?)),
                "Item" => Ok(ObjVal::Item(i64::from_value(&entries[0].1)?)),
                "Entry" => {
                    let (key, val) = <(i64, i64)>::from_value(&entries[0].1)?;
                    Ok(ObjVal::Entry(key, val))
                }
                _ => Err(DeError::msg("unknown variant of ObjVal")),
            },
            _ => Err(DeError::msg("expected ObjVal")),
        }
    }
}

impl fmt::Display for ObjVal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObjVal::Free => write!(f, "λ"),
            ObjVal::Count(n) => write!(f, "#{n}"),
            ObjVal::Item(v) => write!(f, "{v}"),
            ObjVal::Entry(key, val) => write!(f, "{key}→{val}"),
        }
    }
}

impl Wire for ObjVal {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            ObjVal::Free => buf.put_u8(0),
            ObjVal::Count(n) => {
                buf.put_u8(1);
                n.encode(buf);
            }
            ObjVal::Item(v) => {
                buf.put_u8(2);
                v.encode(buf);
            }
            ObjVal::Entry(key, val) => {
                buf.put_u8(3);
                key.encode(buf);
                val.encode(buf);
            }
        }
    }

    fn decode(buf: &mut Bytes) -> Result<Self, CodecError> {
        match u8::decode(buf)? {
            0 => Ok(ObjVal::Free),
            1 => Ok(ObjVal::Count(u64::decode(buf)?)),
            2 => Ok(ObjVal::Item(i64::decode(buf)?)),
            3 => {
                let key = i64::decode(buf)?;
                let val = i64::decode(buf)?;
                Ok(ObjVal::Entry(key, val))
            }
            d => Err(CodecError::BadDiscriminant(d)),
        }
    }

    fn encoded_len(&self) -> usize {
        match self {
            ObjVal::Free => 1,
            ObjVal::Count(_) | ObjVal::Item(_) => 1 + 8,
            ObjVal::Entry(..) => 1 + 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_free() {
        assert_eq!(ObjVal::default(), ObjVal::Free);
        assert!(ObjVal::Free.is_free());
        assert!(!ObjVal::Item(1).is_free());
    }

    #[test]
    fn payload_accessors() {
        assert_eq!(ObjVal::Free.as_count(), Some(0));
        assert_eq!(ObjVal::Count(4).as_count(), Some(4));
        assert_eq!(ObjVal::Item(9).as_count(), None);
        assert_eq!(ObjVal::Item(9).as_item(), Some(9));
        assert_eq!(ObjVal::Entry(1, 2).as_entry(), Some((1, 2)));
        assert_eq!(ObjVal::Free.as_item(), None);
    }

    #[test]
    fn wire_round_trips_every_variant() {
        for v in [
            ObjVal::Free,
            ObjVal::Count(42),
            ObjVal::Item(-7),
            ObjVal::Entry(3, -4),
        ] {
            let mut buf = BytesMut::new();
            v.encode(&mut buf);
            assert_eq!(buf.len(), v.encoded_len());
            let mut bytes = buf.freeze();
            assert_eq!(ObjVal::decode(&mut bytes).unwrap(), v);
        }
    }

    #[test]
    fn wire_rejects_bad_discriminant() {
        let mut buf = BytesMut::new();
        buf.put_u8(9);
        let mut bytes = buf.freeze();
        assert!(matches!(
            ObjVal::decode(&mut bytes),
            Err(CodecError::BadDiscriminant(9))
        ));
    }

    #[test]
    fn display_notation() {
        assert_eq!(ObjVal::Free.to_string(), "λ");
        assert_eq!(ObjVal::Count(3).to_string(), "#3");
        assert_eq!(ObjVal::Item(5).to_string(), "5");
        assert_eq!(ObjVal::Entry(1, 2).to_string(), "1→2");
    }
}
