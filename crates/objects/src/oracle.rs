//! The per-object sequential-spec oracles.
//!
//! One [`ObjectOracle`] covers all four families: given a typed
//! operation's recorded cell snapshot, it independently re-derives the
//! answer the sequential specification dictates and flags any runtime
//! that disagrees (this is how the mutation tests catch a broken merge
//! policy). On top of single-op conformance it checks the families'
//! stream invariants (monotone counter components, per-producer FIFO
//! order) and whole-history invariants (cross-process FIFO prefix
//! agreement).

use std::collections::HashMap;

use causal_spec::ObjectSpec;
use memcore::Location;

use crate::counter::{NEG, POS};
use crate::layout::GridLayout;
use crate::ops::{ObjOp, ObjRet, ObjTypedOp};
use crate::policy::{Candidate, PolicyKind};
use crate::value::ObjVal;

/// The object families the oracle knows.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Family {
    /// PN-counter over `(pos, neg)` component rows.
    Counter,
    /// Grow/observed-remove set over item rows.
    Set,
    /// Map with policy-resolved concurrent bindings.
    Map,
    /// Per-producer FIFO append-queue.
    Queue,
}

impl Family {
    /// The family's display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Family::Counter => "counter",
            Family::Set => "set",
            Family::Map => "map",
            Family::Queue => "queue",
        }
    }
}

/// The sequential specification of one object family over a grid,
/// usable with [`causal_spec::check_object`].
#[derive(Clone, Copy, Debug)]
pub struct ObjectOracle {
    family: Family,
    layout: GridLayout,
    policy: PolicyKind,
}

impl ObjectOracle {
    /// An oracle for `family` over `layout`. Maps resolve concurrent
    /// bindings with [`PolicyKind::LastWriter`] unless overridden by
    /// [`with_policy`](Self::with_policy).
    #[must_use]
    pub fn new(family: Family, layout: GridLayout) -> Self {
        ObjectOracle {
            family,
            layout,
            policy: PolicyKind::LastWriter,
        }
    }

    /// Declares the merge policy the runtime map claims to implement;
    /// the oracle re-derives lookups with this (spec-side) policy.
    #[must_use]
    pub fn with_policy(mut self, policy: PolicyKind) -> Self {
        self.policy = policy;
        self
    }

    /// The family this oracle specifies.
    #[must_use]
    pub fn family(&self) -> Family {
        self.family
    }

    fn counter_fold(&self, op: &ObjTypedOp) -> i64 {
        let mut total = 0i64;
        for obs in &op.observed {
            let (_, col) = self.layout.coords(obs.loc);
            let count = obs.value.as_count().unwrap_or(0) as i64;
            total += if col == POS { count } else { -count };
        }
        total
    }

    fn map_candidates(&self, op: &ObjTypedOp, key: i64) -> Vec<Candidate> {
        op.observed
            .iter()
            .filter_map(|obs| match obs.value {
                ObjVal::Entry(k, val) if k == key => Some(Candidate {
                    row: self.layout.coords(obs.loc).0,
                    wid: obs.wid,
                    val,
                }),
                _ => None,
            })
            .collect()
    }

    fn check_counter_stream(&self, process: usize, ops: &[ObjTypedOp]) -> Vec<String> {
        let mut violations = Vec::new();
        let mut seen: HashMap<Location, u64> = HashMap::new();
        for (i, op) in ops.iter().enumerate() {
            for obs in &op.observed {
                let count = obs.value.as_count().unwrap_or(0);
                let max = seen.entry(obs.loc).or_insert(count);
                if count < *max {
                    violations.push(format!(
                        "P{process}[{i}] {:?}: counter component {} regressed \
                         from {max} to {count}",
                        op.desc, obs.loc
                    ));
                } else {
                    *max = count;
                }
            }
            if let ObjOp::CtrAdd(delta) = op.desc {
                let (Some(old), Some(new)) = (op.observed.last(), op.wrote.last()) else {
                    continue;
                };
                let expect_col = if delta >= 0 { POS } else { NEG };
                let wrote_count = new.value.as_count().unwrap_or(0);
                let old_count = old.value.as_count().unwrap_or(0);
                if new.loc != old.loc
                    || self.layout.coords(new.loc).1 != expect_col
                    || wrote_count != old_count + delta.unsigned_abs()
                {
                    violations.push(format!(
                        "P{process}[{i}] {:?}: wrote {} = {wrote_count}, expected \
                         component {expect_col} of own row to become {}",
                        op.desc,
                        new.loc,
                        old_count + delta.unsigned_abs()
                    ));
                }
            }
        }
        violations
    }

    fn check_queue_stream(&self, process: usize, ops: &[ObjTypedOp]) -> Vec<String> {
        let mut violations = Vec::new();
        let mut push_next = 0usize;
        let mut pop_next = vec![0usize; self.layout.rows()];
        for (i, op) in ops.iter().enumerate() {
            match op.desc {
                ObjOp::QPush(item) => {
                    let Some(w) = op.wrote.last() else { continue };
                    let (row, col) = self.layout.coords(w.loc);
                    if row != process || col != push_next || w.value != ObjVal::Item(item) {
                        violations.push(format!(
                            "P{process}[{i}] {:?}: appended at {} (row {row}, col {col}), \
                             expected own row col {push_next}",
                            op.desc, w.loc
                        ));
                    }
                    push_next = col + 1;
                }
                ObjOp::QPop if matches!(op.returned, ObjRet::Opt(Some(_))) => {
                    let Some(obs) = op.observed.last() else { continue };
                    let (row, col) = self.layout.coords(obs.loc);
                    if col != pop_next[row] {
                        violations.push(format!(
                            "P{process}[{i}] {:?}: consumed producer {row}'s col {col} \
                             but col {} is next — a FIFO gap",
                            op.desc, pop_next[row]
                        ));
                    }
                    pop_next[row] = col + 1;
                }
                _ => {}
            }
        }
        violations
    }

    /// What each producer pushed, in program order, from `history`.
    fn pushes(&self, history: &[Vec<ObjTypedOp>]) -> Vec<Vec<i64>> {
        let mut pushes = vec![Vec::new(); self.layout.rows()];
        for (p, ops) in history.iter().enumerate() {
            for op in ops {
                if let (ObjOp::QPush(item), Some(_)) = (op.desc, op.wrote.last()) {
                    if p < pushes.len() {
                        pushes[p].push(item);
                    }
                }
            }
        }
        pushes
    }
}

impl ObjectSpec<ObjVal> for ObjectOracle {
    type Desc = ObjOp;
    type Ret = ObjRet;

    fn expected(&self, op: &ObjTypedOp) -> Option<ObjRet> {
        match op.desc {
            ObjOp::CtrAdd(_) | ObjOp::Refresh => None,
            ObjOp::CtrValue => Some(ObjRet::Int(self.counter_fold(op))),
            ObjOp::SetAdd(_) | ObjOp::QPush(_) => Some(ObjRet::Bool(
                op.observed.last().is_some_and(|o| o.value.is_free()),
            )),
            ObjOp::SetRemove(item) => Some(ObjRet::Bool(
                op.observed.last().map(|o| o.value) == Some(ObjVal::Item(item)),
            )),
            ObjOp::SetContains(item) => Some(ObjRet::Bool(
                op.observed.iter().any(|o| o.value == ObjVal::Item(item)),
            )),
            ObjOp::MapPut(key, _) => Some(ObjRet::Bool(op.observed.iter().any(|o| {
                o.value.is_free() || matches!(o.value, ObjVal::Entry(k, _) if k == key)
            }))),
            ObjOp::MapGet(key) => {
                let candidates = self.map_candidates(op, key);
                Some(ObjRet::Opt(if candidates.is_empty() {
                    None
                } else {
                    Some(self.policy.resolve(key, &candidates))
                }))
            }
            ObjOp::MapRemove(key) => Some(ObjRet::Bool(op.observed.iter().any(
                |o| matches!(o.value, ObjVal::Entry(k, _) if k == key),
            ))),
            ObjOp::QPop => Some(ObjRet::Opt(match op.observed.last().map(|o| o.value) {
                Some(ObjVal::Item(item)) => Some(item),
                _ => None,
            })),
        }
    }

    fn check_stream(&self, process: usize, ops: &[ObjTypedOp]) -> Vec<String> {
        match self.family {
            Family::Counter => self.check_counter_stream(process, ops),
            Family::Queue => self.check_queue_stream(process, ops),
            Family::Set | Family::Map => Vec::new(),
        }
    }

    fn check_history(&self, history: &[Vec<ObjTypedOp>]) -> Vec<String> {
        if self.family != Family::Queue {
            return Vec::new();
        }
        let pushes = self.pushes(history);
        let mut violations = Vec::new();
        for (consumer, ops) in history.iter().enumerate() {
            let mut popped = vec![Vec::new(); self.layout.rows()];
            for op in ops {
                if let (ObjOp::QPop, ObjRet::Opt(Some(item))) = (op.desc, op.returned) {
                    if let Some(obs) = op.observed.last() {
                        popped[self.layout.coords(obs.loc).0].push(item);
                    }
                }
            }
            for (producer, consumed) in popped.iter().enumerate() {
                if consumed.as_slice() != &pushes[producer][..consumed.len().min(pushes[producer].len())]
                    || consumed.len() > pushes[producer].len()
                {
                    violations.push(format!(
                        "P{consumer} consumed {consumed:?} from producer {producer}, \
                         which is not a prefix of its pushes {:?}",
                        pushes[producer]
                    ));
                }
            }
        }
        violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use causal_spec::{check_object, Obs};
    use memcore::{NodeId, WriteId};

    fn obs(layout: GridLayout, row: usize, col: usize, seq: u64, value: ObjVal) -> Obs<ObjVal> {
        Obs::new(
            layout.slot(row, col),
            WriteId::new(NodeId::new(row as u32), seq),
            value,
        )
    }

    #[test]
    fn counter_fold_matches_components() {
        let layout = GridLayout::new(2, 2);
        let oracle = ObjectOracle::new(Family::Counter, layout);
        let op = ObjTypedOp {
            desc: ObjOp::CtrValue,
            returned: ObjRet::Int(3),
            observed: vec![
                obs(layout, 0, POS, 1, ObjVal::Count(5)),
                obs(layout, 0, NEG, 1, ObjVal::Count(2)),
                obs(layout, 1, POS, 0, ObjVal::Free),
                obs(layout, 1, NEG, 0, ObjVal::Free),
            ],
            wrote: vec![],
        };
        assert_eq!(oracle.expected(&op), Some(ObjRet::Int(3)));
    }

    #[test]
    fn a_fifo_gap_is_rejected() {
        let layout = GridLayout::new(2, 3);
        let oracle = ObjectOracle::new(Family::Queue, layout);
        // The consumer pops producer 0's col 1 without ever popping col 0.
        let pop = ObjTypedOp {
            desc: ObjOp::QPop,
            returned: ObjRet::Opt(Some(11)),
            observed: vec![obs(layout, 0, 1, 2, ObjVal::Item(11))],
            wrote: vec![],
        };
        let violations = oracle.check_stream(1, &[pop]);
        assert!(violations.iter().any(|v| v.contains("FIFO gap")), "{violations:?}");
    }

    #[test]
    fn cross_process_pop_order_must_prefix_push_order() {
        let layout = GridLayout::new(2, 3);
        let oracle = ObjectOracle::new(Family::Queue, layout);
        let push = |col: usize, item: i64| ObjTypedOp {
            desc: ObjOp::QPush(item),
            returned: ObjRet::Bool(true),
            observed: vec![obs(layout, 0, col, 0, ObjVal::Free)],
            wrote: vec![obs(layout, 0, col, col as u64 + 1, ObjVal::Item(item))],
        };
        let pop = |col: usize, item: i64| ObjTypedOp {
            desc: ObjOp::QPop,
            returned: ObjRet::Opt(Some(item)),
            observed: vec![obs(layout, 0, col, col as u64 + 1, ObjVal::Item(item))],
            wrote: vec![],
        };
        // Producer pushes 10 then 11; a reordering consumer claims 11 first.
        let history = vec![vec![push(0, 10), push(1, 11)], vec![pop(0, 11), pop(1, 10)]];
        let report = check_object(&history, &oracle);
        assert!(
            report.violations.iter().any(|v| v.contains("not a prefix")),
            "{report}"
        );
    }

    #[test]
    fn map_lookup_is_rederived_with_the_declared_policy() {
        let layout = GridLayout::new(2, 1);
        let oracle = ObjectOracle::new(Family::Map, layout).with_policy(PolicyKind::Commutative);
        let op = ObjTypedOp {
            desc: ObjOp::MapGet(1),
            returned: ObjRet::Opt(Some(3)), // first-observed answer, not the max
            observed: vec![
                obs(layout, 0, 0, 1, ObjVal::Entry(1, 3)),
                obs(layout, 1, 0, 1, ObjVal::Entry(1, 9)),
            ],
            wrote: vec![],
        };
        assert_eq!(oracle.expected(&op), Some(ObjRet::Opt(Some(9))));
        let report = check_object(&[vec![op]], &oracle);
        assert!(!report.is_correct(), "broken policy must be rejected");
    }
}
