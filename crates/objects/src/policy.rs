//! Per-type merge/conflict policies.
//!
//! The §4.2 dictionary resolves its one conflict (a delete racing the
//! owner's re-insert) with the engine's *owner-favored* write policy.
//! Typed objects generalize the idea to read-side resolution: when a
//! query observes **concurrent bindings** for the same logical key in
//! different rows, a [`MergePolicy`] decides which value the object
//! reports. Three canonical policies ship:
//!
//! * [`PolicyKind::OwnerWins`] — the binding in the key's *home row*
//!   (`key mod n`) wins, generalizing the paper's "writes by the owner
//!   are always favored"; other rows' bindings are shadows.
//! * [`PolicyKind::LastWriter`] — the binding with the greatest write
//!   tag `(seq, writer)` wins: a deterministic total order on writes,
//!   the classic last-writer-wins register lifted to maps.
//! * [`PolicyKind::Commutative`] — bindings are folded with a
//!   commutative, associative, idempotent merge (`max`), so the answer
//!   is independent of observation order — the CRDT-style resolution.
//!
//! Every canonical policy is a pure, observation-order-independent
//! function of the candidate set; the per-object oracle re-derives the
//! same answer spec-side ([`PolicyKind::resolve`]) and flags any runtime
//! that disagrees. [`BrokenFirstObserved`] is a deliberately
//! order-*dependent* policy used by the mutation tests to prove the
//! oracle rejects such an implementation.

use memcore::WriteId;

/// One concurrently-visible binding for a key: which row holds it, the
/// write that installed it, and the bound value.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Candidate {
    /// The grid row (owner process) holding the binding.
    pub row: usize,
    /// The write that installed the binding.
    pub wid: WriteId,
    /// The bound value.
    pub val: i64,
}

/// A conflict-resolution policy over concurrent bindings.
///
/// Implementations must be pure functions of `(key, candidates)`; the
/// canonical ones are also independent of candidate *order*, which is
/// exactly the property the sequential-spec oracle checks.
pub trait MergePolicy: Send + Sync + 'static {
    /// Policy name, surfaced in oracle reports.
    fn name(&self) -> &'static str;

    /// Picks the value the object reports for `key`.
    ///
    /// `candidates` is non-empty and listed in the order the query
    /// observed them (row-major scan order for the shipped clients).
    fn resolve(&self, key: i64, candidates: &[Candidate]) -> i64;
}

/// The canonical policy alphabet, shared by runtime and oracle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PolicyKind {
    /// The key's home row (`key mod n`, for an `n`-row grid) wins;
    /// absent a home binding, fall back to [`PolicyKind::LastWriter`].
    OwnerWins {
        /// Rows in the grid (the modulus for the home row).
        rows: usize,
    },
    /// Greatest write tag `(seq, writer)` wins.
    LastWriter,
    /// Fold all bound values with `max`.
    Commutative,
}

impl PolicyKind {
    /// The specification-side resolution: a pure, order-independent
    /// function of the candidate set. The oracle calls this; the
    /// canonical runtime policies delegate to it, so an honest runtime
    /// always agrees with its spec.
    #[must_use]
    pub fn resolve(self, key: i64, candidates: &[Candidate]) -> i64 {
        assert!(!candidates.is_empty(), "resolve needs at least one candidate");
        match self {
            PolicyKind::OwnerWins { rows } => {
                let home = key.rem_euclid(rows as i64) as usize;
                match candidates.iter().find(|c| c.row == home) {
                    Some(c) => c.val,
                    None => PolicyKind::LastWriter.resolve(key, candidates),
                }
            }
            PolicyKind::LastWriter => {
                candidates
                    .iter()
                    .max_by_key(|c| (c.wid.seq(), c.wid.writer().map_or(0, |n| n.index())))
                    .expect("non-empty")
                    .val
            }
            PolicyKind::Commutative => {
                candidates.iter().map(|c| c.val).max().expect("non-empty")
            }
        }
    }

    /// The policy's name (matches the runtime wrapper's
    /// [`MergePolicy::name`]).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::OwnerWins { .. } => "owner-wins",
            PolicyKind::LastWriter => "last-writer-by-tag",
            PolicyKind::Commutative => "commutative-merge",
        }
    }
}

impl MergePolicy for PolicyKind {
    fn name(&self) -> &'static str {
        PolicyKind::name(*self)
    }

    fn resolve(&self, key: i64, candidates: &[Candidate]) -> i64 {
        PolicyKind::resolve(*self, key, candidates)
    }
}

/// A deliberately broken policy: reports whichever binding the query
/// happened to observe *first*. Order-dependent, so different processes
/// (or the same process before and after a refresh) disagree with the
/// declared specification — built for the oracle mutation tests, which
/// must reject it.
#[derive(Clone, Copy, Debug, Default)]
pub struct BrokenFirstObserved;

impl MergePolicy for BrokenFirstObserved {
    fn name(&self) -> &'static str {
        "broken-first-observed"
    }

    fn resolve(&self, _key: i64, candidates: &[Candidate]) -> i64 {
        candidates[0].val
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memcore::NodeId;

    fn cand(row: usize, writer: u32, seq: u64, val: i64) -> Candidate {
        Candidate {
            row,
            wid: WriteId::new(NodeId::new(writer), seq),
            val,
        }
    }

    #[test]
    fn owner_wins_prefers_home_row() {
        let p = PolicyKind::OwnerWins { rows: 3 };
        let c = [cand(0, 0, 9, 10), cand(2, 2, 1, 99)];
        // key 2's home row is 2.
        assert_eq!(p.resolve(2, &c), 99);
        // key 1 has no home binding: falls back to last writer (seq 9).
        assert_eq!(p.resolve(1, &c), 10);
    }

    #[test]
    fn last_writer_picks_greatest_tag() {
        let p = PolicyKind::LastWriter;
        let c = [cand(0, 0, 3, 7), cand(1, 1, 5, 8)];
        assert_eq!(p.resolve(0, &c), 8);
        // Ties on seq break by writer index, deterministically.
        let tie = [cand(0, 0, 5, 7), cand(1, 1, 5, 8)];
        assert_eq!(p.resolve(0, &tie), 8);
    }

    #[test]
    fn commutative_is_order_independent() {
        let p = PolicyKind::Commutative;
        let a = [cand(0, 0, 0, 3), cand(1, 1, 0, 9)];
        let b = [cand(1, 1, 0, 9), cand(0, 0, 0, 3)];
        assert_eq!(p.resolve(0, &a), p.resolve(0, &b));
        assert_eq!(p.resolve(0, &a), 9);
    }

    #[test]
    fn broken_policy_depends_on_observation_order() {
        let a = [cand(0, 0, 0, 3), cand(1, 1, 0, 9)];
        let b = [cand(1, 1, 0, 9), cand(0, 0, 0, 3)];
        assert_ne!(
            BrokenFirstObserved.resolve(0, &a),
            BrokenFirstObserved.resolve(0, &b)
        );
    }
}
