//! The FIFO append-queue (pub/sub stream): per-producer FIFO delivery
//! from causal reads alone.
//!
//! Each producer appends items left-to-right into its own row; consumers
//! keep a **local cursor per producer row** and poll the cell under each
//! cursor, advancing past it once an item becomes visible. Because writes
//! to a row are causally ordered (same writer, ascending columns) and
//! causal memory never shows a write without its causal past, a consumer
//! can never observe item `k+1`'s cell filled while item `k`'s cell is
//! still a hole that it would skip: per-producer delivery is gap-free and
//! in push order. Pops are **read-only** — every consumer independently
//! consumes the whole stream, so the queue is a durable topic, not a
//! work-stealing queue.

use parking_lot::Mutex;

use memcore::{MemoryError, NodeId, SharedMemory};

use crate::layout::GridLayout;
use crate::ops::{ObjOp, ObjRecorder, ObjRet};
use crate::trace::Trace;
use crate::value::ObjVal;

/// One process's handle on the shared append-queue.
#[derive(Debug)]
pub struct FifoQueue<M> {
    mem: M,
    layout: GridLayout,
    row: usize,
    heads: Mutex<Vec<usize>>,
    rec: Option<ObjRecorder>,
}

impl<M: SharedMemory<ObjVal>> FifoQueue<M> {
    /// The grid a queue for `nodes` producers with `depth` items per
    /// producer occupies.
    #[must_use]
    pub fn layout(nodes: usize, depth: usize) -> GridLayout {
        GridLayout::new(nodes, depth)
    }

    /// Wraps `mem` (whose node index selects this producer's row).
    ///
    /// # Panics
    ///
    /// Panics if the node index exceeds the layout's rows.
    #[must_use]
    pub fn new(mem: M, layout: GridLayout) -> Self {
        let row = mem.node().index();
        assert!(row < layout.rows(), "node outside queue layout");
        FifoQueue {
            mem,
            layout,
            row,
            heads: Mutex::new(vec![0; layout.rows()]),
            rec: None,
        }
    }

    /// Records every operation's typed trace into `rec`.
    #[must_use]
    pub fn with_recorder(mut self, rec: ObjRecorder) -> Self {
        self.rec = Some(rec);
        self
    }

    /// Appends `item` after this producer's previous appends. Returns
    /// `false` (without writing) when the row is full.
    ///
    /// # Errors
    ///
    /// Propagates memory errors.
    pub fn push(&self, item: i64) -> Result<bool, MemoryError> {
        let mut tr = Trace::new(self.rec.is_some());
        let mut done = false;
        for col in 0..self.layout.cols() {
            let loc = self.layout.slot(self.row, col);
            let (v, _) = tr.read(&self.mem, loc)?;
            if v.is_free() {
                tr.write(&self.mem, loc, ObjVal::Item(item))?;
                done = true;
                break;
            }
        }
        tr.emit(
            self.rec.as_ref(),
            self.node(),
            ObjOp::QPush(item),
            ObjRet::Bool(done),
        );
        Ok(done)
    }

    /// Consumes the next visible item: polls each producer row at this
    /// consumer's cursor and takes the first filled cell, advancing that
    /// cursor. Returns `None` when every cursor sits on a hole (or past
    /// the end of its row).
    ///
    /// # Errors
    ///
    /// Propagates memory errors.
    pub fn pop(&self) -> Result<Option<i64>, MemoryError> {
        let mut tr = Trace::new(self.rec.is_some());
        let mut heads = self.heads.lock();
        let mut popped = None;
        for (producer, head) in heads.iter_mut().enumerate() {
            if *head >= self.layout.cols() {
                continue;
            }
            let loc = self.layout.slot(producer, *head);
            let (v, _) = tr.read(&self.mem, loc)?;
            if let ObjVal::Item(item) = v {
                *head += 1;
                popped = Some(item);
                break;
            }
        }
        drop(heads);
        tr.emit(
            self.rec.as_ref(),
            self.node(),
            ObjOp::QPop,
            ObjRet::Opt(popped),
        );
        Ok(popped)
    }

    /// Discards every cached (non-owned) cell, so the next poll fetches
    /// fresh copies.
    pub fn refresh(&self) {
        for row in 0..self.layout.rows() {
            if row == self.row {
                continue;
            }
            for col in 0..self.layout.cols() {
                self.mem.discard(self.layout.slot(row, col));
            }
        }
    }

    fn node(&self) -> NodeId {
        NodeId::new(self.row as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use causal_dsm::CausalCluster;
    use causal_spec::check_object;

    use crate::oracle::{Family, ObjectOracle};

    fn cluster(layout: GridLayout) -> CausalCluster<ObjVal> {
        CausalCluster::<ObjVal>::builder(layout.rows() as u32, layout.locations())
            .configure(|c| c.owners(layout.owners()))
            .build()
            .expect("cluster")
    }

    #[test]
    fn consumer_sees_each_producer_in_push_order() {
        let layout = FifoQueue::<causal_dsm::CausalHandle<ObjVal>>::layout(2, 4);
        let cluster = cluster(layout);
        let producer = FifoQueue::new(cluster.handle(0), layout);
        let consumer = FifoQueue::new(cluster.handle(1), layout);
        for item in [10, 11, 12] {
            assert!(producer.push(item).unwrap());
        }
        consumer.refresh();
        let mut seen = Vec::new();
        while let Some(item) = consumer.pop().unwrap() {
            seen.push(item);
        }
        assert_eq!(seen, vec![10, 11, 12]);
        assert_eq!(consumer.pop().unwrap(), None);
    }

    #[test]
    fn full_row_rejects_further_pushes() {
        let layout = FifoQueue::<causal_dsm::CausalHandle<ObjVal>>::layout(1, 2);
        let cluster = cluster(layout);
        let q = FifoQueue::new(cluster.handle(0), layout);
        assert!(q.push(1).unwrap());
        assert!(q.push(2).unwrap());
        assert!(!q.push(3).unwrap());
    }

    #[test]
    fn typed_traces_satisfy_the_queue_oracle() {
        let layout = FifoQueue::<causal_dsm::CausalHandle<ObjVal>>::layout(2, 3);
        let cluster = cluster(layout);
        let rec = ObjRecorder::new(2);
        let producer = FifoQueue::new(cluster.handle(0), layout).with_recorder(rec.clone());
        let consumer = FifoQueue::new(cluster.handle(1), layout).with_recorder(rec.clone());
        for item in [5, 6] {
            assert!(producer.push(item).unwrap());
        }
        consumer.refresh();
        assert_eq!(consumer.pop().unwrap(), Some(5));
        assert_eq!(consumer.pop().unwrap(), Some(6));
        assert_eq!(consumer.pop().unwrap(), None);
        let oracle = ObjectOracle::new(Family::Queue, layout);
        let report = check_object(&rec.processes(), &oracle);
        assert!(report.is_correct(), "{report}");
    }
}
