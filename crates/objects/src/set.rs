//! The grow/observed-remove set — §4.2's distributed dictionary with a
//! typed face.
//!
//! `add` appends into the caller's own row (single-writer, conflict-free
//! at the register level); `remove` frees the *first observed* copy of
//! the item anywhere in the grid, so a remove only affects copies the
//! remover has seen (observed-remove semantics). The one genuine
//! write/write conflict — a foreign remove racing the owner's re-insert
//! of the same slot — is resolved by the engine's owner-favored write
//! policy, exactly as the paper prescribes.

use memcore::{MemoryError, NodeId, SharedMemory};

use crate::layout::GridLayout;
use crate::ops::{ObjOp, ObjRecorder, ObjRet};
use crate::trace::Trace;
use crate::value::ObjVal;

/// One process's handle on the shared observed-remove set.
#[derive(Debug)]
pub struct CausalSet<M> {
    mem: M,
    layout: GridLayout,
    row: usize,
    rec: Option<ObjRecorder>,
}

impl<M: SharedMemory<ObjVal>> CausalSet<M> {
    /// The grid a set for `nodes` processes with `slots` items per
    /// process occupies.
    #[must_use]
    pub fn layout(nodes: usize, slots: usize) -> GridLayout {
        GridLayout::new(nodes, slots)
    }

    /// Wraps `mem` (whose node index selects this process's row).
    ///
    /// # Panics
    ///
    /// Panics if the node index exceeds the layout's rows.
    #[must_use]
    pub fn new(mem: M, layout: GridLayout) -> Self {
        let row = mem.node().index();
        assert!(row < layout.rows(), "node outside set layout");
        CausalSet {
            mem,
            layout,
            row,
            rec: None,
        }
    }

    /// Records every operation's typed trace into `rec`.
    #[must_use]
    pub fn with_recorder(mut self, rec: ObjRecorder) -> Self {
        self.rec = Some(rec);
        self
    }

    /// Adds `item` into the first free slot of this process's own row.
    /// Returns `false` (without writing) when the row is full.
    ///
    /// # Errors
    ///
    /// Propagates memory errors.
    pub fn add(&self, item: i64) -> Result<bool, MemoryError> {
        let mut tr = Trace::new(self.rec.is_some());
        let mut done = false;
        for col in 0..self.layout.cols() {
            let loc = self.layout.slot(self.row, col);
            let (v, _) = tr.read(&self.mem, loc)?;
            if v.is_free() {
                tr.write(&self.mem, loc, ObjVal::Item(item))?;
                done = true;
                break;
            }
        }
        tr.emit(
            self.rec.as_ref(),
            self.node(),
            ObjOp::SetAdd(item),
            ObjRet::Bool(done),
        );
        Ok(done)
    }

    /// Frees the first copy of `item` this view observes (row-major
    /// scan). Returns `false` when no copy is visible.
    ///
    /// # Errors
    ///
    /// Propagates memory errors.
    pub fn remove(&self, item: i64) -> Result<bool, MemoryError> {
        let mut tr = Trace::new(self.rec.is_some());
        let mut done = false;
        'grid: for row in 0..self.layout.rows() {
            for col in 0..self.layout.cols() {
                let loc = self.layout.slot(row, col);
                let (v, _) = tr.read(&self.mem, loc)?;
                if v == ObjVal::Item(item) {
                    tr.write(&self.mem, loc, ObjVal::Free)?;
                    done = true;
                    break 'grid;
                }
            }
        }
        tr.emit(
            self.rec.as_ref(),
            self.node(),
            ObjOp::SetRemove(item),
            ObjRet::Bool(done),
        );
        Ok(done)
    }

    /// Whether this view observes a copy of `item`.
    ///
    /// # Errors
    ///
    /// Propagates memory errors.
    pub fn contains(&self, item: i64) -> Result<bool, MemoryError> {
        let mut tr = Trace::new(self.rec.is_some());
        let mut found = false;
        'grid: for row in 0..self.layout.rows() {
            for col in 0..self.layout.cols() {
                let (v, _) = tr.read(&self.mem, self.layout.slot(row, col))?;
                if v == ObjVal::Item(item) {
                    found = true;
                    break 'grid;
                }
            }
        }
        tr.emit(
            self.rec.as_ref(),
            self.node(),
            ObjOp::SetContains(item),
            ObjRet::Bool(found),
        );
        Ok(found)
    }

    /// Every item in this process's view, row-major.
    ///
    /// # Errors
    ///
    /// Propagates memory errors.
    pub fn items(&self) -> Result<Vec<i64>, MemoryError> {
        let mut out = Vec::new();
        for flat in 0..self.layout.locations() as usize {
            if let ObjVal::Item(item) = self.mem.read(self.layout.slot_flat(flat))? {
                out.push(item);
            }
        }
        Ok(out)
    }

    /// Discards every cached (non-owned) slot, so the next scan fetches
    /// fresh copies.
    pub fn refresh(&self) {
        for row in 0..self.layout.rows() {
            if row == self.row {
                continue;
            }
            for col in 0..self.layout.cols() {
                self.mem.discard(self.layout.slot(row, col));
            }
        }
    }

    fn node(&self) -> NodeId {
        NodeId::new(self.row as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use causal_dsm::{CausalCluster, WritePolicy};
    use causal_spec::check_object;

    use crate::oracle::{Family, ObjectOracle};

    fn cluster(layout: GridLayout) -> CausalCluster<ObjVal> {
        CausalCluster::<ObjVal>::builder(layout.rows() as u32, layout.locations())
            .configure(|c| c.owners(layout.owners()).policy(WritePolicy::OwnerFavored))
            .build()
            .expect("cluster")
    }

    #[test]
    fn add_contains_remove_round_trip() {
        let layout = CausalSet::<causal_dsm::CausalHandle<ObjVal>>::layout(3, 4);
        let cluster = cluster(layout);
        let sets: Vec<_> = (0..3)
            .map(|i| CausalSet::new(cluster.handle(i), layout))
            .collect();
        assert!(sets[0].add(7).unwrap());
        assert!(sets[1].add(8).unwrap());
        for s in &sets {
            s.refresh();
            assert!(s.contains(7).unwrap());
            assert!(s.contains(8).unwrap());
        }
        assert!(sets[2].remove(7).unwrap());
        sets[2].refresh();
        assert!(!sets[2].contains(7).unwrap());
    }

    #[test]
    fn full_row_rejects_further_adds() {
        let layout = CausalSet::<causal_dsm::CausalHandle<ObjVal>>::layout(2, 2);
        let cluster = cluster(layout);
        let set = CausalSet::new(cluster.handle(0), layout);
        assert!(set.add(1).unwrap());
        assert!(set.add(2).unwrap());
        assert!(!set.add(3).unwrap());
        assert_eq!(set.items().unwrap(), vec![1, 2]);
    }

    #[test]
    fn typed_traces_satisfy_the_set_oracle() {
        let layout = CausalSet::<causal_dsm::CausalHandle<ObjVal>>::layout(2, 3);
        let cluster = cluster(layout);
        let rec = ObjRecorder::new(2);
        let sets: Vec<_> = (0..2)
            .map(|i| CausalSet::new(cluster.handle(i), layout).with_recorder(rec.clone()))
            .collect();
        assert!(sets[0].add(5).unwrap());
        assert!(sets[1].add(6).unwrap());
        for s in &sets {
            s.refresh();
            let _ = s.contains(5).unwrap();
        }
        assert!(sets[1].remove(5).unwrap());
        sets[1].refresh();
        assert!(!sets[1].contains(5).unwrap());
        let oracle = ObjectOracle::new(Family::Set, layout);
        let report = check_object(&rec.processes(), &oracle);
        assert!(report.is_correct(), "{report}");
    }
}
