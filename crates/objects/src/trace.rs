//! Typed-op tracing for the threaded objects: every register access an
//! operation performs is captured — via the engines'
//! [`SharedMemory::read_tagged`]/[`SharedMemory::write_tagged`] hook —
//! and emitted as one [`crate::ObjTypedOp`] when the operation completes.
//!
//! Tracing is only as good as the engine's tagging: engines that do not
//! override the tagged accessors report no write tags, and untagged
//! accesses are omitted from the trace (the causal engine tags
//! everything, so traces over it are complete).

use causal_spec::Obs;
use memcore::{Location, MemoryError, NodeId, SharedMemory, WriteId};

use crate::ops::{ObjOp, ObjRecorder, ObjRet};
use crate::value::ObjVal;

/// Accumulates one operation's tagged register accesses.
#[derive(Debug, Default)]
pub(crate) struct Trace {
    on: bool,
    observed: Vec<Obs<ObjVal>>,
    wrote: Vec<Obs<ObjVal>>,
}

impl Trace {
    pub(crate) fn new(on: bool) -> Self {
        Trace {
            on,
            observed: Vec::new(),
            wrote: Vec::new(),
        }
    }

    /// Reads through the tagged hook, recording the observation (when
    /// tracing and the engine tags reads) and returning the value plus
    /// tag for callers that resolve by write order.
    pub(crate) fn read<M: SharedMemory<ObjVal>>(
        &mut self,
        mem: &M,
        loc: Location,
    ) -> Result<(ObjVal, Option<WriteId>), MemoryError> {
        let (value, wid) = mem.read_tagged(loc)?;
        if self.on {
            if let Some(wid) = wid {
                self.observed.push(Obs::new(loc, wid, value));
            }
        }
        Ok((value, wid))
    }

    /// Writes through the tagged hook, recording the issued write.
    pub(crate) fn write<M: SharedMemory<ObjVal>>(
        &mut self,
        mem: &M,
        loc: Location,
        value: ObjVal,
    ) -> Result<(), MemoryError> {
        let wid = mem.write_tagged(loc, value)?;
        if self.on {
            if let Some(wid) = wid {
                self.wrote.push(Obs::new(loc, wid, value));
            }
        }
        Ok(())
    }

    /// Emits the completed operation into `rec`, if recording.
    pub(crate) fn emit(self, rec: Option<&ObjRecorder>, node: NodeId, desc: ObjOp, ret: ObjRet) {
        if let (true, Some(rec)) = (self.on, rec) {
            rec.record(
                node,
                causal_spec::TypedOp {
                    desc,
                    returned: ret,
                    observed: self.observed,
                    wrote: self.wrote,
                },
            );
        }
    }
}
