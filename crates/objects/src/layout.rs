//! The shared row-grid layout every object family encodes into.
//!
//! All four object types use the §4.2 dictionary's shape: an `n × m`
//! grid of single-cell pages in which **process `P_i` owns row `i`** and
//! performs its state-changing appends only there, so concurrent updates
//! by different processes land in different single-writer cells and never
//! conflict at the register level. The remaining cross-row conflicts
//! (deletes, map removals) are what the per-type merge policies resolve.

use memcore::{ExplicitOwners, Location, NodeId};

/// An `n`-row × `m`-column grid of locations, row `i` owned by `P_i`,
/// page size 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GridLayout {
    n: usize,
    m: usize,
}

impl GridLayout {
    /// A layout for `n` processes with `m` cells per row.
    ///
    /// # Panics
    ///
    /// Panics if `n` or `m` is zero.
    #[must_use]
    pub fn new(n: usize, m: usize) -> Self {
        assert!(n > 0, "grid needs at least one process");
        assert!(m > 0, "grid rows need at least one cell");
        GridLayout { n, m }
    }

    /// Number of processes (rows).
    #[must_use]
    pub fn rows(&self) -> usize {
        self.n
    }

    /// Cells per row.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.m
    }

    /// The location of cell `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    #[must_use]
    pub fn slot(&self, row: usize, col: usize) -> Location {
        assert!(row < self.n && col < self.m, "slot out of range");
        Location::new((row * self.m + col) as u32)
    }

    /// Total locations.
    #[must_use]
    pub fn locations(&self) -> u32 {
        (self.n * self.m) as u32
    }

    /// The location of flat cell index `flat` (row-major).
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    #[must_use]
    pub fn slot_flat(&self, flat: usize) -> Location {
        self.slot(flat / self.m, flat % self.m)
    }

    /// The `(row, col)` of a location in this grid.
    #[must_use]
    pub fn coords(&self, loc: Location) -> (usize, usize) {
        (loc.index() / self.m, loc.index() % self.m)
    }

    /// Owner map: `P_i` owns every cell of row `i`.
    #[must_use]
    pub fn owners(&self) -> ExplicitOwners {
        let table = (0..self.n)
            .flat_map(|row| std::iter::repeat_n(NodeId::new(row as u32), self.m))
            .collect();
        ExplicitOwners::new(self.n as u32, 1, table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memcore::OwnerMap;

    #[test]
    fn rows_map_to_their_owners() {
        let layout = GridLayout::new(3, 4);
        for row in 0..3 {
            for col in 0..4 {
                assert_eq!(
                    layout.owners().owner_of(layout.slot(row, col)),
                    NodeId::new(row as u32)
                );
            }
        }
        assert_eq!(layout.locations(), 12);
    }

    #[test]
    fn flat_and_coords_round_trip() {
        let layout = GridLayout::new(2, 3);
        for flat in 0..6 {
            let loc = layout.slot_flat(flat);
            let (r, c) = layout.coords(loc);
            assert_eq!(layout.slot(r, c), loc);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_slot_panics() {
        let _ = GridLayout::new(2, 2).slot(2, 0);
    }
}
