//! The PN-counter: increment/decrement with single-writer component
//! cells.
//!
//! Process `P_i` owns two cells — a positive and a negative event count —
//! and is the only writer of either, so updates are owner-local
//! read-modify-writes that never conflict. The counter's value is the
//! fold `Σ pos − Σ neg` over every process's components; causal memory
//! guarantees each component is observed monotonically, so a process's
//! reported value moves consistently with its causal past.

use memcore::{MemoryError, NodeId, SharedMemory};

use crate::layout::GridLayout;
use crate::ops::{ObjOp, ObjRecorder, ObjRet};
use crate::trace::Trace;
use crate::value::ObjVal;

/// Column of the positive component in a counter grid.
pub const POS: usize = 0;
/// Column of the negative component in a counter grid.
pub const NEG: usize = 1;

/// One process's handle on the shared PN-counter.
#[derive(Debug)]
pub struct PnCounter<M> {
    mem: M,
    layout: GridLayout,
    row: usize,
    rec: Option<ObjRecorder>,
}

impl<M: SharedMemory<ObjVal>> PnCounter<M> {
    /// The grid a counter for `nodes` processes occupies: one row of
    /// `(pos, neg)` cells per process.
    #[must_use]
    pub fn layout(nodes: usize) -> GridLayout {
        GridLayout::new(nodes, 2)
    }

    /// Wraps `mem` (whose node index selects this process's components).
    ///
    /// # Panics
    ///
    /// Panics if the node index exceeds the layout's rows.
    #[must_use]
    pub fn new(mem: M, layout: GridLayout) -> Self {
        let row = mem.node().index();
        assert!(row < layout.rows(), "node outside counter layout");
        PnCounter {
            mem,
            layout,
            row,
            rec: None,
        }
    }

    /// Records every operation's typed trace into `rec`.
    #[must_use]
    pub fn with_recorder(mut self, rec: ObjRecorder) -> Self {
        self.rec = Some(rec);
        self
    }

    /// Adds `delta` (negative deltas decrement): an owner-local
    /// read-modify-write of this process's own component cell.
    ///
    /// # Errors
    ///
    /// Propagates memory errors.
    pub fn add(&self, delta: i64) -> Result<(), MemoryError> {
        let mut tr = Trace::new(self.rec.is_some());
        let col = if delta >= 0 { POS } else { NEG };
        let cell = self.layout.slot(self.row, col);
        let (old, _) = tr.read(&self.mem, cell)?;
        let count = old.as_count().expect("counter cell holds a count");
        tr.write(&self.mem, cell, ObjVal::Count(count + delta.unsigned_abs()))?;
        tr.emit(self.rec.as_ref(), self.node(), ObjOp::CtrAdd(delta), ObjRet::Unit);
        Ok(())
    }

    /// The counter's value in this process's view: `Σ pos − Σ neg` over
    /// every row's components.
    ///
    /// # Errors
    ///
    /// Propagates memory errors.
    pub fn value(&self) -> Result<i64, MemoryError> {
        let mut tr = Trace::new(self.rec.is_some());
        let mut total = 0i64;
        for row in 0..self.layout.rows() {
            for (col, sign) in [(POS, 1i64), (NEG, -1i64)] {
                let (v, _) = tr.read(&self.mem, self.layout.slot(row, col))?;
                let count = v.as_count().expect("counter cell holds a count");
                total += sign * count as i64;
            }
        }
        tr.emit(
            self.rec.as_ref(),
            self.node(),
            ObjOp::CtrValue,
            ObjRet::Int(total),
        );
        Ok(total)
    }

    /// Discards every cached (non-owned) component, so the next `value`
    /// fetches fresh copies — the paper's `discard`-based view liveness.
    pub fn refresh(&self) {
        for row in 0..self.layout.rows() {
            if row == self.row {
                continue;
            }
            for col in [POS, NEG] {
                self.mem.discard(self.layout.slot(row, col));
            }
        }
    }

    fn node(&self) -> NodeId {
        NodeId::new(self.row as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use causal_dsm::CausalCluster;
    use causal_spec::check_object;

    use crate::oracle::{Family, ObjectOracle};

    fn cluster(nodes: usize) -> CausalCluster<ObjVal> {
        let layout = PnCounter::<causal_dsm::CausalHandle<ObjVal>>::layout(nodes);
        CausalCluster::<ObjVal>::builder(nodes as u32, layout.locations())
            .configure(|c| c.owners(layout.owners()))
            .build()
            .expect("cluster")
    }

    #[test]
    fn increments_and_decrements_fold() {
        let cluster = cluster(3);
        let layout = PnCounter::<causal_dsm::CausalHandle<ObjVal>>::layout(3);
        let counters: Vec<_> = (0..3)
            .map(|i| PnCounter::new(cluster.handle(i), layout))
            .collect();
        counters[0].add(5).unwrap();
        counters[1].add(3).unwrap();
        counters[2].add(-2).unwrap();
        for c in &counters {
            c.refresh();
            assert_eq!(c.value().unwrap(), 6);
        }
        counters[0].add(-6).unwrap();
        counters[0].refresh();
        assert_eq!(counters[0].value().unwrap(), 0);
    }

    #[test]
    fn typed_traces_satisfy_the_counter_oracle() {
        let cluster = cluster(2);
        let layout = PnCounter::<causal_dsm::CausalHandle<ObjVal>>::layout(2);
        let rec = ObjRecorder::new(2);
        let counters: Vec<_> = (0..2)
            .map(|i| PnCounter::new(cluster.handle(i), layout).with_recorder(rec.clone()))
            .collect();
        counters[0].add(4).unwrap();
        counters[1].add(-1).unwrap();
        for c in &counters {
            c.refresh();
            let _ = c.value().unwrap();
        }
        let oracle = ObjectOracle::new(Family::Counter, layout);
        let report = check_object(&rec.processes(), &oracle);
        assert!(report.is_correct(), "{report}");
        assert_eq!(report.ops_checked, 4);
    }
}
