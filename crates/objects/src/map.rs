//! The map/dictionary: key→value bindings with policy-resolved reads.
//!
//! Each process binds keys by writing `Entry{key, val}` cells into its
//! own row (updating its own existing binding in place when it has one).
//! Different processes may therefore hold **concurrent bindings** for the
//! same key in different rows; `get` collects all of them as
//! [`Candidate`]s and lets the map's [`MergePolicy`] pick the reported
//! value — the read-side generalization of §4.2's owner-favored
//! resolution.

use std::sync::Arc;

use memcore::{MemoryError, NodeId, SharedMemory, WriteId};

use crate::layout::GridLayout;
use crate::ops::{ObjOp, ObjRecorder, ObjRet};
use crate::policy::{Candidate, MergePolicy};
use crate::trace::Trace;
use crate::value::ObjVal;

/// One process's handle on the shared map.
pub struct CausalMap<M> {
    mem: M,
    layout: GridLayout,
    row: usize,
    policy: Arc<dyn MergePolicy>,
    rec: Option<ObjRecorder>,
}

impl<M> std::fmt::Debug for CausalMap<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CausalMap")
            .field("layout", &self.layout)
            .field("row", &self.row)
            .field("policy", &self.policy.name())
            .finish_non_exhaustive()
    }
}

impl<M: SharedMemory<ObjVal>> CausalMap<M> {
    /// The grid a map for `nodes` processes with `slots` bindings per
    /// process occupies.
    #[must_use]
    pub fn layout(nodes: usize, slots: usize) -> GridLayout {
        GridLayout::new(nodes, slots)
    }

    /// Wraps `mem`, resolving concurrent bindings with `policy`.
    ///
    /// # Panics
    ///
    /// Panics if the node index exceeds the layout's rows.
    #[must_use]
    pub fn new(mem: M, layout: GridLayout, policy: impl MergePolicy) -> Self {
        let row = mem.node().index();
        assert!(row < layout.rows(), "node outside map layout");
        CausalMap {
            mem,
            layout,
            row,
            policy: Arc::new(policy),
            rec: None,
        }
    }

    /// Records every operation's typed trace into `rec`.
    #[must_use]
    pub fn with_recorder(mut self, rec: ObjRecorder) -> Self {
        self.rec = Some(rec);
        self
    }

    /// The policy resolving this map's concurrent bindings.
    #[must_use]
    pub fn policy(&self) -> &dyn MergePolicy {
        &*self.policy
    }

    /// Binds `key → val` in this process's own row, updating this
    /// process's existing binding in place when it has one, else taking
    /// the first free slot. Returns `false` when the row is full.
    ///
    /// # Errors
    ///
    /// Propagates memory errors.
    pub fn put(&self, key: i64, val: i64) -> Result<bool, MemoryError> {
        let mut tr = Trace::new(self.rec.is_some());
        let mut target = None;
        let mut first_free = None;
        for col in 0..self.layout.cols() {
            let loc = self.layout.slot(self.row, col);
            let (v, _) = tr.read(&self.mem, loc)?;
            match v {
                ObjVal::Entry(k, _) if k == key => {
                    target = Some(loc);
                    break;
                }
                ObjVal::Free if first_free.is_none() => first_free = Some(loc),
                _ => {}
            }
        }
        let done = match target.or(first_free) {
            Some(loc) => {
                tr.write(&self.mem, loc, ObjVal::Entry(key, val))?;
                true
            }
            None => false,
        };
        tr.emit(
            self.rec.as_ref(),
            self.node(),
            ObjOp::MapPut(key, val),
            ObjRet::Bool(done),
        );
        Ok(done)
    }

    /// Looks `key` up in this process's view: collects every visible
    /// binding and resolves concurrent ones with the map's policy.
    ///
    /// # Errors
    ///
    /// Propagates memory errors.
    pub fn get(&self, key: i64) -> Result<Option<i64>, MemoryError> {
        let mut tr = Trace::new(self.rec.is_some());
        let candidates = self.collect(&mut tr, key)?;
        let answer = if candidates.is_empty() {
            None
        } else {
            Some(self.policy.resolve(key, &candidates))
        };
        tr.emit(
            self.rec.as_ref(),
            self.node(),
            ObjOp::MapGet(key),
            ObjRet::Opt(answer),
        );
        Ok(answer)
    }

    /// Frees every binding of `key` this view observes (any row).
    /// Returns `false` when none is visible.
    ///
    /// # Errors
    ///
    /// Propagates memory errors.
    pub fn remove(&self, key: i64) -> Result<bool, MemoryError> {
        let mut tr = Trace::new(self.rec.is_some());
        let mut done = false;
        for flat in 0..self.layout.locations() as usize {
            let loc = self.layout.slot_flat(flat);
            let (v, _) = tr.read(&self.mem, loc)?;
            if matches!(v, ObjVal::Entry(k, _) if k == key) {
                tr.write(&self.mem, loc, ObjVal::Free)?;
                done = true;
            }
        }
        tr.emit(
            self.rec.as_ref(),
            self.node(),
            ObjOp::MapRemove(key),
            ObjRet::Bool(done),
        );
        Ok(done)
    }

    /// Every `(key, policy-resolved value)` pair in this process's view.
    ///
    /// # Errors
    ///
    /// Propagates memory errors.
    pub fn entries(&self) -> Result<Vec<(i64, i64)>, MemoryError> {
        let mut keys = Vec::new();
        for flat in 0..self.layout.locations() as usize {
            if let ObjVal::Entry(key, _) = self.mem.read(self.layout.slot_flat(flat))? {
                if !keys.contains(&key) {
                    keys.push(key);
                }
            }
        }
        let mut out = Vec::with_capacity(keys.len());
        for key in keys {
            if let Some(val) = self.get(key)? {
                out.push((key, val));
            }
        }
        Ok(out)
    }

    /// Discards every cached (non-owned) slot, so the next scan fetches
    /// fresh copies.
    pub fn refresh(&self) {
        for row in 0..self.layout.rows() {
            if row == self.row {
                continue;
            }
            for col in 0..self.layout.cols() {
                self.mem.discard(self.layout.slot(row, col));
            }
        }
    }

    fn collect(&self, tr: &mut Trace, key: i64) -> Result<Vec<Candidate>, MemoryError> {
        let mut candidates = Vec::new();
        for flat in 0..self.layout.locations() as usize {
            let loc = self.layout.slot_flat(flat);
            let (v, wid) = tr.read(&self.mem, loc)?;
            if let ObjVal::Entry(k, val) = v {
                if k == key {
                    candidates.push(Candidate {
                        row: self.layout.coords(loc).0,
                        wid: wid.unwrap_or_else(|| WriteId::initial(loc)),
                        val,
                    });
                }
            }
        }
        Ok(candidates)
    }

    fn node(&self) -> NodeId {
        NodeId::new(self.row as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use causal_dsm::{CausalCluster, WritePolicy};
    use causal_spec::check_object;

    use crate::oracle::{Family, ObjectOracle};
    use crate::policy::PolicyKind;

    fn cluster(layout: GridLayout) -> CausalCluster<ObjVal> {
        CausalCluster::<ObjVal>::builder(layout.rows() as u32, layout.locations())
            .configure(|c| c.owners(layout.owners()).policy(WritePolicy::OwnerFavored))
            .build()
            .expect("cluster")
    }

    #[test]
    fn put_get_remove_round_trip() {
        let layout = CausalMap::<causal_dsm::CausalHandle<ObjVal>>::layout(2, 3);
        let cluster = cluster(layout);
        let map = CausalMap::new(cluster.handle(0), layout, PolicyKind::LastWriter);
        assert!(map.put(10, 1).unwrap());
        assert!(map.put(10, 2).unwrap());
        assert_eq!(map.get(10).unwrap(), Some(2));
        // In-place update: the second put reused key 10's slot.
        assert!(map.put(11, 3).unwrap());
        assert_eq!(map.entries().unwrap(), vec![(10, 2), (11, 3)]);
        assert!(map.remove(10).unwrap());
        assert_eq!(map.get(10).unwrap(), None);
    }

    #[test]
    fn concurrent_bindings_resolve_by_policy() {
        let layout = CausalMap::<causal_dsm::CausalHandle<ObjVal>>::layout(2, 2);
        let cluster = cluster(layout);
        // Key 1's home row is 1 under owner-wins with 2 rows.
        let owner_wins = PolicyKind::OwnerWins { rows: 2 };
        let maps: Vec<_> = (0..2)
            .map(|i| CausalMap::new(cluster.handle(i), layout, owner_wins))
            .collect();
        assert!(maps[0].put(1, 100).unwrap());
        assert!(maps[1].put(1, 200).unwrap());
        for m in &maps {
            m.refresh();
            assert_eq!(m.get(1).unwrap(), Some(200), "home row binding wins");
        }
    }

    #[test]
    fn typed_traces_satisfy_the_map_oracle() {
        let layout = CausalMap::<causal_dsm::CausalHandle<ObjVal>>::layout(2, 2);
        let cluster = cluster(layout);
        let rec = ObjRecorder::new(2);
        let policy = PolicyKind::Commutative;
        let maps: Vec<_> = (0..2)
            .map(|i| {
                CausalMap::new(cluster.handle(i), layout, policy).with_recorder(rec.clone())
            })
            .collect();
        assert!(maps[0].put(1, 10).unwrap());
        assert!(maps[1].put(1, 30).unwrap());
        for m in &maps {
            m.refresh();
            assert_eq!(m.get(1).unwrap(), Some(30), "commutative fold is max");
        }
        assert!(maps[0].remove(1).unwrap());
        assert_eq!(maps[0].get(1).unwrap(), None);
        let oracle = ObjectOracle::new(Family::Map, layout).with_policy(policy);
        let report = check_object(&rec.processes(), &oracle);
        assert!(report.is_correct(), "{report}");
    }
}
