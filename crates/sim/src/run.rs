//! Convenience constructors: one call to stand up a simulated cluster of
//! each protocol.

use causal_dsm::{CausalConfig, CausalState};
use memcore::{NodeId, Value};

use crate::actor::{AtomicActor, BroadcastActor, CausalActor};
use crate::sched::{Sim, SimOpts};

/// A simulated causal-DSM cluster: one [`CausalActor`] per node.
///
/// # Examples
///
/// ```
/// use causal_dsm::CausalConfig;
/// use dsm_sim::{causal_sim, ClientOp, Script, SimOpts};
/// use memcore::{Location, Word};
///
/// let config = CausalConfig::<Word>::builder(2, 2).build();
/// let mut sim = causal_sim(&config, SimOpts::default());
/// sim.set_client(0, Script::new(vec![ClientOp::Write(Location::new(0), Word::Int(1))]));
/// assert!(sim.run_to_completion().all_done);
/// ```
#[must_use]
pub fn causal_sim<V: Value>(config: &CausalConfig<V>, opts: SimOpts<V>) -> Sim<V, CausalActor<V>> {
    let actors = (0..config.nodes())
        .map(|i| CausalActor::new(CausalState::new(NodeId::new(i), config.clone())))
        .collect();
    Sim::new(actors, opts)
}

/// A simulated atomic-DSM cluster: one [`AtomicActor`] per node.
#[must_use]
pub fn atomic_sim<V: Value>(
    config: &atomic_dsm::AtomicConfig<V>,
    opts: SimOpts<V>,
) -> Sim<V, AtomicActor<V>> {
    let actors = (0..config.nodes())
        .map(|i| AtomicActor::new(atomic_dsm::AtomicState::new(NodeId::new(i), config.clone())))
        .collect();
    Sim::new(actors, opts)
}

/// A simulated causal-broadcast replica cluster.
#[must_use]
pub fn broadcast_sim<V: Value + Default>(
    nodes: u32,
    locations: u32,
    opts: SimOpts<V>,
) -> Sim<V, BroadcastActor<V>> {
    let actors = (0..nodes)
        .map(|i| {
            BroadcastActor::new(broadcast_mem::BroadcastState::new(
                NodeId::new(i),
                nodes as usize,
                locations,
            ))
        })
        .collect();
    Sim::new(actors, opts)
}
