//! Protocol actors: uniform adapters over the pure state machines of the
//! three memory implementations, so one scheduler drives them all.

use memcore::{Location, NodeId, OpRecord, OwnerEpoch, PageId, Value, WriteId};
use simnet::Tagged;

use crate::client::{ClientOp, Outcome};

/// A completed operation: the client-visible outcome plus the record the
/// specification checker consumes.
#[derive(Clone, Debug)]
pub struct Completion<V> {
    /// What the client sees.
    pub outcome: Outcome<V>,
    /// What the checker sees (absent for discards).
    pub record: Option<OpRecord<V>>,
}

/// The effects of submitting an operation or delivering a message.
#[derive(Debug)]
pub struct Effects<V, M> {
    /// Messages to send.
    pub outgoing: Vec<(NodeId, M)>,
    /// Present when the node's outstanding operation completed.
    pub completion: Option<Completion<V>>,
}

impl<V, M> Effects<V, M> {
    /// No messages, no completion — the effect of an absorbed event.
    #[must_use]
    pub fn empty() -> Self {
        Effects {
            outgoing: Vec::new(),
            completion: None,
        }
    }

    fn done(outcome: Outcome<V>, record: Option<OpRecord<V>>) -> Self {
        Effects {
            outgoing: Vec::new(),
            completion: Some(Completion { outcome, record }),
        }
    }

    fn sent(outgoing: Vec<(NodeId, M)>) -> Self {
        Effects {
            outgoing,
            completion: None,
        }
    }
}

/// One simulated node: a protocol state machine with at most one
/// outstanding application operation.
pub trait Actor<V: Value>: Send {
    /// The protocol's message type.
    type Msg: Tagged + Clone + Send + std::fmt::Debug;

    /// This node's identifier.
    fn id(&self) -> NodeId;

    /// Submits an application operation ([`ClientOp::WaitUntil`] is
    /// decomposed by the scheduler and never reaches actors).
    ///
    /// Returns either an immediate completion or the messages whose
    /// replies will complete it.
    fn submit(&mut self, op: &ClientOp<V>) -> Effects<V, Self::Msg>;

    /// Delivers a protocol message.
    fn deliver(&mut self, from: NodeId, msg: Self::Msg) -> Effects<V, Self::Msg>;

    /// The node whose copy of `loc` is authoritative for wait-signaling:
    /// the owner for owner protocols, this node for replicated memory.
    fn authority(&self, loc: Location) -> NodeId;

    /// This node's current value of `loc`, if it holds one (owned, cached
    /// or replicated). No protocol side effects.
    fn peek(&self, loc: Location) -> Option<V>;

    /// Time-aware [`submit`](Actor::submit): the scheduler calls this form
    /// so wrappers that keep clocks (the session layer in `dsm-faults`)
    /// can observe the current simulated time. Plain actors ignore it.
    fn submit_at(&mut self, now: u64, op: &ClientOp<V>) -> Effects<V, Self::Msg> {
        let _ = now;
        self.submit(op)
    }

    /// Time-aware [`deliver`](Actor::deliver); see
    /// [`submit_at`](Actor::submit_at).
    fn deliver_at(&mut self, now: u64, from: NodeId, msg: Self::Msg) -> Effects<V, Self::Msg> {
        let _ = now;
        self.deliver(from, msg)
    }

    /// The earliest time this actor needs a timer to fire (retransmission
    /// deadlines, …), or `None`. The scheduler re-reads this after every
    /// interaction with the actor and schedules accordingly; plain actors
    /// never need timers.
    fn next_timer(&self) -> Option<u64> {
        None
    }

    /// Fires the actor's timer at `now`. Called only when
    /// [`next_timer`](Actor::next_timer) returned a time `<= now`.
    fn on_timer(&mut self, now: u64) -> Effects<V, Self::Msg> {
        let _ = now;
        Effects::empty()
    }

    /// Called once when this node comes back up after a crash window
    /// (the fault model reported it down and the downtime elapsed),
    /// before any other event reaches it. Actors that persist state
    /// reload from disk here and may announce their new life (a session
    /// HELLO broadcast); plain actors — which model the paper's
    /// fail-stop world with no disk — restart empty and do nothing.
    fn on_restart(&mut self, now: u64) -> Effects<V, Self::Msg> {
        let _ = now;
        Effects::empty()
    }
}

// ---------------------------------------------------------------------
// Causal owner protocol
// ---------------------------------------------------------------------

#[derive(Clone, Debug)]
enum CausalPending<V> {
    Read {
        loc: Location,
    },
    Write {
        loc: Location,
        value: std::sync::Arc<V>,
        wid: WriteId,
    },
}

/// Sim-side bounded write pipeline, mirroring the threaded engine's:
/// active only when the wrapped state's configuration has
/// `pipeline_window > 0` (in which case both `Write` and
/// `WriteNonblocking` route through it, completing at issue).
#[derive(Clone, Debug)]
struct ActorPipeline<V> {
    window: usize,
    batching: bool,
    /// Owner the open window points at (`None` when idle).
    owner: Option<NodeId>,
    /// Pipelined writes outstanding toward it — sent or still buffered.
    in_flight: usize,
    /// With batching on, WRITE requests accumulated but not yet sent.
    buffer: Vec<causal_dsm::Msg<V>>,
    /// Tags of pipelined writes awaiting absorption.
    wids: std::collections::HashSet<WriteId>,
}

impl<V: Value> ActorPipeline<V> {
    /// Batch runs never exceed the window (a full window must flush so
    /// its replies can drain) and cap at eight parts per envelope.
    fn run_cap(&self) -> usize {
        self.window.min(8)
    }

    /// Everything buffered, as one envelope (runs of two or more wrap in
    /// [`causal_dsm::Msg::Batch`]); empty when nothing is buffered.
    fn flush(&mut self) -> Vec<(NodeId, causal_dsm::Msg<V>)> {
        if self.buffer.is_empty() {
            return Vec::new();
        }
        let owner = self.owner.expect("buffered writes always have an owner");
        let mut run = std::mem::take(&mut self.buffer);
        let envelope = if run.len() == 1 {
            run.pop().expect("length checked")
        } else {
            causal_dsm::Msg::Batch(run)
        };
        vec![(owner, envelope)]
    }
}

/// Sim-side failover runtime: the heartbeat schedule and the table of
/// stamped in-flight requests (blocking, non-blocking and pipelined
/// alike). Present iff the wrapped state carries a
/// [`causal_dsm::FailoverConfig`].
#[derive(Clone, Debug)]
struct ActorFailover<V> {
    config: causal_dsm::FailoverConfig,
    /// Current simulated time, refreshed on every submit/deliver/timer.
    now: u64,
    /// When the next heartbeat broadcast is due.
    next_heartbeat: u64,
    /// Stamped requests awaiting stamped replies.
    inflight: Vec<InflightOp<V>>,
}

/// One stamped request in flight toward an owner.
#[derive(Clone, Debug)]
struct InflightOp<V> {
    /// Stamp of the *current* attempt (refreshed on every redispatch, so
    /// replies to abandoned attempts are recognizably stale).
    op: u64,
    /// The page the request concerns.
    page: PageId,
    /// The owner the current attempt was sent to.
    target: NodeId,
    /// The bare Figure-4 request, kept for re-sending.
    request: causal_dsm::Msg<V>,
    /// When the current attempt is abandoned and the target suspected.
    deadline: u64,
    /// Attempts consumed so far (drives the retry backoff).
    attempt: u32,
}

/// One attempt's patience before its target is suspected: the suspicion
/// budget plus the attempt's exponential backoff (deterministic jitter
/// from `salt`, so replays retry at identical times).
fn attempt_window(config: &causal_dsm::FailoverConfig, attempt: u32, salt: u64) -> u64 {
    let base = config
        .heartbeat_interval
        .saturating_mul(u64::from(config.suspicion_threshold))
        .max(1);
    base + config.backoff(attempt, salt)
}

/// Folds `extra` into `acc`. A node completes at most one operation per
/// delivered event; enforced here.
fn merge_effects<V, M>(acc: &mut Effects<V, M>, mut extra: Effects<V, M>) {
    acc.outgoing.append(&mut extra.outgoing);
    if extra.completion.is_some() {
        assert!(acc.completion.is_none(), "at most one completion per event");
        acc.completion = extra.completion;
    }
}

/// What the pipeline requires before an operation may proceed.
enum Gate {
    Proceed,
    /// Wait until every in-flight write's reply is absorbed.
    Drain,
    /// Wait until the window has a free slot (same-owner pipelined write).
    Slot,
}

/// [`Actor`] over the causal owner protocol's
/// [`CausalState`](causal_dsm::CausalState).
#[derive(Clone, Debug)]
pub struct CausalActor<V> {
    state: causal_dsm::CausalState<V>,
    pending: Option<CausalPending<V>>,
    /// Outstanding non-blocking writes whose replies are absorbed rather
    /// than completing an operation.
    nonblocking: std::collections::HashSet<WriteId>,
    /// Present iff the configuration enables the bounded write pipeline.
    pipeline: Option<ActorPipeline<V>>,
    /// An operation the pipeline gated (see [`Gate`]); re-tried each time
    /// a pipelined reply drains. The node is blocked while this is set.
    deferred: Option<ClientOp<V>>,
    /// Failover runtime (heartbeats, suspicion, stamped-request retry);
    /// `None` — and completely inert — without a failover configuration.
    fo: Option<ActorFailover<V>>,
}

impl<V: Value> CausalActor<V> {
    /// Wraps a node's protocol state.
    #[must_use]
    pub fn new(state: causal_dsm::CausalState<V>) -> Self {
        let window = state.config().pipeline_window() as usize;
        let failover = state.failover_config();
        let pipeline = (window > 0).then(|| ActorPipeline {
            window,
            // Under failover every pipelined WRITE travels in its own
            // stamped envelope so NACKs and retries can target individual
            // attempts; transport batching is bypassed.
            batching: state.config().batching() && failover.is_none(),
            owner: None,
            in_flight: 0,
            buffer: Vec::new(),
            wids: std::collections::HashSet::new(),
        });
        let fo = failover.map(|config| ActorFailover {
            config,
            now: 0,
            next_heartbeat: config.heartbeat_interval.max(1),
            inflight: Vec::new(),
        });
        CausalActor {
            state,
            pending: None,
            nonblocking: std::collections::HashSet::new(),
            pipeline,
            deferred: None,
            fo,
        }
    }

    /// The wrapped protocol state (inspection).
    #[must_use]
    pub fn state(&self) -> &causal_dsm::CausalState<V> {
        &self.state
    }

    /// Mutable access to the wrapped protocol state — what a durability
    /// wrapper needs to drain the state's journal after each event.
    #[must_use]
    pub fn state_mut(&mut self) -> &mut causal_dsm::CausalState<V> {
        &mut self.state
    }

    /// The node currently serving `loc`: the static owner until failover
    /// migrates the page to a higher epoch.
    fn owner_now(&self, loc: Location) -> NodeId {
        self.state
            .current_owner(loc.page(self.state.config().page_size()))
    }

    /// The drain/slot rules of the bounded pipeline (the same derivation
    /// as the engine's `write_pipelined`): operations that would leak
    /// in-flight increments — an owner-local write, a write toward a
    /// *different* owner, or a read that will miss toward the pipeline's
    /// owner — require a full drain; a same-owner pipelined write needs
    /// only a free window slot. Everything else overlaps freely.
    fn gate(&self, op: &ClientOp<V>) -> Gate {
        let Some(p) = &self.pipeline else {
            return Gate::Proceed;
        };
        if p.in_flight == 0 {
            return Gate::Proceed;
        }
        let me = self.state.id();
        match op {
            ClientOp::Read(loc) | ClientOp::ReadFresh(loc) => {
                let owner = self.owner_now(*loc);
                let misses =
                    matches!(op, ClientOp::ReadFresh(_)) || !self.state.has_valid_copy(*loc);
                if p.owner == Some(owner) && misses {
                    Gate::Drain
                } else {
                    Gate::Proceed
                }
            }
            ClientOp::Write(loc, _) | ClientOp::WriteNonblocking(loc, _) => {
                let owner = self.owner_now(*loc);
                if owner == me || p.owner != Some(owner) {
                    Gate::Drain
                } else if p.in_flight >= p.window {
                    Gate::Slot
                } else {
                    Gate::Proceed
                }
            }
            ClientOp::Discard(_) => Gate::Proceed,
            ClientOp::WaitUntil(..) => unreachable!("scheduler decomposes waits"),
        }
    }

    /// Attempts `op`, stashing it in `deferred` (with the buffer flushed,
    /// so the drain can make progress) when the pipeline gates it.
    fn try_op(&mut self, op: &ClientOp<V>) -> Effects<V, causal_dsm::Msg<V>> {
        match self.gate(op) {
            Gate::Proceed => self.perform(op),
            Gate::Drain | Gate::Slot => {
                let outgoing = self
                    .pipeline
                    .as_mut()
                    .map(ActorPipeline::flush)
                    .unwrap_or_default();
                self.deferred = Some(op.clone());
                Effects {
                    outgoing,
                    completion: None,
                }
            }
        }
    }

    /// Issues a write through the pipeline (remote owner, window open):
    /// completes at issue; the request goes out now or rides a batch.
    fn issue_pipelined(&mut self, loc: Location, value: &V) -> Effects<V, causal_dsm::Msg<V>> {
        let shared = std::sync::Arc::new(value.clone());
        let step = self
            .state
            .begin_write_nonblocking_shared(loc, std::sync::Arc::clone(&shared));
        match step {
            causal_dsm::WriteStep::Done { .. } => {
                unreachable!("pipelined writes never target owned pages")
            }
            causal_dsm::WriteStep::Remote {
                owner,
                wid,
                request,
            } => {
                let request = self.stamp_request(owner, request);
                let p = self
                    .pipeline
                    .as_mut()
                    .expect("pipelined issue needs a pipeline");
                p.wids.insert(wid);
                p.owner = Some(owner);
                p.in_flight += 1;
                let outgoing = if p.batching {
                    p.buffer.push(request);
                    if p.buffer.len() >= p.run_cap() || p.in_flight >= p.window {
                        p.flush()
                    } else {
                        Vec::new()
                    }
                } else {
                    vec![(owner, request)]
                };
                Effects {
                    outgoing,
                    completion: Some(Completion {
                        outcome: Outcome::Wrote { wid, applied: true },
                        record: Some(OpRecord::write(loc, value.clone(), wid)),
                    }),
                }
            }
        }
    }

    /// With failover enabled, wraps an outgoing Figure-4 request in the
    /// `(epoch, op)` envelope and tracks it for NACK-redirect and
    /// timeout retry; a passthrough otherwise.
    fn stamp_request(&mut self, owner: NodeId, request: causal_dsm::Msg<V>) -> causal_dsm::Msg<V> {
        if self.fo.is_none() {
            return request;
        }
        let page = match &request {
            causal_dsm::Msg::Read { page } => *page,
            causal_dsm::Msg::Write { loc, .. } => loc.page(self.state.config().page_size()),
            other => unreachable!("only owner requests are stamped: {other:?}"),
        };
        let epoch = self.state.epoch_of(page);
        let op = self.state.next_op_id();
        let me = self.state.id();
        let fo = self.fo.as_mut().expect("checked above");
        let salt = ((me.index() as u64) << 32) | (op & 0xFFFF_FFFF);
        let deadline = fo.now + attempt_window(&fo.config, 0, salt);
        fo.inflight.push(InflightOp {
            op,
            page,
            target: owner,
            request: request.clone(),
            deadline,
            attempt: 0,
        });
        causal_dsm::Msg::Stamped {
            epoch,
            op,
            inner: Box::new(request),
        }
    }

    /// Appends pending protocol side traffic to `out`: hot-standby
    /// shadows (failover) and `[INTEREST]` drops queued by cache eviction
    /// (interest scoping). A no-op when both features are off.
    fn drain_replications(&mut self, out: &mut Vec<(NodeId, causal_dsm::Msg<V>)>) {
        if self.fo.is_some() {
            out.extend(self.state.take_replications());
        }
        if self.state.config().interest_scoping() {
            out.extend(self.state.take_interest_msgs());
        }
    }

    /// Re-resolves every in-flight request against the current epoch
    /// table: entries whose page migrated are re-stamped and re-sent to
    /// the new owner — or served against the local promoted copy when the
    /// migration landed *here*. Called after any event that can advance
    /// an epoch (SUSPECT, NACK, a stamped request, a timer suspicion).
    fn redispatch_inflight(&mut self) -> Effects<V, causal_dsm::Msg<V>> {
        if self.fo.is_none() {
            return Effects::empty();
        }
        let me = self.state.id();
        let (now, config) = {
            let fo = self.fo.as_ref().expect("checked above");
            (fo.now, fo.config)
        };
        let inflight = std::mem::take(&mut self.fo.as_mut().expect("checked above").inflight);
        let mut keep = Vec::with_capacity(inflight.len());
        let mut outgoing = Vec::new();
        let mut local = Vec::new();
        for mut entry in inflight {
            let owner = self.state.current_owner(entry.page);
            if owner == entry.target {
                keep.push(entry);
                continue;
            }
            let epoch = self.state.epoch_of(entry.page);
            let op = self.state.next_op_id();
            entry.op = op;
            entry.attempt = entry.attempt.saturating_add(1);
            if owner == me {
                // The page migrated *to us* mid-operation: serve our own
                // request against the promoted copy.
                let reply = self
                    .state
                    .serve_stamped(me, epoch, op, entry.request.clone())
                    .expect("owner answers its own request");
                match reply {
                    causal_dsm::Msg::Stamped { inner, .. } => local.push(*inner),
                    other => unreachable!("self-serve cannot be refused: {other:?}"),
                }
            } else {
                let salt = ((me.index() as u64) << 32) | (op & 0xFFFF_FFFF);
                entry.deadline = now + attempt_window(&config, entry.attempt, salt);
                entry.target = owner;
                outgoing.push((
                    owner,
                    causal_dsm::Msg::Stamped {
                        epoch,
                        op,
                        inner: Box::new(entry.request.clone()),
                    },
                ));
                // A migrated pipelined window now points at the successor.
                if let causal_dsm::Msg::Write { wid, .. } = &entry.request {
                    if let Some(p) = &mut self.pipeline {
                        if p.wids.contains(wid) {
                            p.owner = Some(owner);
                        }
                    }
                }
                keep.push(entry);
            }
        }
        self.fo.as_mut().expect("checked above").inflight = keep;
        let mut effects = Effects::sent(outgoing);
        // Locally-served replies absorb exactly as if they had arrived
        // over the wire (their entries are already retired above).
        for inner in local {
            let extra = self.deliver_reply(inner);
            merge_effects(&mut effects, extra);
        }
        effects
    }

    /// Locally declares `node` crashed: migrates its pages to their
    /// successors, broadcasts the `[SUSPECT]` decision (including toward
    /// the suspect itself — dropped while it is down, but the session
    /// layer's retransmission re-educates it once it restarts), and
    /// re-dispatches any requests that pointed at it.
    fn declare_suspect(&mut self, node: NodeId) -> Effects<V, causal_dsm::Msg<V>> {
        let already = self.state.is_suspected(node);
        let migrated = self.state.suspect(node);
        if already && migrated.is_empty() {
            return self.redispatch_inflight();
        }
        let me = self.state.id();
        // With a scoped heartbeat fanout the decision goes only to the
        // parties that need it now (new owners, both ring neighborhoods,
        // the suspect itself); everyone else learns lazily via NACK
        // redirects. `None` means broadcast (all-pairs mode).
        let targets = self.state.suspect_targets(node, &migrated).unwrap_or_else(|| {
            (0..self.state.config().nodes())
                .map(NodeId::new)
                .filter(|peer| *peer != me)
                .collect()
        });
        let msg = causal_dsm::Msg::Suspect {
            suspect: node,
            epochs: migrated,
        };
        let mut effects = Effects::empty();
        for peer in targets {
            effects.outgoing.push((peer, msg.clone()));
        }
        merge_effects(&mut effects, self.redispatch_inflight());
        effects
    }

    /// Handles a `[NACK]`: adopt the server's (newer) epoch and re-route
    /// the rejected attempt to the node now serving the page.
    fn on_nack(
        &mut self,
        page: PageId,
        op: u64,
        epoch: OwnerEpoch,
    ) -> Effects<V, causal_dsm::Msg<V>> {
        if let Some(fo) = &mut self.fo {
            if let Some(entry) = fo.inflight.iter_mut().find(|e| e.op == op) {
                entry.attempt = entry.attempt.saturating_add(1);
            }
        }
        self.state.observe_epoch(page, epoch);
        self.redispatch_inflight()
    }

    /// Handles a stamped reply: matched against the in-flight table by op
    /// id; replies to abandoned attempts are recognizably stale and
    /// silently dropped — the recoverable-timeout contract.
    fn on_stamped_reply(
        &mut self,
        op: u64,
        inner: causal_dsm::Msg<V>,
    ) -> Effects<V, causal_dsm::Msg<V>> {
        let Some(fo) = &mut self.fo else {
            return Effects::empty();
        };
        let Some(i) = fo.inflight.iter().position(|e| e.op == op) else {
            return Effects::empty();
        };
        fo.inflight.swap_remove(i);
        self.deliver_reply(inner)
    }

    /// Handles a reply (never a request): absorbs pipelined and raw
    /// non-blocking write replies — re-trying any deferred operation as
    /// the pipeline drains — and completes the outstanding operation
    /// otherwise.
    fn deliver_reply(&mut self, msg: causal_dsm::Msg<V>) -> Effects<V, causal_dsm::Msg<V>> {
        if let causal_dsm::Msg::WriteReply { wid, .. } = &msg {
            if self.nonblocking.remove(wid) {
                self.state.absorb_write_reply(msg);
                return Effects::empty();
            }
            let piped = self.pipeline.as_mut().is_some_and(|p| p.wids.remove(wid));
            if piped {
                self.state.absorb_write_reply(msg);
                let p = self.pipeline.as_mut().expect("checked above");
                p.in_flight -= 1;
                if p.in_flight == 0 {
                    p.owner = None;
                }
                if let Some(op) = self.deferred.take() {
                    return self.try_op(&op);
                }
                return Effects::empty();
            }
        }
        match self.pending.take() {
            Some(CausalPending::Read { loc }) => {
                let (value, wid) = self.state.finish_read(loc, msg);
                Effects::done(
                    Outcome::Read {
                        value: (*value).clone(),
                        wid,
                    },
                    Some(OpRecord::read(loc, (*value).clone(), wid)),
                )
            }
            Some(CausalPending::Write { loc, value, wid }) => {
                let done = self
                    .state
                    .finish_write(std::sync::Arc::clone(&value), wid, msg);
                Effects::done(
                    Outcome::Wrote {
                        wid: done.wid(),
                        applied: done.is_applied(),
                    },
                    Some(OpRecord::write(loc, (*value).clone(), done.wid())),
                )
            }
            None => panic!("reply with no outstanding operation"),
        }
    }

    /// Performs `op` now (the pipeline, if any, has cleared it).
    fn perform(&mut self, op: &ClientOp<V>) -> Effects<V, causal_dsm::Msg<V>> {
        match op {
            ClientOp::Read(loc) | ClientOp::ReadFresh(loc) => {
                if matches!(op, ClientOp::ReadFresh(_)) {
                    self.state.discard(*loc);
                }
                match self.state.begin_read(*loc) {
                    causal_dsm::ReadStep::Hit { value, wid } => Effects::done(
                        Outcome::Read {
                            value: (*value).clone(),
                            wid,
                        },
                        Some(OpRecord::read(*loc, (*value).clone(), wid)),
                    ),
                    causal_dsm::ReadStep::Miss { owner, request } => {
                        self.pending = Some(CausalPending::Read { loc: *loc });
                        let request = self.stamp_request(owner, request);
                        Effects::sent(vec![(owner, request)])
                    }
                }
            }
            ClientOp::Write(loc, value) if self.pipeline.is_some() => {
                // With the pipeline on, plain writes to remote owners
                // flow through it (completing at issue); owner-local
                // writes complete locally as ever — the gate has already
                // drained the window for them.
                if self.owner_now(*loc) == self.state.id() {
                    self.perform_blocking_write(*loc, value)
                } else {
                    self.issue_pipelined(*loc, value)
                }
            }
            ClientOp::Write(loc, value) => self.perform_blocking_write(*loc, value),
            ClientOp::WriteNonblocking(loc, value) => {
                if self.pipeline.is_some() && self.owner_now(*loc) != self.state.id() {
                    return self.issue_pipelined(*loc, value);
                }
                match self.state.begin_write_nonblocking(*loc, value.clone()) {
                    causal_dsm::WriteStep::Done { wid } => Effects::done(
                        Outcome::Wrote { wid, applied: true },
                        Some(OpRecord::write(*loc, value.clone(), wid)),
                    ),
                    causal_dsm::WriteStep::Remote {
                        owner,
                        wid,
                        request,
                    } => {
                        self.nonblocking.insert(wid);
                        let request = self.stamp_request(owner, request);
                        Effects {
                            outgoing: vec![(owner, request)],
                            completion: Some(Completion {
                                outcome: Outcome::Wrote { wid, applied: true },
                                record: Some(OpRecord::write(*loc, value.clone(), wid)),
                            }),
                        }
                    }
                }
            }
            ClientOp::Discard(loc) => {
                self.state.discard(*loc);
                Effects::done(Outcome::Discarded, None)
            }
            ClientOp::WaitUntil(..) => unreachable!("scheduler decomposes waits"),
        }
    }

    fn perform_blocking_write(
        &mut self,
        loc: Location,
        value: &V,
    ) -> Effects<V, causal_dsm::Msg<V>> {
        let shared = std::sync::Arc::new(value.clone());
        match self
            .state
            .begin_write_shared(loc, std::sync::Arc::clone(&shared))
        {
            causal_dsm::WriteStep::Done { wid } => Effects::done(
                Outcome::Wrote { wid, applied: true },
                Some(OpRecord::write(loc, value.clone(), wid)),
            ),
            causal_dsm::WriteStep::Remote {
                owner,
                wid,
                request,
            } => {
                self.pending = Some(CausalPending::Write {
                    loc,
                    value: shared,
                    wid,
                });
                let request = self.stamp_request(owner, request);
                Effects::sent(vec![(owner, request)])
            }
        }
    }
}

impl<V: Value> Actor<V> for CausalActor<V> {
    type Msg = causal_dsm::Msg<V>;

    fn id(&self) -> NodeId {
        self.state.id()
    }

    fn submit(&mut self, op: &ClientOp<V>) -> Effects<V, Self::Msg> {
        assert!(
            self.pending.is_none() && self.deferred.is_none(),
            "one outstanding op per node"
        );
        self.try_op(op)
    }

    fn deliver(&mut self, from: NodeId, msg: Self::Msg) -> Effects<V, Self::Msg> {
        // The failover kinds first: none of them exists without a
        // FailoverConfig, so the plain Figure-4 paths below are untouched
        // in fault-free configurations.
        let msg = match msg {
            causal_dsm::Msg::Heartbeat { .. } => {
                // Pure liveness: already recorded in `deliver_at`.
                return Effects::empty();
            }
            causal_dsm::Msg::Suspect { suspect, epochs } => {
                self.state.absorb_suspect(suspect, &epochs);
                return self.redispatch_inflight();
            }
            causal_dsm::Msg::Replicate {
                page,
                vt,
                slots,
                origins,
            } => {
                self.state.apply_replicate(page, vt.into_inner(), slots, origins);
                return Effects::empty();
            }
            causal_dsm::Msg::Interest { page } => {
                // A peer evicted its copy: it is no longer interested.
                self.state.handle_interest_drop(page, from);
                return Effects::empty();
            }
            causal_dsm::Msg::Nack {
                page, op, epoch, ..
            } => return self.on_nack(page, op, epoch),
            causal_dsm::Msg::Stamped { epoch, op, inner } => {
                if inner.is_request() {
                    let mut effects = Effects::empty();
                    if let Some(reply) = self.state.serve_stamped(from, epoch, op, *inner) {
                        effects.outgoing.push((from, reply));
                    }
                    // Serving may have adopted a newer epoch.
                    merge_effects(&mut effects, self.redispatch_inflight());
                    return effects;
                }
                return self.on_stamped_reply(op, *inner);
            }
            other => other,
        };
        if let causal_dsm::Msg::Batch(parts) = msg {
            // A transport batch is its parts, in order: requests are
            // served in one pass with a single coalesced invalidation
            // sweep and replied to as one envelope; reply parts absorb
            // exactly as if they arrived alone. At most one part chain
            // can complete an operation (batches carry only pipelined
            // writes and their replies; blocking ops travel solo).
            let mut requests = Vec::with_capacity(parts.len());
            let mut effects = Effects::empty();
            for part in parts {
                if part.is_request() {
                    requests.push(part);
                } else {
                    let mut e = self.deliver_reply(part);
                    effects.outgoing.append(&mut e.outgoing);
                    if e.completion.is_some() {
                        assert!(
                            effects.completion.is_none(),
                            "at most one completion per batch"
                        );
                        effects.completion = e.completion;
                    }
                }
            }
            if !requests.is_empty() {
                let mut replies = self.state.serve_batch(from, requests);
                let reply = if replies.len() == 1 {
                    replies.pop().expect("length checked")
                } else {
                    causal_dsm::Msg::Batch(replies)
                };
                effects.outgoing.push((from, reply));
            }
            return effects;
        }
        if msg.is_request() {
            let reply = self
                .state
                .serve(from, msg)
                .expect("requests always produce replies");
            return Effects::sent(vec![(from, reply)]);
        }
        self.deliver_reply(msg)
    }

    fn authority(&self, loc: Location) -> NodeId {
        // Dynamic under failover: waits signal off the copy held by the
        // node *currently* serving the page.
        self.owner_now(loc)
    }

    fn peek(&self, loc: Location) -> Option<V> {
        self.state.peek(loc).map(|(v, _)| v.clone())
    }

    fn submit_at(&mut self, now: u64, op: &ClientOp<V>) -> Effects<V, Self::Msg> {
        if let Some(fo) = &mut self.fo {
            fo.now = now;
        }
        let mut effects = self.submit(op);
        self.drain_replications(&mut effects.outgoing);
        effects
    }

    fn deliver_at(&mut self, now: u64, from: NodeId, msg: Self::Msg) -> Effects<V, Self::Msg> {
        if let Some(fo) = &mut self.fo {
            fo.now = now;
            // Any inbound message is evidence of life, not just heartbeats.
            self.state.record_alive(from, now);
        }
        let mut effects = self.deliver(from, msg);
        self.drain_replications(&mut effects.outgoing);
        effects
    }

    fn next_timer(&self) -> Option<u64> {
        let fo = self.fo.as_ref()?;
        let mut t = fo.next_heartbeat;
        for entry in &fo.inflight {
            t = t.min(entry.deadline);
        }
        Some(t)
    }

    fn on_timer(&mut self, now: u64) -> Effects<V, Self::Msg> {
        if self.fo.is_none() {
            return Effects::empty();
        }
        self.fo.as_mut().expect("checked above").now = now;
        let mut effects = Effects::empty();
        let due = self.fo.as_ref().expect("checked above").next_heartbeat <= now;
        if due {
            {
                let fo = self.fo.as_mut().expect("checked above");
                fo.next_heartbeat = now + fo.config.heartbeat_interval.max(1);
            }
            if let Some(hb) = self.state.heartbeat_msg() {
                // All peers under all-pairs probing; this node's ring
                // successors under a scoped heartbeat fanout.
                for peer in self.state.heartbeat_targets() {
                    effects.outgoing.push((peer, hb.clone()));
                }
            }
            for suspect in self.state.check_suspicions(now) {
                let extra = self.declare_suspect(suspect);
                merge_effects(&mut effects, extra);
            }
        }
        // Requests whose per-attempt patience ran out: treat the silent
        // owner as crashed and migrate away from it.
        let expired: Vec<NodeId> = self
            .fo
            .as_ref()
            .expect("checked above")
            .inflight
            .iter()
            .filter(|e| e.deadline <= now)
            .map(|e| e.target)
            .collect();
        for target in expired {
            let extra = self.declare_suspect(target);
            merge_effects(&mut effects, extra);
        }
        self.drain_replications(&mut effects.outgoing);
        effects
    }
}

// ---------------------------------------------------------------------
// Atomic baseline
// ---------------------------------------------------------------------

#[derive(Clone, Debug)]
enum AtomicPending<V> {
    Read {
        loc: Location,
    },
    RemoteWrite {
        loc: Location,
        value: V,
        wid: WriteId,
    },
    LocalWrite {
        loc: Location,
        value: V,
        wid: WriteId,
    },
}

/// [`Actor`] over the atomic baseline's
/// [`AtomicState`](atomic_dsm::AtomicState).
#[derive(Clone, Debug)]
pub struct AtomicActor<V> {
    state: atomic_dsm::AtomicState<V>,
    pending: Option<AtomicPending<V>>,
}

impl<V: Value> AtomicActor<V> {
    /// Wraps a node's protocol state.
    #[must_use]
    pub fn new(state: atomic_dsm::AtomicState<V>) -> Self {
        AtomicActor {
            state,
            pending: None,
        }
    }

    /// The wrapped protocol state (inspection).
    #[must_use]
    pub fn state(&self) -> &atomic_dsm::AtomicState<V> {
        &self.state
    }
}

impl<V: Value> Actor<V> for AtomicActor<V> {
    type Msg = atomic_dsm::AMsg<V>;

    fn id(&self) -> NodeId {
        self.state.id()
    }

    fn submit(&mut self, op: &ClientOp<V>) -> Effects<V, Self::Msg> {
        assert!(self.pending.is_none(), "one outstanding op per node");
        match op {
            ClientOp::Read(loc) | ClientOp::ReadFresh(loc) => {
                if matches!(op, ClientOp::ReadFresh(_)) {
                    self.state.discard(*loc);
                }
                match self.state.begin_read(*loc) {
                    atomic_dsm::AReadStep::Hit { value, wid } => Effects::done(
                        Outcome::Read {
                            value: value.clone(),
                            wid,
                        },
                        Some(OpRecord::read(*loc, value, wid)),
                    ),
                    atomic_dsm::AReadStep::Miss { owner, request } => {
                        self.pending = Some(AtomicPending::Read { loc: *loc });
                        Effects::sent(vec![(owner, request)])
                    }
                }
            }
            ClientOp::Write(loc, value) | ClientOp::WriteNonblocking(loc, value) => {
                match self.state.begin_write(*loc, value.clone()) {
                    atomic_dsm::AWriteStep::Done { wid, outgoing } => Effects {
                        outgoing,
                        completion: Some(Completion {
                            outcome: Outcome::Wrote { wid, applied: true },
                            record: Some(OpRecord::write(*loc, value.clone(), wid)),
                        }),
                    },
                    atomic_dsm::AWriteStep::Blocked { wid, outgoing } => {
                        self.pending = Some(AtomicPending::LocalWrite {
                            loc: *loc,
                            value: value.clone(),
                            wid,
                        });
                        Effects::sent(outgoing)
                    }
                    atomic_dsm::AWriteStep::Remote {
                        wid,
                        owner,
                        request,
                    } => {
                        self.pending = Some(AtomicPending::RemoteWrite {
                            loc: *loc,
                            value: value.clone(),
                            wid,
                        });
                        Effects::sent(vec![(owner, request)])
                    }
                }
            }
            ClientOp::Discard(loc) => {
                self.state.discard(*loc);
                Effects::done(Outcome::Discarded, None)
            }
            ClientOp::WaitUntil(..) => unreachable!("scheduler decomposes waits"),
        }
    }

    fn deliver(&mut self, from: NodeId, msg: Self::Msg) -> Effects<V, Self::Msg> {
        match msg {
            atomic_dsm::AMsg::ReadReply { .. } => {
                let Some(AtomicPending::Read { loc }) = self.pending.take() else {
                    panic!("read reply with no outstanding read");
                };
                let (value, wid) = self.state.finish_read(loc, msg);
                Effects::done(
                    Outcome::Read {
                        value: value.clone(),
                        wid,
                    },
                    Some(OpRecord::read(loc, value, wid)),
                )
            }
            atomic_dsm::AMsg::WriteReply { .. } => {
                let Some(AtomicPending::RemoteWrite { loc, value, wid }) = self.pending.take()
                else {
                    panic!("write reply with no outstanding remote write");
                };
                let confirmed = self.state.finish_write(msg);
                debug_assert_eq!(confirmed, wid);
                Effects::done(
                    Outcome::Wrote { wid, applied: true },
                    Some(OpRecord::write(loc, value, wid)),
                )
            }
            other => {
                let transition = self.state.on_message(from, other);
                let completion = transition.local_write_done.map(|wid| {
                    let Some(AtomicPending::LocalWrite {
                        loc,
                        value,
                        wid: pw,
                    }) = self.pending.take()
                    else {
                        panic!("local write done with no blocked local write");
                    };
                    debug_assert_eq!(pw, wid);
                    Completion {
                        outcome: Outcome::Wrote { wid, applied: true },
                        record: Some(OpRecord::write(loc, value, wid)),
                    }
                });
                Effects {
                    outgoing: transition.outgoing,
                    completion,
                }
            }
        }
    }

    fn authority(&self, loc: Location) -> NodeId {
        use memcore::OwnerMap as _;
        self.state.config().owners().owner_of(loc)
    }

    fn peek(&self, loc: Location) -> Option<V> {
        self.state.peek(loc).map(|(v, _)| v.clone())
    }
}

// ---------------------------------------------------------------------
// Causal broadcast replica
// ---------------------------------------------------------------------

/// [`Actor`] over the broadcast replica's
/// [`BroadcastState`](broadcast_mem::BroadcastState). Never blocks.
#[derive(Debug)]
pub struct BroadcastActor<V> {
    state: broadcast_mem::BroadcastState<V>,
}

impl<V: Value> BroadcastActor<V> {
    /// Wraps a node's replica state.
    #[must_use]
    pub fn new(state: broadcast_mem::BroadcastState<V>) -> Self {
        BroadcastActor { state }
    }

    /// The wrapped replica state (inspection).
    #[must_use]
    pub fn state(&self) -> &broadcast_mem::BroadcastState<V> {
        &self.state
    }
}

impl<V: Value> Actor<V> for BroadcastActor<V> {
    type Msg = broadcast_mem::BMsg<V>;

    fn id(&self) -> NodeId {
        self.state.id()
    }

    fn submit(&mut self, op: &ClientOp<V>) -> Effects<V, Self::Msg> {
        match op {
            ClientOp::Read(loc) | ClientOp::ReadFresh(loc) => {
                let (value, wid) = self.state.read(*loc);
                Effects::done(
                    Outcome::Read {
                        value: value.clone(),
                        wid,
                    },
                    Some(OpRecord::read(*loc, value, wid)),
                )
            }
            ClientOp::Write(loc, value) | ClientOp::WriteNonblocking(loc, value) => {
                let (wid, outgoing) = self.state.write(*loc, value.clone());
                Effects {
                    outgoing,
                    completion: Some(Completion {
                        outcome: Outcome::Wrote { wid, applied: true },
                        record: Some(OpRecord::write(*loc, value.clone(), wid)),
                    }),
                }
            }
            ClientOp::Discard(_) => Effects::done(Outcome::Discarded, None),
            ClientOp::WaitUntil(..) => unreachable!("scheduler decomposes waits"),
        }
    }

    fn deliver(&mut self, from: NodeId, msg: Self::Msg) -> Effects<V, Self::Msg> {
        self.state.on_message(from, msg);
        Effects {
            outgoing: Vec::new(),
            completion: None,
        }
    }

    fn authority(&self, _loc: Location) -> NodeId {
        // Replication is push-based: a wait is satisfied when the value
        // reaches *this* replica.
        self.state.id()
    }

    fn peek(&self, loc: Location) -> Option<V> {
        Some(self.state.read(loc).0)
    }
}
