//! Protocol-level witnesses for the paper's separation figures.
//!
//! * [`figure3_broadcast_witness`] — drives the causal-*broadcast* memory
//!   under an adversarial (but causally legal) delivery schedule that
//!   reproduces Figure 3 exactly: proof that causal broadcasting admits an
//!   execution causal memory forbids.
//! * [`figure5_owner_witness`] — drives the causal *owner protocol* under
//!   a schedule that reproduces Figure 5 exactly: proof that the
//!   implementation admits a weakly consistent (non-SC) execution.
//!
//! Both return the recorded [`Execution`] so callers can run the
//! specification checkers over them.

use broadcast_mem::BroadcastState;
use causal_dsm::{CausalConfig, CausalState, ReadStep, WriteStep};
use causal_spec::Execution;
use memcore::{ExplicitOwners, Location, NodeId, OpRecord, Value, Word};

fn read_record<V: Value>(state: &BroadcastState<V>, loc: Location) -> OpRecord<V> {
    let (value, wid) = state.read(loc);
    OpRecord::read(loc, value, wid)
}

/// Reproduces Figure 3 on the causal-broadcast memory.
///
/// Schedule (x=0, y=1, z=2):
///
/// 1. `P1` writes `x=5` then `y=3`; `P2` writes `x=2` before receiving
///    anything.
/// 2. At `P2`, `P1`'s updates arrive after its own write: `x` ends at 5;
///    `P2` reads `y=3`, `x=5`, writes `z=4`.
/// 3. At `P3`, the concurrent writes of `x` are delivered in the *other*
///    order (`x=5` then `x=2` — legal, they are concurrent), then `y=3`
///    and `z=4`; `P3` reads `z=4` then `x=2`.
///
/// The returned execution is exactly Figure 3 and must be rejected by
/// [`causal_spec::check_causal`].
///
/// # Panics
///
/// Panics if the delivery schedule does not produce the figure's values —
/// which would indicate a bug in the broadcast memory.
#[must_use]
pub fn figure3_broadcast_witness() -> Execution<Word> {
    let p = |i: u32| NodeId::new(i);
    let (x, y, z) = (Location::new(0), Location::new(1), Location::new(2));
    let mut p1 = BroadcastState::<Word>::new(p(0), 3, 3);
    let mut p2 = BroadcastState::<Word>::new(p(1), 3, 3);
    let mut p3 = BroadcastState::<Word>::new(p(2), 3, 3);
    let mut ops: Vec<Vec<OpRecord<Word>>> = vec![Vec::new(); 3];

    let take = |outgoing: Vec<(NodeId, broadcast_mem::BMsg<Word>)>, dst: NodeId| {
        outgoing
            .into_iter()
            .find(|(d, _)| *d == dst)
            .map(|(_, m)| m)
            .expect("broadcast reaches every other node")
    };

    // P1: w(x)5 w(y)3.
    let (w_x5, out_x5) = p1.write(x, Word::Int(5));
    ops[0].push(OpRecord::write(x, Word::Int(5), w_x5));
    let (w_y3, out_y3) = p1.write(y, Word::Int(3));
    ops[0].push(OpRecord::write(y, Word::Int(3), w_y3));

    // P2: w(x)2 before receiving anything.
    let (w_x2, out_x2) = p2.write(x, Word::Int(2));
    ops[1].push(OpRecord::write(x, Word::Int(2), w_x2));

    // P1's updates reach P2 (in order): x ends at 5 there.
    let m = take(out_x5.clone(), p(1));
    p2.on_message(p(0), m);
    let m = take(out_y3.clone(), p(1));
    p2.on_message(p(0), m);

    // P2: r(y)3 r(x)5 w(z)4.
    ops[1].push(read_record(&p2, y));
    ops[1].push(read_record(&p2, x));
    assert_eq!(p2.read(x).0, Word::Int(5), "schedule must yield r2(x)5");
    let (w_z4, out_z4) = p2.write(z, Word::Int(4));
    ops[1].push(OpRecord::write(z, Word::Int(4), w_z4));

    // At P3: deliver x5 first, then the concurrent x2 (so x ends at 2),
    // then y3, then z4 (deliverable only now — causal order held).
    let m = take(out_x5, p(2));
    p3.on_message(p(0), m);
    let m = take(out_x2, p(2));
    p3.on_message(p(1), m);
    let m = take(out_y3, p(2));
    p3.on_message(p(0), m);
    let m = take(out_z4, p(2));
    assert_eq!(p3.on_message(p(1), m), 1, "z4 deliverable after its causes");

    // P3: r(z)4 r(x)2.
    ops[2].push(read_record(&p3, z));
    ops[2].push(read_record(&p3, x));
    assert_eq!(p3.read(z).0, Word::Int(4));
    assert_eq!(p3.read(x).0, Word::Int(2), "schedule must yield r3(x)2");

    Execution::from_processes(ops)
}

/// Reproduces Figure 5 on the causal **owner protocol** with
/// `P1 = owner(x)`, `P2 = owner(y)`, returning the recorded execution and
/// the number of protocol messages used.
///
/// Each process first caches the other's location (reading 0), then
/// writes its own location locally, then re-reads the cached 0 — the
/// weakly consistent outcome no sequentially consistent memory allows.
///
/// # Panics
///
/// Panics if the protocol does not produce the figure's values.
#[must_use]
pub fn figure5_owner_witness() -> (Execution<Word>, u64) {
    let p = |i: u32| NodeId::new(i);
    let (x, y) = (Location::new(0), Location::new(1));
    // Round-robin with 2 nodes: P0 owns x (loc 0), P1 owns y (loc 1).
    let config = CausalConfig::<Word>::builder(2, 2)
        .owners(ExplicitOwners::new(2, 1, vec![p(0), p(1)]))
        .build();
    let mut p0 = CausalState::new(p(0), config.clone());
    let mut p1 = CausalState::new(p(1), config);
    let mut ops: Vec<Vec<OpRecord<Word>>> = vec![Vec::new(); 2];
    let mut messages = 0u64;

    // P0: r(y)0 — miss, fetch from P1.
    let ReadStep::Miss { request, .. } = p0.begin_read(y) else {
        panic!("y is not owned by P0");
    };
    let reply = p1.serve(p(0), request).expect("serve read");
    messages += 2;
    let (v, wid) = p0.finish_read(y, reply);
    assert_eq!(*v, Word::Zero);
    ops[0].push(OpRecord::read(y, *v, wid));

    // P1: r(x)0 — miss, fetch from P0.
    let ReadStep::Miss { request, .. } = p1.begin_read(x) else {
        panic!("x is not owned by P1");
    };
    let reply = p0.serve(p(1), request).expect("serve read");
    messages += 2;
    let (v, wid) = p1.finish_read(x, reply);
    assert_eq!(*v, Word::Zero);
    ops[1].push(OpRecord::read(x, *v, wid));

    // P0: w(x)1 (local); P1: w(y)1 (local).
    let WriteStep::Done { wid } = p0.begin_write(x, Word::Int(1)) else {
        panic!("P0 owns x");
    };
    ops[0].push(OpRecord::write(x, Word::Int(1), wid));
    let WriteStep::Done { wid } = p1.begin_write(y, Word::Int(1)) else {
        panic!("P1 owns y");
    };
    ops[1].push(OpRecord::write(y, Word::Int(1), wid));

    // P0: r(y)0 from cache; P1: r(x)0 from cache.
    let ReadStep::Hit { value, wid } = p0.begin_read(y) else {
        panic!("y must be cached at P0");
    };
    assert_eq!(*value, Word::Zero, "weakly consistent read of y");
    ops[0].push(OpRecord::read(y, *value, wid));
    let ReadStep::Hit { value, wid } = p1.begin_read(x) else {
        panic!("x must be cached at P1");
    };
    assert_eq!(*value, Word::Zero, "weakly consistent read of x");
    ops[1].push(OpRecord::read(x, *value, wid));

    (Execution::from_processes(ops), messages)
}

/// Outcome of the §4.2 dictionary conflict scenario.
#[derive(Clone, Debug, PartialEq)]
pub struct DictionaryConflict {
    /// Whether the stale delete was applied at the owner.
    pub delete_applied: bool,
    /// The value left in the contested slot at the owner.
    pub final_value: Word,
}

/// Replays the paper's §4.2 conflict under a chosen write policy.
///
/// `P0` owns the slot. It inserts item 10; `P1` reads it (so the delete
/// satisfies R2); `P0` then deletes 10 and re-inserts item 20 in the same
/// slot; `P1`, which has seen none of that, issues its delete of 10 —
/// a write of `λ` *concurrent* with the owner's insert of 20.
///
/// Under [`WritePolicy::OwnerFavored`](causal_dsm::WritePolicy) the stale
/// delete is rejected and 20 survives ("the delete will be rejected and
/// the dictionary remains correct"); under
/// [`WritePolicy::LastArrival`](causal_dsm::WritePolicy) it erases the
/// re-inserted item — the failure mode the policy exists to prevent.
///
/// # Panics
///
/// Panics if the protocol misbehaves structurally (wrong owner, missing
/// replies).
#[must_use]
pub fn dictionary_conflict_witness(policy: causal_dsm::WritePolicy) -> DictionaryConflict {
    let p = |i: u32| NodeId::new(i);
    let slot = Location::new(0);
    let config = CausalConfig::<Word>::builder(2, 1)
        .owners(ExplicitOwners::new(2, 1, vec![p(0)]))
        .policy(policy)
        .build();
    let mut p0 = CausalState::new(p(0), config.clone());
    let mut p1 = CausalState::new(p(1), config);

    // P0 inserts item 10 (owner-local write).
    assert!(matches!(
        p0.begin_write(slot, Word::Int(10)),
        WriteStep::Done { .. }
    ));

    // P1 looks 10 up: remote read, caches the slot.
    let ReadStep::Miss { request, .. } = p1.begin_read(slot) else {
        panic!("P1 does not own the slot");
    };
    let reply = p0.serve(p(1), request).expect("serve read");
    let (seen, _) = p1.finish_read(slot, reply);
    assert_eq!(*seen, Word::Int(10));

    // P0 deletes 10 and re-inserts 20 — both local; P1 learns nothing.
    assert!(matches!(
        p0.begin_write(slot, Word::Zero),
        WriteStep::Done { .. }
    ));
    assert!(matches!(
        p0.begin_write(slot, Word::Int(20)),
        WriteStep::Done { .. }
    ));

    // P1's stale delete of 10: a remote write of λ, concurrent with the
    // owner's re-insert.
    let WriteStep::Remote { wid, request, .. } = p1.begin_write(slot, Word::Zero) else {
        panic!("P1 does not own the slot");
    };
    let reply = p0.serve(p(1), request).expect("serve write");
    let done = p1.finish_write(std::sync::Arc::new(Word::Zero), wid, reply);

    DictionaryConflict {
        delete_applied: done.is_applied(),
        final_value: *p0.peek(slot).expect("owner holds the slot").0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use causal_spec::{check_causal, check_sequential, ScVerdict};

    #[test]
    fn figure3_witness_is_rejected_by_the_causal_checker() {
        let exec = figure3_broadcast_witness();
        let report = check_causal(&exec).unwrap();
        assert!(!report.is_correct(), "broadcast memory ≠ causal memory");
        // The violation is exactly the paper's: P3's read of x returning 2.
        assert_eq!(report.violations.len(), 1);
        let v = &report.violations[0];
        assert_eq!(v.read.process, 2);
        assert_eq!(v.read.index, 1);
    }

    #[test]
    fn figure5_witness_is_causal_but_not_sc() {
        let (exec, messages) = figure5_owner_witness();
        assert!(check_causal(&exec).unwrap().is_correct());
        assert_eq!(check_sequential(&exec), ScVerdict::Inconsistent);
        // Only the two initial fetches crossed the network.
        assert_eq!(messages, 4);
    }

    #[test]
    fn owner_favored_policy_saves_the_dictionary() {
        let good = dictionary_conflict_witness(causal_dsm::WritePolicy::OwnerFavored);
        assert!(!good.delete_applied);
        assert_eq!(good.final_value, Word::Int(20));

        let bad = dictionary_conflict_witness(causal_dsm::WritePolicy::LastArrival);
        assert!(bad.delete_applied);
        assert_eq!(bad.final_value, Word::Zero, "re-inserted item erased");
    }
}
