//! Client programs: applications expressed as resumable operation
//! streams, driven by the simulator.
//!
//! A [`Client`] is asked for its next operation whenever its previous one
//! completes; in between it holds its own state (phase counters, partial
//! sums, …). This is how the paper's programs — the Figure-6 solver's
//! workers and coordinator, the dictionary's processes — run inside the
//! deterministic simulator.

use std::fmt;
use std::sync::Arc;

use memcore::{Location, Value, WriteId};

/// A predicate over a location's value, used by [`ClientOp::WaitUntil`].
pub type Pred<V> = Arc<dyn Fn(&V) -> bool + Send + Sync>;

/// One operation a client can ask the memory to perform.
#[derive(Clone)]
pub enum ClientOp<V> {
    /// `r(x)` — may hit the cache.
    Read(Location),
    /// `w(x)v`.
    Write(Location, V),
    /// Discard any cached copy, then read: forces owner communication.
    ReadFresh(Location),
    /// Drop the cached copy (the paper's `discard`).
    Discard(Location),
    /// A non-blocking write (the causal protocol's reduced-blocking
    /// enhancement); completes at issue, the owner's reply is absorbed in
    /// the background. Other protocols treat it as a normal write.
    WriteNonblocking(Location, V),
    /// Block until the location's value satisfies the predicate (the
    /// paper's `wait(B)`); how aggressively this re-reads is the
    /// simulator's `WaitMode`.
    WaitUntil(Location, Pred<V>),
}

impl<V> ClientOp<V> {
    /// Convenience constructor for [`ClientOp::WaitUntil`].
    pub fn wait_until(loc: Location, pred: impl Fn(&V) -> bool + Send + Sync + 'static) -> Self {
        ClientOp::WaitUntil(loc, Arc::new(pred))
    }

    /// The location this operation touches.
    pub fn loc(&self) -> Location {
        match self {
            ClientOp::Read(loc)
            | ClientOp::Write(loc, _)
            | ClientOp::ReadFresh(loc)
            | ClientOp::Discard(loc)
            | ClientOp::WriteNonblocking(loc, _)
            | ClientOp::WaitUntil(loc, _) => *loc,
        }
    }
}

impl<V: fmt::Debug> fmt::Debug for ClientOp<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientOp::Read(loc) => write!(f, "r({loc})"),
            ClientOp::Write(loc, v) => write!(f, "w({loc}){v:?}"),
            ClientOp::ReadFresh(loc) => write!(f, "r!({loc})"),
            ClientOp::Discard(loc) => write!(f, "discard({loc})"),
            ClientOp::WriteNonblocking(loc, v) => write!(f, "w_nb({loc}){v:?}"),
            ClientOp::WaitUntil(loc, _) => write!(f, "wait({loc})"),
        }
    }
}

/// What a completed operation produced.
#[derive(Clone, Debug, PartialEq)]
pub enum Outcome<V> {
    /// A read (or satisfied wait) returned this value.
    Read {
        /// The value read.
        value: V,
        /// The write it reads from.
        wid: WriteId,
    },
    /// A write completed.
    Wrote {
        /// The write's tag.
        wid: WriteId,
        /// `false` only when an owner-favored resolution rejected it.
        applied: bool,
    },
    /// A discard completed (no payload).
    Discarded,
}

impl<V: Clone> Outcome<V> {
    /// The value carried by a read outcome.
    ///
    /// # Panics
    ///
    /// Panics if this is not a read outcome.
    pub fn value(&self) -> V {
        match self {
            Outcome::Read { value, .. } => value.clone(),
            Outcome::Wrote { .. } => panic!("write outcome carries no value"),
            Outcome::Discarded => panic!("discard outcome carries no value"),
        }
    }
}

/// A resumable program run by one simulated node.
pub trait Client<V>: Send {
    /// The outcome of the previous operation (`None` on the first call) is
    /// offered; the client returns its next operation, or `None` when
    /// finished.
    fn next(&mut self, last: Option<&Outcome<V>>) -> Option<ClientOp<V>>;
}

/// A fixed script of operations (outcomes ignored).
///
/// # Examples
///
/// ```
/// use dsm_sim::{ClientOp, Script};
/// use memcore::{Location, Word};
///
/// let script = Script::new(vec![
///     ClientOp::Write(Location::new(0), Word::Int(1)),
///     ClientOp::Read(Location::new(1)),
/// ]);
/// # let _ = script;
/// ```
#[derive(Debug)]
pub struct Script<V> {
    ops: std::vec::IntoIter<ClientOp<V>>,
}

impl<V> Script<V> {
    /// Wraps a list of operations.
    #[must_use]
    pub fn new(ops: Vec<ClientOp<V>>) -> Self {
        Script {
            ops: ops.into_iter(),
        }
    }
}

impl<V: Value> Client<V> for Script<V> {
    fn next(&mut self, _last: Option<&Outcome<V>>) -> Option<ClientOp<V>> {
        self.ops.next()
    }
}

/// A client driven by a closure (full access to previous outcomes).
pub struct FnClient<V, F> {
    f: F,
    _marker: std::marker::PhantomData<fn() -> V>,
}

impl<V, F> FnClient<V, F>
where
    F: FnMut(Option<&Outcome<V>>) -> Option<ClientOp<V>> + Send,
{
    /// Wraps `f` as a client.
    pub fn new(f: F) -> Self {
        FnClient {
            f,
            _marker: std::marker::PhantomData,
        }
    }
}

impl<V: Value, F> Client<V> for FnClient<V, F>
where
    F: FnMut(Option<&Outcome<V>>) -> Option<ClientOp<V>> + Send,
{
    fn next(&mut self, last: Option<&Outcome<V>>) -> Option<ClientOp<V>> {
        (self.f)(last)
    }
}

impl<V, F> fmt::Debug for FnClient<V, F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FnClient")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memcore::Word;

    #[test]
    fn script_yields_ops_in_order_then_ends() {
        let mut script = Script::new(vec![
            ClientOp::Write(Location::new(0), Word::Int(1)),
            ClientOp::Read(Location::new(0)),
        ]);
        assert!(matches!(script.next(None), Some(ClientOp::Write(..))));
        assert!(matches!(script.next(None), Some(ClientOp::Read(_))));
        assert!(script.next(None).is_none());
    }

    #[test]
    fn fn_client_sees_outcomes() {
        let mut calls = 0;
        let mut client = FnClient::<Word, _>::new(move |last| {
            calls += 1;
            match calls {
                1 => {
                    assert!(last.is_none());
                    Some(ClientOp::Read(Location::new(0)))
                }
                2 => {
                    assert!(matches!(last, Some(Outcome::Read { .. })));
                    None
                }
                _ => unreachable!(),
            }
        });
        assert!(client.next(None).is_some());
        let outcome = Outcome::Read {
            value: Word::Zero,
            wid: WriteId::initial(Location::new(0)),
        };
        assert!(client.next(Some(&outcome)).is_none());
    }

    #[test]
    fn op_debug_and_loc() {
        let op: ClientOp<Word> = ClientOp::wait_until(Location::new(3), |v| *v == Word::Int(1));
        assert_eq!(op.loc(), Location::new(3));
        assert_eq!(format!("{op:?}"), "wait(x3)");
        let read: ClientOp<Word> = ClientOp::Read(Location::new(1));
        assert_eq!(format!("{read:?}"), "r(x1)");
    }

    #[test]
    fn outcome_value_accessor() {
        let outcome = Outcome::Read {
            value: Word::Int(4),
            wid: WriteId::initial(Location::new(0)),
        };
        assert_eq!(outcome.value(), Word::Int(4));
    }

    #[test]
    #[should_panic(expected = "carries no value")]
    fn write_outcome_has_no_value() {
        let outcome: Outcome<Word> = Outcome::Discarded;
        let _ = outcome.value();
    }
}
