//! The deterministic discrete-event scheduler.
//!
//! One event queue drives every node's protocol actor and client program:
//! client steps, message deliveries (with per-link FIFO preserved under
//! arbitrary latency models), and wait polling. All nondeterminism comes
//! from the seeded latency RNG, so every run is replayable — this is what
//! the property tests lean on.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::sync::Arc;

use memcore::{kinds, NetStats, NodeId, Recorder, Value};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use simnet::latency::{Constant, LatencyModel};
use simnet::{FaultHook, Tagged};

use crate::actor::{Actor, Completion};
use crate::client::{Client, ClientOp, Outcome, Pred};

/// How [`ClientOp::WaitUntil`] re-reads.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WaitMode {
    /// Re-read only once the authoritative copy satisfies the predicate:
    /// exactly one successful fetch per wait, the "ideal signaling" the
    /// paper's §4.1 message counts assume.
    IdealSignal,
    /// Honest polling: discard + re-read every `interval` time units until
    /// satisfied. Reproduces the real cost of spinning on a DSM.
    Poll {
        /// Time units between polls.
        interval: u64,
    },
}

/// Limits for one [`Sim::run`] call.
#[derive(Clone, Copy, Debug)]
pub struct RunLimits {
    /// Stop after this many events (guards against runaway programs).
    pub max_events: u64,
    /// Stop once simulated time passes this value.
    pub max_time: u64,
}

impl Default for RunLimits {
    fn default() -> Self {
        RunLimits {
            max_events: 10_000_000,
            max_time: u64::MAX,
        }
    }
}

/// The outcome of a simulation run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SimReport {
    /// Final simulated time (makespan).
    pub time: u64,
    /// Events processed.
    pub events: u64,
    /// `true` iff every client ran to completion.
    pub all_done: bool,
    /// Nodes left waiting or mid-operation when the run stopped.
    pub stuck_nodes: Vec<usize>,
}

enum EventKind<M> {
    Step {
        node: usize,
    },
    Deliver {
        src: NodeId,
        dst: NodeId,
        msg: M,
        /// An extra copy manufactured by the fault model.
        duplicate: bool,
    },
    PollWait {
        node: usize,
    },
    Timer {
        node: usize,
    },
    /// Fires the actor's restart hook once its crash window elapses,
    /// even if no other event targets the node.
    Restart {
        node: usize,
    },
}

struct Wait<V> {
    loc: memcore::Location,
    pred: Pred<V>,
    in_flight: bool,
}

/// Options for constructing a [`Sim`].
pub struct SimOpts<V> {
    /// Link latency model (default: constant 1).
    pub latency: Box<dyn LatencyModel + Send>,
    /// Seed for the latency RNG.
    pub seed: u64,
    /// Wait re-read policy.
    pub wait_mode: WaitMode,
    /// Operation recorder for specification checking.
    pub recorder: Option<Recorder<V>>,
    /// Fault model consulted on every send and delivery (default: none —
    /// the paper's reliable FIFO network).
    ///
    /// With a hook installed, the per-link FIFO clamp is disabled: a faulty
    /// link may drop, duplicate, *and reorder*, and re-deriving FIFO
    /// exactly-once delivery is the session layer's job (`dsm-faults`).
    pub faults: Option<Arc<dyn FaultHook>>,
}

impl<V> Default for SimOpts<V> {
    fn default() -> Self {
        SimOpts {
            latency: Box::new(Constant::new(1)),
            seed: 0,
            wait_mode: WaitMode::IdealSignal,
            recorder: None,
            faults: None,
        }
    }
}

/// A deterministic simulation of `n` protocol nodes and their client
/// programs.
///
/// # Examples
///
/// ```
/// use causal_dsm::{CausalConfig, CausalState};
/// use dsm_sim::{CausalActor, ClientOp, Script, Sim, SimOpts};
/// use memcore::{Location, NodeId, Word};
///
/// let config = CausalConfig::<Word>::builder(2, 2).build();
/// let actors = (0..2)
///     .map(|i| CausalActor::new(CausalState::new(NodeId::new(i), config.clone())))
///     .collect();
/// let mut sim = Sim::new(actors, SimOpts::default());
/// sim.set_client(0, Script::new(vec![ClientOp::Write(Location::new(1), Word::Int(5))]));
/// let report = sim.run_to_completion();
/// assert!(report.all_done);
/// // x1 is owned by P1: the write cost one WRITE + one W_REPLY.
/// assert_eq!(sim.messages().snapshot().total(), 2);
/// ```
pub struct Sim<V: Value, A: Actor<V>> {
    actors: Vec<A>,
    clients: Vec<Option<Box<dyn Client<V>>>>,
    last_outcome: Vec<Option<Outcome<V>>>,
    blocked: Vec<bool>,
    waits: Vec<Option<Wait<V>>>,
    queue: BinaryHeap<Reverse<(u64, u64, usize)>>,
    events_by_seq: HashMap<u64, EventKind<A::Msg>>,
    time: u64,
    seq: u64,
    latency: Box<dyn LatencyModel + Send>,
    link_last: HashMap<(u32, u32), u64>,
    rng: ChaCha8Rng,
    stats: NetStats,
    byte_stats: NetStats,
    envelope_stats: NetStats,
    metadata_stats: NetStats,
    recorder: Option<Recorder<V>>,
    wait_mode: WaitMode,
    events_processed: u64,
    faults: Option<Arc<dyn FaultHook>>,
    /// Earliest queued `Timer` event per node (dedup; stale events
    /// revalidate against the actor and no-op).
    timer_scheduled: Vec<Option<u64>>,
    /// Nodes observed down whose restart hook has not fired yet. Set on
    /// the first event that finds the node crashed; cleared when
    /// [`Actor::on_restart`] runs at the first post-crash event.
    down_seen: Vec<bool>,
}

impl<V: Value, A: Actor<V>> Sim<V, A> {
    /// Creates a simulation over `actors` (indexed by node id).
    ///
    /// # Panics
    ///
    /// Panics if `actors` is empty.
    #[must_use]
    pub fn new(actors: Vec<A>, opts: SimOpts<V>) -> Self {
        assert!(!actors.is_empty(), "at least one actor required");
        let n = actors.len();
        Sim {
            actors,
            clients: (0..n).map(|_| None).collect(),
            last_outcome: (0..n).map(|_| None).collect(),
            blocked: vec![false; n],
            waits: (0..n).map(|_| None).collect(),
            queue: BinaryHeap::new(),
            events_by_seq: HashMap::new(),
            time: 0,
            seq: 0,
            latency: opts.latency,
            link_last: HashMap::new(),
            rng: ChaCha8Rng::seed_from_u64(opts.seed),
            stats: NetStats::new(n),
            byte_stats: NetStats::new(n),
            envelope_stats: NetStats::new(n),
            metadata_stats: NetStats::new(n),
            recorder: opts.recorder,
            wait_mode: opts.wait_mode,
            events_processed: 0,
            faults: opts.faults,
            timer_scheduled: vec![None; n],
            down_seen: vec![false; n],
        }
    }

    /// Installs `client` as node `node`'s program.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn set_client(&mut self, node: usize, client: impl Client<V> + 'static) {
        self.set_client_boxed(node, Box::new(client));
    }

    /// Installs an already-boxed client — the form harnesses generic over
    /// workload hold them in.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn set_client_boxed(&mut self, node: usize, client: Box<dyn Client<V>>) {
        assert!(node < self.actors.len(), "node out of range");
        self.clients[node] = Some(client);
    }

    /// Per-(node, kind) protocol message counters.
    #[must_use]
    pub fn messages(&self) -> &NetStats {
        &self.stats
    }

    /// Per-(node, kind) approximate wire-byte counters (populated for
    /// payloads reporting a wire size).
    #[must_use]
    pub fn bytes(&self) -> &NetStats {
        &self.byte_stats
    }

    /// Per-(node, kind) **physical envelope** counters, one per send
    /// attempt. Without transport batching this mirrors
    /// [`Sim::messages`]; with batching, a coalesced run counts once here
    /// (kind `BATCH`) while its parts still count individually in the
    /// logical counters — `messages - envelopes` is the coalescing win.
    #[must_use]
    pub fn envelopes(&self) -> &NetStats {
        &self.envelope_stats
    }

    /// Per-(node, kind) **causal-metadata** byte counters: the exact wire
    /// bytes spent on vector timestamps, honoring each stamp's
    /// dense/sparse encoding (populated for payloads reporting a metadata
    /// size). Dividing by the operation count gives the scale benches'
    /// `metadata_bytes_per_op`.
    #[must_use]
    pub fn metadata(&self) -> &NetStats {
        &self.metadata_stats
    }

    /// The actor for node `i` (inspection).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn actor(&self, i: usize) -> &A {
        &self.actors[i]
    }

    /// Current simulated time.
    #[must_use]
    pub fn now(&self) -> u64 {
        self.time
    }

    /// Runs with default limits until all clients finish or the queue
    /// drains.
    pub fn run_to_completion(&mut self) -> SimReport {
        self.run(RunLimits::default())
    }

    /// Runs the event loop.
    pub fn run(&mut self, limits: RunLimits) -> SimReport {
        // Kick off every installed client.
        for node in 0..self.actors.len() {
            if self.clients[node].is_some() {
                self.schedule_now(EventKind::Step { node });
            }
        }
        self.sync_timers();

        while let Some(Reverse((t, seq, _))) = self.queue.pop() {
            if self.events_processed >= limits.max_events || t > limits.max_time {
                break;
            }
            self.time = t;
            self.events_processed += 1;
            let kind = self
                .events_by_seq
                .remove(&seq)
                .expect("scheduled event has a body");
            match kind {
                EventKind::Step { node } => match self.node_down_until(node) {
                    // A down node's own activity is deferred to its restart.
                    Some(up) => {
                        self.note_down(node, up);
                        self.schedule(up.max(t + 1), EventKind::Step { node });
                    }
                    None => {
                        self.maybe_restart(node);
                        self.step_client(node);
                    }
                },
                EventKind::Deliver {
                    src,
                    dst,
                    msg,
                    duplicate,
                } => {
                    if let Some(up) = self.node_down_until(dst.index()) {
                        // A dead destination loses the message entirely.
                        self.note_down(dst.index(), up);
                        self.stats.record(src, kinds::DROP);
                    } else {
                        self.maybe_restart(dst.index());
                        if duplicate {
                            self.stats.record(src, kinds::DUP);
                        }
                        self.deliver(src, dst, msg);
                    }
                }
                EventKind::PollWait { node } => match self.node_down_until(node) {
                    Some(up) => {
                        self.note_down(node, up);
                        self.schedule(up.max(t + 1), EventKind::PollWait { node });
                    }
                    None => {
                        self.maybe_restart(node);
                        self.attempt_wait(node);
                    }
                },
                EventKind::Timer { node } => {
                    self.timer_scheduled[node] = None;
                    match self.node_down_until(node) {
                        Some(up) => {
                            self.note_down(node, up);
                            self.timer_scheduled[node] = Some(up.max(t + 1));
                            self.schedule(up.max(t + 1), EventKind::Timer { node });
                        }
                        None => {
                            self.maybe_restart(node);
                            // Revalidate: the actor may have cancelled or
                            // moved its deadline since this was queued.
                            if self.actors[node].next_timer().is_some_and(|want| want <= t) {
                                let effects = self.actors[node].on_timer(t);
                                self.dispatch_deliver(node, effects.outgoing, effects.completion);
                            }
                        }
                    }
                }
                EventKind::Restart { node } => match self.node_down_until(node) {
                    // The crash window grew since this was queued.
                    Some(up) => self.schedule(up.max(t + 1), EventKind::Restart { node }),
                    None => self.maybe_restart(node),
                },
            }
            self.sync_timers();
            // Ideal-signal waits wake on any state change.
            if self.wait_mode == WaitMode::IdealSignal {
                self.scan_waits();
            }
        }

        let stuck_nodes: Vec<usize> = (0..self.actors.len())
            .filter(|&i| self.blocked[i] || self.waits[i].is_some())
            .collect();
        let all_done = stuck_nodes.is_empty() && self.clients.iter().all(Option::is_none);
        SimReport {
            time: self.time,
            events: self.events_processed,
            all_done,
            stuck_nodes,
        }
    }

    // ------------------------------------------------------------------

    fn schedule(&mut self, t: u64, kind: EventKind<A::Msg>) {
        let seq = self.seq;
        self.seq += 1;
        self.events_by_seq.insert(seq, kind);
        self.queue.push(Reverse((t, seq, 0)));
    }

    fn schedule_now(&mut self, kind: EventKind<A::Msg>) {
        let t = self.time;
        self.schedule(t, kind);
    }

    /// If node `i` is down right now, when it restarts.
    fn node_down_until(&self, i: usize) -> Option<u64> {
        self.faults
            .as_ref()
            .and_then(|h| h.down_until(NodeId::new(i as u32), self.time))
    }

    /// Records that node `node` was observed down and queues a `Restart`
    /// event at its scheduled up-time, so the restart hook fires even if
    /// no other event ever targets the node again.
    fn note_down(&mut self, node: usize, up: u64) {
        if !self.down_seen[node] {
            self.down_seen[node] = true;
            self.schedule(up.max(self.time + 1), EventKind::Restart { node });
        }
    }

    /// Runs the actor's restart hook if this is the first event to find
    /// the node up after an observed crash window.
    fn maybe_restart(&mut self, node: usize) {
        if !std::mem::take(&mut self.down_seen[node]) {
            return;
        }
        let now = self.time;
        let effects = self.actors[node].on_restart(now);
        self.dispatch_deliver(node, effects.outgoing, effects.completion);
    }

    /// Re-reads every actor's timer demand and queues `Timer` events so
    /// the earliest demand is always covered. Stale queued events (the
    /// actor cancelled or moved its deadline) revalidate and no-op.
    fn sync_timers(&mut self) {
        for node in 0..self.actors.len() {
            let Some(want) = self.actors[node].next_timer() else {
                continue;
            };
            // A crashed node's timer cannot fire before it restarts;
            // scheduling earlier would duel with the deferred event.
            let mut at = want.max(self.time);
            if let Some(up) = self.node_down_until(node) {
                at = at.max(up);
            }
            match self.timer_scheduled[node] {
                Some(queued) if queued <= at => {}
                _ => {
                    self.timer_scheduled[node] = Some(at);
                    self.schedule(at, EventKind::Timer { node });
                }
            }
        }
    }

    fn send(&mut self, src: NodeId, dst: NodeId, msg: A::Msg) {
        // Logical counters see a batch's parts (so ablations stay
        // batching-invariant); the envelope counter sees one send.
        match msg.batch_parts() {
            Some(parts) => {
                for (kind, size) in parts {
                    self.stats.record(src, kind);
                    if let Some(size) = size {
                        self.byte_stats.record_n(src, kind, size as u64);
                    }
                }
                self.envelope_stats.record(src, kinds::BATCH);
            }
            None => {
                self.stats.record(src, msg.kind());
                if let Some(size) = msg.wire_size() {
                    self.byte_stats.record_n(src, msg.kind(), size as u64);
                }
                self.envelope_stats.record(src, msg.kind());
            }
        }
        let metadata = msg.metadata_size();
        if metadata > 0 {
            self.metadata_stats.record_n(src, msg.kind(), metadata as u64);
        }
        let delay = self.latency.sample(&mut self.rng, src, dst).max(1);
        let Some(hook) = self.faults.clone() else {
            // Reliable FIFO path: clamp to the link's last delivery time.
            let key = (src.index() as u32, dst.index() as u32);
            let at = (self.time + delay).max(self.link_last.get(&key).copied().unwrap_or(0));
            self.link_last.insert(key, at);
            self.schedule(
                at,
                EventKind::Deliver {
                    src,
                    dst,
                    msg,
                    duplicate: false,
                },
            );
            return;
        };
        let fate = hook.on_send(src, dst, msg.kind(), self.time);
        if fate.is_drop() {
            self.stats.record(src, kinds::DROP);
            return;
        }
        // No FIFO clamp under faults: the lossy link may reorder freely;
        // the session layer re-derives per-link FIFO exactly-once delivery.
        for (i, extra) in fate.copies.into_iter().enumerate() {
            let at = self.time + delay + extra;
            self.schedule(
                at,
                EventKind::Deliver {
                    src,
                    dst,
                    msg: msg.clone(),
                    duplicate: i > 0,
                },
            );
        }
    }

    fn step_client(&mut self, node: usize) {
        if self.blocked[node] || self.waits[node].is_some() {
            return; // an outstanding operation will reschedule us
        }
        let Some(client) = self.clients[node].as_mut() else {
            return;
        };
        let last = self.last_outcome[node].take();
        match client.next(last.as_ref()) {
            None => {
                self.clients[node] = None;
            }
            Some(ClientOp::WaitUntil(loc, pred)) => {
                self.waits[node] = Some(Wait {
                    loc,
                    pred,
                    in_flight: false,
                });
                match self.wait_mode {
                    WaitMode::IdealSignal => {
                        if self.oracle_satisfied(node) {
                            self.attempt_wait(node);
                        }
                    }
                    WaitMode::Poll { .. } => self.attempt_wait(node),
                }
            }
            Some(op) => {
                let now = self.time;
                let effects = self.actors[node].submit_at(now, &op);
                self.dispatch_submit(node, effects.outgoing, effects.completion);
            }
        }
    }

    /// Effects of an application submit: no completion means the node's
    /// operation is in flight.
    fn dispatch_submit(
        &mut self,
        node: usize,
        outgoing: Vec<(NodeId, A::Msg)>,
        completion: Option<Completion<V>>,
    ) {
        let me = self.actors[node].id();
        for (dst, msg) in outgoing {
            self.send(me, dst, msg);
        }
        match completion {
            Some(c) => self.complete(node, c),
            None => self.blocked[node] = true,
        }
    }

    /// Effects of a message delivery: a node serving others stays
    /// unblocked; only an explicit completion touches its own operation.
    fn dispatch_deliver(
        &mut self,
        node: usize,
        outgoing: Vec<(NodeId, A::Msg)>,
        completion: Option<Completion<V>>,
    ) {
        let me = self.actors[node].id();
        for (dst, msg) in outgoing {
            self.send(me, dst, msg);
        }
        if let Some(c) = completion {
            self.complete(node, c);
        }
    }

    fn complete(&mut self, node: usize, completion: Completion<V>) {
        self.blocked[node] = false;
        if let (Some(rec), Some(record)) = (&self.recorder, completion.record) {
            rec.record(self.actors[node].id(), record);
        }
        if let Some(wait) = self.waits[node].as_mut() {
            wait.in_flight = false;
            let satisfied = match &completion.outcome {
                Outcome::Read { value, .. } => (wait.pred)(value),
                _ => false,
            };
            if satisfied {
                self.waits[node] = None;
                self.last_outcome[node] = Some(completion.outcome);
                self.schedule_now(EventKind::Step { node });
            } else if let WaitMode::Poll { interval } = self.wait_mode {
                let at = self.time + interval;
                self.schedule(at, EventKind::PollWait { node });
            }
            // IdealSignal: stay parked; the post-event scan retries.
            return;
        }
        self.last_outcome[node] = Some(completion.outcome);
        self.schedule_now(EventKind::Step { node });
    }

    fn deliver(&mut self, src: NodeId, dst: NodeId, msg: A::Msg) {
        let node = dst.index();
        let now = self.time;
        let effects = self.actors[node].deliver_at(now, src, msg);
        self.dispatch_deliver(node, effects.outgoing, effects.completion);
    }

    /// Does the authoritative copy of the waited location satisfy the
    /// predicate right now?
    fn oracle_satisfied(&self, node: usize) -> bool {
        let Some(wait) = &self.waits[node] else {
            return false;
        };
        let authority = self.actors[node].authority(wait.loc);
        self.actors[authority.index()]
            .peek(wait.loc)
            .is_some_and(|v| (wait.pred)(&v))
    }

    /// Issue the discard + read of an active wait.
    fn attempt_wait(&mut self, node: usize) {
        let Some(wait) = self.waits[node].as_mut() else {
            return;
        };
        if wait.in_flight || self.blocked[node] {
            return;
        }
        wait.in_flight = true;
        let loc = wait.loc;
        let now = self.time;
        // The discard's side traffic (an `[INTEREST]` drop under interest
        // scoping) still goes on the wire; its completion is the wait's
        // own bookkeeping, not a client step.
        let discard = self.actors[node].submit_at(now, &ClientOp::Discard(loc));
        let me = self.actors[node].id();
        for (dst, msg) in discard.outgoing {
            self.send(me, dst, msg);
        }
        let effects = self.actors[node].submit_at(now, &ClientOp::Read(loc));
        self.dispatch_submit(node, effects.outgoing, effects.completion);
    }

    fn scan_waits(&mut self) {
        for node in 0..self.actors.len() {
            if self.waits[node].as_ref().is_some_and(|w| !w.in_flight)
                && !self.blocked[node]
                && self.oracle_satisfied(node)
            {
                self.attempt_wait(node);
            }
        }
    }
}

impl<V: Value, A: Actor<V>> std::fmt::Debug for Sim<V, A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sim")
            .field("nodes", &self.actors.len())
            .field("time", &self.time)
            .field("events", &self.events_processed)
            .finish()
    }
}
