//! Deterministic discrete-event simulation of the DSM protocols.
//!
//! The threaded engines are good for throughput; this simulator is good
//! for *science*: it drives the **same** pure protocol state machines
//! ([`causal_dsm::CausalState`], [`atomic_dsm::AtomicState`],
//! [`broadcast_mem::BroadcastState`]) under a seeded scheduler with
//! configurable link latencies, preserving per-link FIFO, counting every
//! message, and recording every operation for the `causal-spec` checker.
//!
//! Three pieces:
//!
//! * [`Client`] — application programs as resumable operation streams
//!   (the Figure-6 solver's workers, the dictionary's processes, random
//!   workloads);
//! * [`Actor`] — uniform adapters over the three protocol state machines;
//! * [`Sim`] — the event loop: client steps, deliveries, wait handling.
//!
//! [`WaitMode`] matters for reproducing the paper's numbers: the §4.1
//! analysis assumes each handshake flag is fetched exactly once per phase
//! ([`WaitMode::IdealSignal`]); [`WaitMode::Poll`] instead measures what
//! honest spinning costs.
//!
//! # Examples
//!
//! Count the messages of one remote read under 10-unit link latency:
//!
//! ```
//! use causal_dsm::CausalConfig;
//! use dsm_sim::{causal_sim, ClientOp, Script, SimOpts};
//! use memcore::{Location, Word};
//! use simnet::latency::Constant;
//!
//! let config = CausalConfig::<Word>::builder(2, 2).build();
//! let mut sim = causal_sim(&config, SimOpts {
//!     latency: Box::new(Constant::new(10)),
//!     ..SimOpts::default()
//! });
//! // P1 reads x0, owned by P0: one READ + one R_REPLY, 20 time units.
//! sim.set_client(1, Script::new(vec![ClientOp::Read(Location::new(0))]));
//! let report = sim.run_to_completion();
//! assert!(report.all_done);
//! assert_eq!(sim.messages().snapshot().total(), 2);
//! assert_eq!(report.time, 20);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod actor;
mod client;
mod explore;
mod run;
mod sched;
pub mod witness;

pub use actor::{Actor, AtomicActor, BroadcastActor, CausalActor, Completion, Effects};
pub use client::{Client, ClientOp, FnClient, Outcome, Pred, Script};
pub use explore::{explore_atomic, explore_causal, ExploreReport};
pub use run::{atomic_sim, broadcast_sim, causal_sim};
pub use sched::{RunLimits, Sim, SimOpts, SimReport, WaitMode};
