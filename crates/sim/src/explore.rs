//! Exhaustive schedule exploration — a small-model checker for the causal
//! owner protocol.
//!
//! Where the [`Sim`](crate::Sim) scheduler samples one schedule per seed,
//! the explorer enumerates **every** interleaving of client steps and
//! message deliveries (respecting per-link FIFO) for small scripted
//! programs, records the execution each schedule produces, and checks it
//! against Definition 2. A passing [`explore_causal`] run is a proof, not
//! a sample, that the protocol is causally correct for that program shape
//! — the strongest form of the E4 experiment.

use std::collections::{BTreeMap, VecDeque};

use atomic_dsm::{AtomicConfig, AtomicState};
use causal_dsm::{CausalConfig, CausalState};
use causal_spec::{check_causal, Execution};
use memcore::{NodeId, OpRecord, Value};

use crate::actor::{Actor, AtomicActor, CausalActor, Completion};
use crate::client::ClientOp;

/// The result of exploring every schedule of one program.
#[derive(Clone, Debug)]
pub struct ExploreReport<V> {
    /// Distinct complete schedules executed.
    pub schedules: u64,
    /// Total states expanded (an explored prefix counts once).
    pub states: u64,
    /// `true` iff the state space was fully enumerated within the budget.
    pub complete: bool,
    /// The first causally incorrect execution found, if any, with the
    /// checker's description.
    pub violation: Option<(Execution<V>, String)>,
}

impl<V> ExploreReport<V> {
    /// `true` iff every explored schedule satisfied Definition 2.
    #[must_use]
    pub fn all_correct(&self) -> bool {
        self.violation.is_none()
    }
}

#[derive(Clone)]
struct ExploreState<V: Value, A: Actor<V>> {
    actors: Vec<A>,
    _marker: std::marker::PhantomData<fn() -> V>,
    /// In-flight messages per directed link, FIFO.
    links: BTreeMap<(u32, u32), VecDeque<A::Msg>>,
    /// Per-node script cursor.
    cursors: Vec<usize>,
    /// Nodes blocked on a reply.
    blocked: Vec<bool>,
    /// Recorded operations per node.
    records: Vec<Vec<OpRecord<V>>>,
}

#[derive(Clone, Copy, Debug)]
enum Choice {
    Step(usize),
    Deliver(u32, u32),
}

/// Exhaustively explores every schedule of `scripts` on the causal owner
/// protocol under `config`, checking each complete schedule's recorded
/// execution against Definition 2.
///
/// Scripts may contain `Read`, `ReadFresh`, `Write`, `WriteNonblocking`
/// and `Discard`; `WaitUntil` is not supported (its re-read policy is a
/// scheduler concern, not a protocol one).
///
/// `max_states` bounds the search; the report says whether enumeration
/// completed. State-space size grows roughly factorially in total
/// operations — keep programs to a handful of ops per process.
///
/// # Panics
///
/// Panics if a script contains `WaitUntil`, or scripts/nodes mismatch.
#[must_use]
pub fn explore_causal<V: Value + PartialEq>(
    config: &CausalConfig<V>,
    scripts: &[Vec<ClientOp<V>>],
    max_states: u64,
) -> ExploreReport<V> {
    let n = config.nodes() as usize;
    let actors = (0..n)
        .map(|i| CausalActor::new(CausalState::new(NodeId::new(i as u32), config.clone())))
        .collect();
    explore(actors, scripts, max_states)
}

/// [`explore_causal`], but over the atomic baseline: every schedule of an
/// atomic-DSM program must also satisfy Definition 2 (atomic memory *is*
/// causal memory).
///
/// # Panics
///
/// Panics if a script contains `WaitUntil`, or scripts/nodes mismatch.
#[must_use]
pub fn explore_atomic<V: Value + PartialEq>(
    config: &AtomicConfig<V>,
    scripts: &[Vec<ClientOp<V>>],
    max_states: u64,
) -> ExploreReport<V> {
    let n = config.nodes() as usize;
    let actors = (0..n)
        .map(|i| AtomicActor::new(AtomicState::new(NodeId::new(i as u32), config.clone())))
        .collect();
    explore(actors, scripts, max_states)
}

fn explore<V: Value + PartialEq, A: Actor<V> + Clone>(
    actors: Vec<A>,
    scripts: &[Vec<ClientOp<V>>],
    max_states: u64,
) -> ExploreReport<V> {
    assert_eq!(scripts.len(), actors.len(), "one script per node");
    for op in scripts.iter().flatten() {
        assert!(
            !matches!(op, ClientOp::WaitUntil(..)),
            "WaitUntil is not supported by the explorer"
        );
    }

    let n = actors.len();
    let initial = ExploreState {
        actors,
        _marker: std::marker::PhantomData,
        links: BTreeMap::new(),
        cursors: vec![0; n],
        blocked: vec![false; n],
        records: vec![Vec::new(); n],
    };

    let mut report = ExploreReport {
        schedules: 0,
        states: 0,
        complete: true,
        violation: None,
    };
    let mut stack = vec![initial];
    while let Some(state) = stack.pop() {
        if report.violation.is_some() {
            break;
        }
        report.states += 1;
        if report.states > max_states {
            report.complete = false;
            break;
        }

        let choices = enumerate_choices(&state, scripts);
        if choices.is_empty() {
            // Terminal: all scripts finished (or stuck, which cannot
            // happen on a reliable network), all links drained.
            report.schedules += 1;
            let exec = Execution::from_processes(state.records.clone());
            match check_causal(&exec) {
                Ok(verdict) if verdict.is_correct() => {}
                Ok(verdict) => {
                    report.violation = Some((exec, verdict.to_string()));
                }
                Err(err) => {
                    report.violation = Some((exec, err.to_string()));
                }
            }
            continue;
        }

        for choice in choices {
            let mut next = state.clone();
            apply(&mut next, scripts, choice);
            stack.push(next);
        }
    }
    report
}

fn enumerate_choices<V: Value, A: Actor<V>>(
    state: &ExploreState<V, A>,
    scripts: &[Vec<ClientOp<V>>],
) -> Vec<Choice> {
    let mut choices = Vec::new();
    for (node, script) in scripts.iter().enumerate() {
        if !state.blocked[node] && state.cursors[node] < script.len() {
            choices.push(Choice::Step(node));
        }
    }
    for (&(src, dst), queue) in &state.links {
        if !queue.is_empty() {
            choices.push(Choice::Deliver(src, dst));
        }
    }
    choices
}

fn apply<V: Value, A: Actor<V>>(
    state: &mut ExploreState<V, A>,
    scripts: &[Vec<ClientOp<V>>],
    choice: Choice,
) {
    match choice {
        Choice::Step(node) => {
            let op = &scripts[node][state.cursors[node]];
            state.cursors[node] += 1;
            let effects = state.actors[node].submit(op);
            let src = node as u32;
            for (dst, msg) in effects.outgoing {
                state
                    .links
                    .entry((src, dst.index() as u32))
                    .or_default()
                    .push_back(msg);
            }
            match effects.completion {
                Some(completion) => record(state, node, completion),
                None => state.blocked[node] = true,
            }
        }
        Choice::Deliver(src, dst) => {
            let msg = state
                .links
                .get_mut(&(src, dst))
                .and_then(VecDeque::pop_front)
                .expect("chosen link has a message");
            let node = dst as usize;
            let effects = state.actors[node].deliver(NodeId::new(src), msg);
            for (out_dst, out_msg) in effects.outgoing {
                state
                    .links
                    .entry((dst, out_dst.index() as u32))
                    .or_default()
                    .push_back(out_msg);
            }
            if let Some(completion) = effects.completion {
                state.blocked[node] = false;
                record(state, node, completion);
            }
        }
    }
}

fn record<V: Value, A: Actor<V>>(
    state: &mut ExploreState<V, A>,
    node: usize,
    completion: Completion<V>,
) {
    if let Some(op_record) = completion.record {
        state.records[node].push(op_record);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memcore::{Location, Word};

    fn loc(i: u32) -> Location {
        Location::new(i)
    }

    #[test]
    fn all_schedules_of_a_figure3_core_are_causal() {
        // The causal core of Figure 3 on the owner protocol, every
        // schedule: P0 writes x; P1 observes x and writes z; P2 reads z
        // then x. The broadcast anomaly (seeing z's value but then an x
        // older than what its writer saw) must be impossible in *every*
        // interleaving.
        let config = CausalConfig::<Word>::builder(3, 3).build();
        let scripts = vec![
            vec![ClientOp::Write(loc(0), Word::Int(5))],
            vec![
                ClientOp::ReadFresh(loc(0)),
                ClientOp::Write(loc(2), Word::Int(4)),
            ],
            vec![ClientOp::ReadFresh(loc(2)), ClientOp::ReadFresh(loc(0))],
        ];
        let report = explore_causal(&config, &scripts, 2_000_000);
        assert!(report.complete, "state space not enumerated: {report:?}");
        assert!(report.schedules > 100, "explorer barely explored");
        assert!(
            report.all_correct(),
            "violation found: {:?}",
            report.violation.map(|(_, v)| v)
        );
    }

    #[test]
    fn all_schedules_of_concurrent_writers_are_causal() {
        // Two processes write the same foreign location concurrently while
        // a third reads it twice — every resolution order must stay
        // causal (no flip-flop regressions reach any reader).
        let config = CausalConfig::<Word>::builder(3, 3).build();
        let scripts = vec![
            vec![ClientOp::Write(loc(2), Word::Int(1))],
            vec![ClientOp::Write(loc(2), Word::Int(2))],
            vec![ClientOp::ReadFresh(loc(2)), ClientOp::ReadFresh(loc(2))],
        ];
        let report = explore_causal(&config, &scripts, 2_000_000);
        assert!(report.complete, "{report:?}");
        assert!(
            report.all_correct(),
            "violation found: {:?}",
            report.violation.map(|(_, v)| v)
        );
    }

    #[test]
    fn all_schedules_with_nonblocking_writes_are_causal() {
        // The shape that motivated the stale-write rule, exhaustively.
        let config = CausalConfig::<Word>::builder(3, 3).build();
        let scripts = vec![
            vec![ClientOp::ReadFresh(loc(0))],
            vec![
                ClientOp::ReadFresh(loc(2)),
                ClientOp::Write(loc(0), Word::Int(1)),
            ],
            vec![
                ClientOp::WriteNonblocking(loc(0), Word::Int(2)),
                ClientOp::Write(loc(2), Word::Int(7)),
            ],
        ];
        let report = explore_causal(&config, &scripts, 5_000_000);
        assert!(report.complete);
        assert!(
            report.all_correct(),
            "violation found: {:?}",
            report.violation.map(|(_, v)| v)
        );
    }

    #[test]
    fn all_atomic_schedules_are_causal_too() {
        // Atomic memory ⊂ causal memory, schedule by schedule, with the
        // full invalidate-before-write machinery in play.
        use atomic_dsm::InvalMode;
        let config = atomic_dsm::AtomicConfig::<Word>::builder(3, 3)
            .inval_mode(InvalMode::Acknowledged)
            .build();
        let scripts = vec![
            vec![ClientOp::Write(loc(2), Word::Int(1))],
            vec![
                ClientOp::ReadFresh(loc(2)),
                ClientOp::Write(loc(2), Word::Int(2)),
            ],
            vec![ClientOp::ReadFresh(loc(2)), ClientOp::ReadFresh(loc(2))],
        ];
        let report = explore_atomic(&config, &scripts, 2_000_000);
        assert!(report.complete, "{report:?}");
        assert!(
            report.all_correct(),
            "violation found: {:?}",
            report.violation.map(|(_, v)| v)
        );
    }

    #[test]
    fn all_schedules_of_the_late_reply_race_are_causal() {
        // The shape of the in-flight-reply race the threaded stress suite
        // caught (see CausalState::finish_read's overtaken guard): P1
        // fetches x2 while P2 overwrites it and the newer value's causal
        // footprint reaches P1 through P0's write to P1's own x1. Every
        // interleaving — including the reply arriving after the foreign
        // knowledge — must satisfy Definition 2.
        let config = CausalConfig::<Word>::builder(3, 3).build();
        let scripts = vec![
            vec![
                ClientOp::ReadFresh(loc(2)),
                ClientOp::Write(loc(1), Word::Int(7)),
            ],
            vec![
                ClientOp::Read(loc(2)),
                ClientOp::Read(loc(1)),
                ClientOp::Read(loc(2)),
            ],
            vec![
                ClientOp::Write(loc(2), Word::Int(100)),
                ClientOp::Write(loc(2), Word::Int(200)),
            ],
        ];
        let report = explore_causal(&config, &scripts, 10_000_000);
        assert!(report.complete, "{report:?}");
        assert!(
            report.all_correct(),
            "violation found: {:?}",
            report.violation.map(|(_, v)| v)
        );
    }

    #[test]
    fn explorer_respects_state_budget() {
        let config = CausalConfig::<Word>::builder(2, 2).build();
        let scripts = vec![
            (0..6)
                .map(|k| ClientOp::Write(loc(1), Word::Int(k)))
                .collect(),
            (10..16)
                .map(|k| ClientOp::Write(loc(0), Word::Int(k)))
                .collect(),
        ];
        let report = explore_causal(&config, &scripts, 50);
        assert!(!report.complete);
        assert!(report.states <= 51);
    }

    #[test]
    #[should_panic(expected = "WaitUntil is not supported")]
    fn waits_are_rejected() {
        let config = CausalConfig::<Word>::builder(1, 1).build();
        let scripts = vec![vec![ClientOp::wait_until(loc(0), |_: &Word| true)]];
        let _ = explore_causal(&config, &scripts, 10);
    }
}
