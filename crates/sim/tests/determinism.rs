//! The simulator's contract: deterministic per seed, FIFO per link,
//! faithful wait semantics.

use causal_dsm::CausalConfig;
use dsm_sim::{causal_sim, Actor, ClientOp, RunLimits, Script, SimOpts, WaitMode};
use memcore::{Location, StatsSnapshot, Word};
use simnet::latency::Uniform;

fn loc(i: u32) -> Location {
    Location::new(i)
}

fn workload_sim(seed: u64) -> (StatsSnapshot, Vec<Option<Word>>, u64) {
    let config = CausalConfig::<Word>::builder(3, 6).build();
    let mut sim = causal_sim(
        &config,
        SimOpts {
            latency: Box::new(Uniform::new(1, 9)),
            seed,
            ..SimOpts::default()
        },
    );
    for node in 0..3u32 {
        let ops: Vec<ClientOp<Word>> = (0..20)
            .flat_map(|k| {
                vec![
                    ClientOp::Write(loc(node), Word::Int(i64::from(node * 100 + k))),
                    ClientOp::ReadFresh(loc((node + 1) % 3)),
                    ClientOp::WriteNonblocking(loc((node + 2) % 3), Word::Int(i64::from(k) + 500)),
                ]
            })
            .collect();
        sim.set_client(node as usize, Script::new(ops));
    }
    let report = sim.run(RunLimits::default());
    assert!(report.all_done);
    let finals = (0..6)
        .map(|l| sim.actor(l % 3).peek(loc(l as u32)))
        .collect();
    (sim.messages().snapshot(), finals, report.time)
}

#[test]
fn identical_seeds_replay_identically() {
    let (m1, f1, t1) = workload_sim(42);
    let (m2, f2, t2) = workload_sim(42);
    assert_eq!(m1, m2);
    assert_eq!(f1, f2);
    assert_eq!(t1, t2);
}

#[test]
fn different_seeds_change_the_schedule() {
    let (_, _, t1) = workload_sim(1);
    let mut any_different = false;
    for seed in 2..8 {
        let (_, _, t) = workload_sim(seed);
        if t != t1 {
            any_different = true;
        }
    }
    assert!(any_different, "latency jitter must affect the schedule");
}

#[test]
fn per_link_fifo_holds_under_jitter() {
    // P1 fires 50 non-blocking writes at P0's location under jittery
    // latency; FIFO delivery means the owner must end holding the last.
    for seed in 0..10u64 {
        let config = CausalConfig::<Word>::builder(2, 2).build();
        let mut sim = causal_sim(
            &config,
            SimOpts {
                latency: Box::new(Uniform::new(1, 50)),
                seed,
                ..SimOpts::default()
            },
        );
        let ops: Vec<ClientOp<Word>> = (1..=50)
            .map(|v| ClientOp::WriteNonblocking(loc(0), Word::Int(v)))
            .collect();
        sim.set_client(1, Script::new(ops));
        let report = sim.run(RunLimits::default());
        assert!(report.all_done);
        assert_eq!(
            sim.actor(0).peek(loc(0)),
            Some(Word::Int(50)),
            "seed {seed}: reordered delivery"
        );
    }
}

#[test]
fn per_link_latency_shapes_the_makespan() {
    // An asymmetric topology: the 1→0 direction is slow. A request from
    // P1 to P0 pays the slow direction once; the reply returns fast.
    use simnet::latency::PerLink;
    let run_with = |slow: u64| {
        let config = CausalConfig::<Word>::builder(2, 2).build();
        let mut model = PerLink::new(1, 0);
        model.set_link(memcore::NodeId::new(1), memcore::NodeId::new(0), slow);
        let mut sim = causal_sim(
            &config,
            SimOpts {
                latency: Box::new(model),
                ..SimOpts::default()
            },
        );
        sim.set_client(1, Script::new(vec![ClientOp::Read(loc(0))]));
        let report = sim.run(RunLimits::default());
        assert!(report.all_done);
        report.time
    };
    assert_eq!(run_with(10), 11); // 10 out + 1 back
    assert_eq!(run_with(50), 51);
}

#[test]
fn ideal_signal_wait_uses_exactly_one_fetch() {
    let config = CausalConfig::<Word>::builder(2, 2).build();
    let mut sim = causal_sim(&config, SimOpts::default());
    // P0 waits for x1 (owned by P1) to become 7; P1 writes some noise
    // first, then 7. Ideal signaling must cost exactly one fetch pair.
    sim.set_client(
        0,
        Script::new(vec![ClientOp::wait_until(loc(1), |v: &Word| {
            *v == Word::Int(7)
        })]),
    );
    sim.set_client(
        1,
        Script::new(vec![
            ClientOp::Write(loc(1), Word::Int(1)),
            ClientOp::Write(loc(1), Word::Int(2)),
            ClientOp::Write(loc(1), Word::Int(7)),
        ]),
    );
    let report = sim.run(RunLimits::default());
    assert!(report.all_done);
    // One READ + one R_REPLY; P1's writes are owner-local and free.
    assert_eq!(sim.messages().snapshot().total(), 2);
}

#[test]
fn poll_wait_costs_more_but_terminates() {
    let config = CausalConfig::<Word>::builder(2, 2).build();
    let mut sim = causal_sim(
        &config,
        SimOpts {
            wait_mode: WaitMode::Poll { interval: 3 },
            latency: Box::new(simnet::latency::Constant::new(5)),
            ..SimOpts::default()
        },
    );
    sim.set_client(
        0,
        Script::new(vec![ClientOp::wait_until(loc(1), |v: &Word| {
            *v == Word::Int(7)
        })]),
    );
    // P1 writes 7 only "later": give it filler local work first.
    let mut ops: Vec<ClientOp<Word>> = (0..10)
        .map(|k| ClientOp::Write(loc(1), Word::Int(k)))
        .collect();
    ops.push(ClientOp::Write(loc(1), Word::Int(7)));
    sim.set_client(1, Script::new(ops));
    let report = sim.run(RunLimits::default());
    assert!(report.all_done);
    assert!(
        sim.messages().snapshot().total() >= 2,
        "at least the final successful fetch"
    );
}

#[test]
fn stuck_detection_reports_unsatisfiable_waits() {
    let config = CausalConfig::<Word>::builder(2, 2).build();
    let mut sim = causal_sim(&config, SimOpts::default());
    // Nothing ever writes 99: the wait can never fire.
    sim.set_client(
        0,
        Script::new(vec![ClientOp::wait_until(loc(1), |v: &Word| {
            *v == Word::Int(99)
        })]),
    );
    let report = sim.run(RunLimits::default());
    assert!(!report.all_done);
    assert_eq!(report.stuck_nodes, vec![0]);
}

#[test]
fn max_event_limit_stops_runaway_programs() {
    let config = CausalConfig::<Word>::builder(2, 2).build();
    let mut sim = causal_sim(&config, SimOpts::default());
    // An infinite client: alternating fresh reads forever.
    struct Forever;
    impl dsm_sim::Client<Word> for Forever {
        fn next(&mut self, _last: Option<&dsm_sim::Outcome<Word>>) -> Option<ClientOp<Word>> {
            Some(ClientOp::ReadFresh(Location::new(0)))
        }
    }
    sim.set_client(1, Forever);
    let report = sim.run(RunLimits {
        max_events: 500,
        max_time: u64::MAX,
    });
    assert!(!report.all_done);
    assert!(report.events <= 500);
}
