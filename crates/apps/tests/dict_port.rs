//! Regression pin for the PR-10 dictionary port: the typed-object-backed
//! [`DictClient`] must issue *exactly* the register accesses the retired
//! hand-rolled state machine issued — same workload ⇒ same per-process
//! READ/WRITE sequence, hence the same logical message bill.
//!
//! The reference implementation below is a frozen copy of the pre-port
//! Word-based client (own-row first-free inserts, row-major first-match
//! deletes and lookups with early exit, flat discard sweeps). Both
//! clients run the same scripts through the deterministic simulator with
//! the same seed; the recorded [`OpRecord`] streams are compared
//! location-by-location.

use std::sync::Arc;

use causal_dsm::{CausalConfig, WritePolicy};
use dsm_apps::{DictClient, DictLayout, DictOp, DictResults};
use dsm_sim::{causal_sim, Client, ClientOp, Outcome, RunLimits, SimOpts};
use memcore::{Location, OpKind, OpRecord, Recorder, Value, Word};
use parking_lot::Mutex;
use simnet::latency::Uniform;

use dsm_objects::ObjVal;

// ---------------------------------------------------------------------
// Frozen reference: the hand-rolled Word-based dictionary client as it
// existed before the port (trimmed to what the comparison needs).
// ---------------------------------------------------------------------

enum Phase {
    Scan { cursor: usize },
    Commit,
    Discarding { cursor: usize },
}

struct ReferenceClient {
    layout: DictLayout,
    row: usize,
    script: std::vec::IntoIter<DictOp>,
    current: Option<DictOp>,
    phase: Phase,
    target: Option<Location>,
    results: DictResults,
}

impl ReferenceClient {
    fn new(layout: DictLayout, row: usize, script: Vec<DictOp>, results: DictResults) -> Self {
        ReferenceClient {
            layout,
            row,
            script: script.into_iter(),
            current: None,
            phase: Phase::Scan { cursor: 0 },
            target: None,
            results,
        }
    }

    fn slot_at(&self, flat: usize) -> Location {
        self.layout.slot(flat / self.layout.cols(), flat % self.layout.cols())
    }

    fn total_slots(&self) -> usize {
        self.layout.rows() * self.layout.cols()
    }

    fn scan_range(&self, op: DictOp) -> (usize, usize) {
        match op {
            DictOp::Insert(_) => {
                let start = self.row * self.layout.cols();
                (start, start + self.layout.cols())
            }
            _ => (0, self.total_slots()),
        }
    }

    fn finish(&mut self, outcome: bool) {
        if let Some(op) = self.current.take() {
            self.results.lock().push((op, outcome));
        }
        self.phase = Phase::Scan { cursor: 0 };
        self.target = None;
    }
}

impl Client<Word> for ReferenceClient {
    fn next(&mut self, last: Option<&Outcome<Word>>) -> Option<ClientOp<Word>> {
        loop {
            let Some(op) = self.current else {
                let op = self.script.next()?;
                self.current = Some(op);
                self.phase = match op {
                    DictOp::Refresh => Phase::Discarding { cursor: 0 },
                    _ => {
                        let (start, _) = self.scan_range(op);
                        Phase::Scan { cursor: start }
                    }
                };
                continue;
            };

            match (&self.phase, op) {
                (Phase::Discarding { cursor }, DictOp::Refresh) => {
                    let mut cursor = *cursor;
                    while cursor < self.total_slots() && cursor / self.layout.cols() == self.row {
                        cursor += 1;
                    }
                    if cursor >= self.total_slots() {
                        self.finish(true);
                        continue;
                    }
                    self.phase = Phase::Discarding { cursor: cursor + 1 };
                    return Some(ClientOp::Discard(self.slot_at(cursor)));
                }
                (Phase::Scan { cursor }, op) => {
                    let cursor = *cursor;
                    let (start, end) = self.scan_range(op);
                    if cursor > start {
                        let value = match last {
                            Some(Outcome::Read { value, .. }) => *value,
                            _ => panic!("scan step expects a read outcome"),
                        };
                        let hit = match op {
                            DictOp::Insert(_) => matches!(value, Word::Zero),
                            DictOp::Lookup(v) | DictOp::Delete(v) => value == Word::Int(v),
                            DictOp::Refresh => unreachable!(),
                        };
                        if hit {
                            let found = self.slot_at(cursor - 1);
                            match op {
                                DictOp::Lookup(_) => {
                                    self.finish(true);
                                    continue;
                                }
                                _ => {
                                    self.target = Some(found);
                                    self.phase = Phase::Commit;
                                    continue;
                                }
                            }
                        }
                    }
                    if cursor >= end {
                        self.finish(false);
                        continue;
                    }
                    self.phase = Phase::Scan { cursor: cursor + 1 };
                    return Some(ClientOp::Read(self.slot_at(cursor)));
                }
                (Phase::Commit, op) => {
                    let target = self.target.expect("commit follows a found slot");
                    let value = match op {
                        DictOp::Insert(v) => Word::Int(v),
                        DictOp::Delete(_) => Word::Zero,
                        _ => unreachable!("only inserts and deletes commit"),
                    };
                    self.finish(true);
                    return Some(ClientOp::Write(target, value));
                }
                (Phase::Discarding { .. }, _) => unreachable!("discard phase is refresh-only"),
            }
        }
    }
}

// ---------------------------------------------------------------------
// The comparison harness.
// ---------------------------------------------------------------------

/// One process's logical bill: the `(kind, location)` stream in program
/// order, which is exactly what the engine turns into protocol messages.
/// Per-process logical message bills plus the flattened `(op, result)`
/// log a run produces.
type RunOutcome = (Vec<Vec<(OpKind, usize)>>, Vec<(DictOp, bool)>);

fn bill<V: Value>(ops: &[OpRecord<V>]) -> Vec<(OpKind, usize)> {
    ops.iter().map(|op| (op.kind, op.loc.index())).collect()
}

fn run_reference(
    layout: DictLayout,
    scripts: &[Vec<DictOp>],
    seed: u64,
) -> RunOutcome {
    let recorder: Recorder<Word> = Recorder::new(layout.rows());
    let config = CausalConfig::<Word>::builder(layout.rows() as u32, layout.locations())
        .owners(layout.owners())
        .policy(WritePolicy::OwnerFavored)
        .build();
    let mut sim = causal_sim(
        &config,
        SimOpts {
            latency: Box::new(Uniform::new(1, 12)),
            seed,
            recorder: Some(recorder.clone()),
            ..SimOpts::default()
        },
    );
    let shared: DictResults = Arc::new(Mutex::new(Vec::new()));
    for (row, script) in scripts.iter().enumerate() {
        sim.set_client(
            row,
            ReferenceClient::new(layout, row, script.clone(), shared.clone()),
        );
    }
    let report = sim.run(RunLimits::default());
    assert!(report.all_done, "reference run wedged: {report:?}");
    let bills = recorder.processes().iter().map(|p| bill(p)).collect();
    let log = shared.lock().clone();
    (bills, log)
}

fn run_ported(
    layout: DictLayout,
    scripts: &[Vec<DictOp>],
    seed: u64,
) -> RunOutcome {
    let recorder: Recorder<ObjVal> = Recorder::new(layout.rows());
    let config = CausalConfig::<ObjVal>::builder(layout.rows() as u32, layout.locations())
        .owners(layout.owners())
        .policy(WritePolicy::OwnerFavored)
        .build();
    let mut sim = causal_sim(
        &config,
        SimOpts {
            latency: Box::new(Uniform::new(1, 12)),
            seed,
            recorder: Some(recorder.clone()),
            ..SimOpts::default()
        },
    );
    let shared: DictResults = Arc::new(Mutex::new(Vec::new()));
    for (row, script) in scripts.iter().enumerate() {
        sim.set_client(
            row,
            DictClient::new(layout, row, script.clone(), shared.clone()),
        );
    }
    let report = sim.run(RunLimits::default());
    assert!(report.all_done, "ported run wedged: {report:?}");
    let bills = recorder.processes().iter().map(|p| bill(p)).collect();
    let log = shared.lock().clone();
    (bills, log)
}

fn workload() -> Vec<Vec<DictOp>> {
    vec![
        vec![
            DictOp::Insert(1),
            DictOp::Insert(2),
            DictOp::Lookup(20),
            DictOp::Delete(1),
            DictOp::Refresh,
            DictOp::Lookup(30),
            DictOp::Insert(3),
        ],
        vec![
            DictOp::Insert(10),
            DictOp::Refresh,
            DictOp::Delete(2),
            DictOp::Insert(20),
            DictOp::Lookup(1),
            DictOp::Refresh,
        ],
        vec![
            DictOp::Insert(30),
            DictOp::Refresh,
            DictOp::Lookup(10),
            DictOp::Delete(30),
            DictOp::Insert(31),
            DictOp::Lookup(31),
        ],
    ]
}

#[test]
fn ported_dictionary_pays_the_same_message_bill() {
    let layout = DictLayout::new(3, 6);
    let scripts = workload();
    for seed in 0..10u64 {
        let (ref_bills, ref_log) = run_reference(layout, &scripts, seed);
        let (new_bills, new_log) = run_ported(layout, &scripts, seed);
        for (row, (r, n)) in ref_bills.iter().zip(&new_bills).enumerate() {
            assert_eq!(
                r, n,
                "seed {seed}: P{row}'s READ/WRITE stream diverged from the hand-rolled client"
            );
        }
        assert_eq!(
            ref_log, new_log,
            "seed {seed}: operation results diverged from the hand-rolled client"
        );
    }
}

#[test]
fn ported_dictionary_pays_the_same_bill_under_contention() {
    // The §4.2 conflict shape: deletes racing the owner's re-inserts of
    // the same item, where scan early-exits depend on observed values.
    let layout = DictLayout::new(3, 2);
    let scripts = vec![
        vec![DictOp::Insert(7), DictOp::Delete(7), DictOp::Insert(7)],
        vec![DictOp::Refresh, DictOp::Delete(7)],
        vec![DictOp::Refresh, DictOp::Delete(7)],
    ];
    for seed in 0..10u64 {
        let (ref_bills, _) = run_reference(layout, &scripts, seed);
        let (new_bills, _) = run_ported(layout, &scripts, seed);
        assert_eq!(
            ref_bills, new_bills,
            "seed {seed}: contention bill diverged from the hand-rolled client"
        );
    }
}
