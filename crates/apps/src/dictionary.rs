//! The distributed dictionary of §4.2.
//!
//! An association table maintained cooperatively by `n` processes with
//! *no synchronization around operations*: the dictionary is an `n × m`
//! array; process `P_i` **owns row `i`** and inserts only there (so
//! concurrent inserts never conflict), while deletes may write the free
//! marker `λ` into any row. The one remaining conflict — a delete racing a
//! re-insert into the same slot — is resolved by the causal engine's
//! owner-favored write policy ("writes by the owner are always favored"),
//! which is exactly why the paper introduces that policy.
//!
//! Restrictions R1/R2 from the paper (items unique; deletes follow their
//! inserts) are the caller's responsibility, as in Fischer & Michael.

use memcore::{ExplicitOwners, Location, MemoryError, NodeId, SharedMemory, Word};

/// The dictionary's shared-memory layout: `n` rows of `m` slots, row `i`
/// owned by `P_i`, page size 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DictLayout {
    n: usize,
    m: usize,
}

impl DictLayout {
    /// A layout for `n` processes with `m` slots per row.
    ///
    /// # Panics
    ///
    /// Panics if `n` or `m` is zero.
    #[must_use]
    pub fn new(n: usize, m: usize) -> Self {
        assert!(n > 0, "dictionary needs at least one process");
        assert!(m > 0, "dictionary rows need at least one slot");
        DictLayout { n, m }
    }

    /// Number of processes (rows).
    #[must_use]
    pub fn rows(&self) -> usize {
        self.n
    }

    /// Slots per row.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.m
    }

    /// The location of slot `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    #[must_use]
    pub fn slot(&self, row: usize, col: usize) -> Location {
        assert!(row < self.n && col < self.m, "slot out of range");
        Location::new((row * self.m + col) as u32)
    }

    /// Total locations.
    #[must_use]
    pub fn locations(&self) -> u32 {
        (self.n * self.m) as u32
    }

    /// Owner map: `P_i` owns every slot of row `i`.
    #[must_use]
    pub fn owners(&self) -> ExplicitOwners {
        let table = (0..self.n)
            .flat_map(|row| std::iter::repeat_n(NodeId::new(row as u32), self.m))
            .collect();
        ExplicitOwners::new(self.n as u32, 1, table)
    }
}

/// The free marker `λ`: a slot holding this (or the initial 0) is empty.
#[must_use]
pub fn is_free(w: &Word) -> bool {
    matches!(w, Word::Zero)
}

/// One process's interface to the shared dictionary.
///
/// Generic over the memory, per the paper's programming claim; the
/// conflict-resolution guarantee needs the causal engine configured with
/// [`WritePolicy::OwnerFavored`](causal_dsm::WritePolicy::OwnerFavored).
///
/// # Examples
///
/// ```
/// use causal_dsm::{CausalCluster, WritePolicy};
/// use dsm_apps::{DictLayout, Dictionary};
/// use memcore::Word;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let layout = DictLayout::new(2, 4);
/// let cluster = CausalCluster::<Word>::builder(2, layout.locations())
///     .configure(|c| c.owners(layout.owners()).policy(WritePolicy::OwnerFavored))
///     .build()?;
/// let d0 = Dictionary::new(cluster.handle(0), layout);
/// let d1 = Dictionary::new(cluster.handle(1), layout);
///
/// assert!(d0.insert(7)?);
/// assert!(d1.lookup(7)?); // P1 sees P0's insert
/// assert!(d1.delete(7)?); // deletes may act on any row
/// assert!(!d1.lookup(7)?);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Dictionary<M> {
    mem: M,
    layout: DictLayout,
    row: usize,
}

impl<M: SharedMemory<Word>> Dictionary<M> {
    /// Wraps `mem` (whose node index selects this process's row).
    ///
    /// # Panics
    ///
    /// Panics if the node index exceeds the layout's rows.
    #[must_use]
    pub fn new(mem: M, layout: DictLayout) -> Self {
        let row = mem.node().index();
        assert!(row < layout.rows(), "node outside dictionary layout");
        Dictionary { mem, layout, row }
    }

    /// This process's row.
    #[must_use]
    pub fn row(&self) -> usize {
        self.row
    }

    /// Inserts `item` into the first free slot of this process's own row.
    /// Returns `false` if the row is full.
    ///
    /// Per R1, callers insert each item at most once across the system.
    ///
    /// # Errors
    ///
    /// Propagates memory errors.
    ///
    /// # Panics
    ///
    /// Panics if `item` is zero (reserved for the free marker `λ`).
    pub fn insert(&self, item: i64) -> Result<bool, MemoryError> {
        assert_ne!(item, 0, "item 0 is reserved for the free marker");
        for col in 0..self.layout.cols() {
            let loc = self.layout.slot(self.row, col);
            // Own row: reads are local and authoritative.
            if is_free(&self.mem.read(loc)?) {
                self.mem.write(loc, Word::Int(item))?;
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// `true` iff `item` has been inserted and not deleted, *according to
    /// this process's view* (the paper's correctness condition). Scans
    /// every row systematically, which is what gives lookups the
    /// knowledge-monotonicity property.
    ///
    /// # Errors
    ///
    /// Propagates memory errors.
    pub fn lookup(&self, item: i64) -> Result<bool, MemoryError> {
        Ok(self.find(item)?.is_some())
    }

    /// Deletes `item` wherever it is found in this process's view (R2:
    /// only delete items whose insert you have seen). Returns `false` if
    /// not visible.
    ///
    /// The write of `λ` may race the owner re-inserting into the same
    /// slot; owner-favored resolution keeps the dictionary correct (§4.2).
    ///
    /// # Errors
    ///
    /// Propagates memory errors.
    pub fn delete(&self, item: i64) -> Result<bool, MemoryError> {
        match self.find(item)? {
            Some(loc) => {
                self.mem.write(loc, Word::Zero)?;
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// All items in this process's current view, row by row.
    ///
    /// # Errors
    ///
    /// Propagates memory errors.
    pub fn items(&self) -> Result<Vec<i64>, MemoryError> {
        let mut out = Vec::new();
        for row in 0..self.layout.rows() {
            for col in 0..self.layout.cols() {
                if let Word::Int(v) = self.mem.read(self.layout.slot(row, col))? {
                    out.push(v);
                }
            }
        }
        Ok(out)
    }

    /// Discards every cached (non-owned) slot, forcing the next scan to
    /// fetch fresh copies — the paper's `discard`-based liveness: views
    /// converge after quiescence once processes refresh.
    pub fn refresh(&self) {
        for row in 0..self.layout.rows() {
            if row == self.row {
                continue;
            }
            for col in 0..self.layout.cols() {
                self.mem.discard(self.layout.slot(row, col));
            }
        }
    }

    fn find(&self, item: i64) -> Result<Option<Location>, MemoryError> {
        for row in 0..self.layout.rows() {
            for col in 0..self.layout.cols() {
                let loc = self.layout.slot(row, col);
                if self.mem.read(loc)? == Word::Int(item) {
                    return Ok(Some(loc));
                }
            }
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use causal_dsm::{CausalCluster, WritePolicy};

    fn cluster(layout: DictLayout) -> CausalCluster<Word> {
        CausalCluster::<Word>::builder(layout.rows() as u32, layout.locations())
            .configure(|c| c.owners(layout.owners()).policy(WritePolicy::OwnerFavored))
            .build()
            .expect("cluster")
    }

    #[test]
    fn layout_assigns_rows_to_their_owners() {
        use memcore::OwnerMap;
        let layout = DictLayout::new(3, 4);
        let owners = layout.owners();
        for row in 0..3 {
            for col in 0..4 {
                assert_eq!(
                    owners.owner_of(layout.slot(row, col)),
                    NodeId::new(row as u32)
                );
            }
        }
        assert_eq!(layout.locations(), 12);
    }

    #[test]
    fn insert_lookup_delete_round_trip() {
        let layout = DictLayout::new(2, 4);
        let cluster = cluster(layout);
        let d0 = Dictionary::new(cluster.handle(0), layout);
        let d1 = Dictionary::new(cluster.handle(1), layout);

        assert!(d0.insert(10).unwrap());
        assert!(d0.lookup(10).unwrap()); // own operations visible at once
        assert!(d1.lookup(10).unwrap()); // lookup fetches uncached rows
        assert!(d1.delete(10).unwrap());
        assert!(!d1.lookup(10).unwrap());
        // P0 learns of the delete: its own row was written through the
        // owner (itself), so its local read sees λ.
        assert!(!d0.lookup(10).unwrap());
    }

    #[test]
    fn row_fills_up_and_rejects_further_inserts() {
        let layout = DictLayout::new(2, 2);
        let cluster = cluster(layout);
        let d0 = Dictionary::new(cluster.handle(0), layout);
        assert!(d0.insert(1).unwrap());
        assert!(d0.insert(2).unwrap());
        assert!(!d0.insert(3).unwrap());
        // Deleting frees a slot for reuse.
        assert!(d0.delete(1).unwrap());
        assert!(d0.insert(3).unwrap());
        let mut items = d0.items().unwrap();
        items.sort_unstable();
        assert_eq!(items, vec![2, 3]);
    }

    #[test]
    fn views_converge_after_refresh() {
        let layout = DictLayout::new(3, 4);
        let cluster = cluster(layout);
        let dicts: Vec<_> = (0..3)
            .map(|i| Dictionary::new(cluster.handle(i), layout))
            .collect();
        dicts[0].insert(100).unwrap();
        dicts[1].insert(200).unwrap();
        dicts[2].insert(300).unwrap();
        for d in &dicts {
            d.refresh();
            let mut items = d.items().unwrap();
            items.sort_unstable();
            assert_eq!(items, vec![100, 200, 300]);
        }
        dicts[1].delete(100).unwrap();
        for d in &dicts {
            d.refresh();
            assert!(!d.lookup(100).unwrap());
        }
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn zero_item_is_rejected() {
        let layout = DictLayout::new(2, 2);
        let cluster = cluster(layout);
        let d0 = Dictionary::new(cluster.handle(0), layout);
        let _ = d0.insert(0);
    }
}
