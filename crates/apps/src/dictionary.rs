//! The distributed dictionary of §4.2, as a typed causal object.
//!
//! An association table maintained cooperatively by `n` processes with
//! *no synchronization around operations*: the dictionary is an `n × m`
//! array; process `P_i` **owns row `i`** and inserts only there (so
//! concurrent inserts never conflict), while deletes may write the free
//! marker `λ` into any row. The one remaining conflict — a delete racing a
//! re-insert into the same slot — is resolved by the causal engine's
//! owner-favored write policy ("writes by the owner are always favored"),
//! which is exactly why the paper introduces that policy.
//!
//! Since PR 10 the dictionary is a thin veneer over the typed object
//! layer's observed-remove set ([`dsm_objects::CausalSet`]), which issues
//! the same register accesses the hand-rolled version did (own-row
//! first-free inserts, row-major first-match deletes, early-exit
//! lookups) — the logical message bill is unchanged, and the port is
//! pinned by `tests/dict_port.rs`. What the dictionary adds on top of
//! the raw set is the §4.2 interface contract: item `0` is reserved as
//! the free marker `λ` and inserts of it are rejected.
//!
//! Restrictions R1/R2 from the paper (items unique; deletes follow their
//! inserts) are the caller's responsibility, as in Fischer & Michael.

use dsm_objects::{CausalSet, ObjVal};
use memcore::{MemoryError, SharedMemory};

/// The dictionary's shared-memory layout: `n` rows of `m` slots, row `i`
/// owned by `P_i`, page size 1. Identical to (and now an alias of) the
/// object layer's row grid.
pub use dsm_objects::GridLayout as DictLayout;

/// One process's interface to the shared dictionary.
///
/// Generic over the memory, per the paper's programming claim; the
/// conflict-resolution guarantee needs the causal engine configured with
/// [`WritePolicy::OwnerFavored`](causal_dsm::WritePolicy::OwnerFavored).
///
/// # Examples
///
/// ```
/// use causal_dsm::{CausalCluster, WritePolicy};
/// use dsm_apps::{DictLayout, Dictionary};
/// use dsm_objects::ObjVal;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let layout = DictLayout::new(2, 4);
/// let cluster = CausalCluster::<ObjVal>::builder(2, layout.locations())
///     .configure(|c| c.owners(layout.owners()).policy(WritePolicy::OwnerFavored))
///     .build()?;
/// let d0 = Dictionary::new(cluster.handle(0), layout);
/// let d1 = Dictionary::new(cluster.handle(1), layout);
///
/// assert!(d0.insert(7)?);
/// assert!(d1.lookup(7)?); // P1 sees P0's insert
/// assert!(d1.delete(7)?); // deletes may act on any row
/// assert!(!d1.lookup(7)?);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Dictionary<M> {
    set: CausalSet<M>,
    row: usize,
}

impl<M: SharedMemory<ObjVal>> Dictionary<M> {
    /// Wraps `mem` (whose node index selects this process's row).
    ///
    /// # Panics
    ///
    /// Panics if the node index exceeds the layout's rows.
    #[must_use]
    pub fn new(mem: M, layout: DictLayout) -> Self {
        let row = mem.node().index();
        assert!(row < layout.rows(), "node outside dictionary layout");
        Dictionary {
            set: CausalSet::new(mem, layout),
            row,
        }
    }

    /// This process's row.
    #[must_use]
    pub fn row(&self) -> usize {
        self.row
    }

    /// Inserts `item` into the first free slot of this process's own row.
    /// Returns `false` if the row is full.
    ///
    /// Per R1, callers insert each item at most once across the system.
    ///
    /// # Errors
    ///
    /// Propagates memory errors.
    ///
    /// # Panics
    ///
    /// Panics if `item` is zero (reserved for the free marker `λ`).
    pub fn insert(&self, item: i64) -> Result<bool, MemoryError> {
        assert_ne!(item, 0, "item 0 is reserved for the free marker");
        self.set.add(item)
    }

    /// `true` iff `item` has been inserted and not deleted, *according to
    /// this process's view* (the paper's correctness condition). Scans
    /// every row systematically, which is what gives lookups the
    /// knowledge-monotonicity property.
    ///
    /// # Errors
    ///
    /// Propagates memory errors.
    pub fn lookup(&self, item: i64) -> Result<bool, MemoryError> {
        self.set.contains(item)
    }

    /// Deletes `item` wherever it is found in this process's view (R2:
    /// only delete items whose insert you have seen). Returns `false` if
    /// not visible.
    ///
    /// The write of `λ` may race the owner re-inserting into the same
    /// slot; owner-favored resolution keeps the dictionary correct (§4.2).
    ///
    /// # Errors
    ///
    /// Propagates memory errors.
    pub fn delete(&self, item: i64) -> Result<bool, MemoryError> {
        self.set.remove(item)
    }

    /// All items in this process's current view, row by row.
    ///
    /// # Errors
    ///
    /// Propagates memory errors.
    pub fn items(&self) -> Result<Vec<i64>, MemoryError> {
        self.set.items()
    }

    /// Discards every cached (non-owned) slot, forcing the next scan to
    /// fetch fresh copies — the paper's `discard`-based liveness: views
    /// converge after quiescence once processes refresh.
    pub fn refresh(&self) {
        self.set.refresh();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use causal_dsm::{CausalCluster, WritePolicy};
    use memcore::NodeId;

    fn cluster(layout: DictLayout) -> CausalCluster<ObjVal> {
        CausalCluster::<ObjVal>::builder(layout.rows() as u32, layout.locations())
            .configure(|c| c.owners(layout.owners()).policy(WritePolicy::OwnerFavored))
            .build()
            .expect("cluster")
    }

    #[test]
    fn layout_assigns_rows_to_their_owners() {
        use memcore::OwnerMap;
        let layout = DictLayout::new(3, 4);
        let owners = layout.owners();
        for row in 0..3 {
            for col in 0..4 {
                assert_eq!(
                    owners.owner_of(layout.slot(row, col)),
                    NodeId::new(row as u32)
                );
            }
        }
        assert_eq!(layout.locations(), 12);
    }

    #[test]
    fn insert_lookup_delete_round_trip() {
        let layout = DictLayout::new(2, 4);
        let cluster = cluster(layout);
        let d0 = Dictionary::new(cluster.handle(0), layout);
        let d1 = Dictionary::new(cluster.handle(1), layout);

        assert!(d0.insert(10).unwrap());
        assert!(d0.lookup(10).unwrap()); // own operations visible at once
        assert!(d1.lookup(10).unwrap()); // lookup fetches uncached rows
        assert!(d1.delete(10).unwrap());
        assert!(!d1.lookup(10).unwrap());
        // P0 learns of the delete: its own row was written through the
        // owner (itself), so its local read sees λ.
        assert!(!d0.lookup(10).unwrap());
    }

    #[test]
    fn row_fills_up_and_rejects_further_inserts() {
        let layout = DictLayout::new(2, 2);
        let cluster = cluster(layout);
        let d0 = Dictionary::new(cluster.handle(0), layout);
        assert!(d0.insert(1).unwrap());
        assert!(d0.insert(2).unwrap());
        assert!(!d0.insert(3).unwrap());
        // Deleting frees a slot for reuse.
        assert!(d0.delete(1).unwrap());
        assert!(d0.insert(3).unwrap());
        let mut items = d0.items().unwrap();
        items.sort_unstable();
        assert_eq!(items, vec![2, 3]);
    }

    #[test]
    fn views_converge_after_refresh() {
        let layout = DictLayout::new(3, 4);
        let cluster = cluster(layout);
        let dicts: Vec<_> = (0..3)
            .map(|i| Dictionary::new(cluster.handle(i), layout))
            .collect();
        dicts[0].insert(100).unwrap();
        dicts[1].insert(200).unwrap();
        dicts[2].insert(300).unwrap();
        for d in &dicts {
            d.refresh();
            let mut items = d.items().unwrap();
            items.sort_unstable();
            assert_eq!(items, vec![100, 200, 300]);
        }
        dicts[1].delete(100).unwrap();
        for d in &dicts {
            d.refresh();
            assert!(!d.lookup(100).unwrap());
        }
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn zero_item_is_rejected() {
        let layout = DictLayout::new(2, 2);
        let cluster = cluster(layout);
        let d0 = Dictionary::new(cluster.handle(0), layout);
        let _ = d0.insert(0);
    }
}
