//! Random read/write workloads for throughput and message-cost benches.

use memcore::Location;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// One generated operation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum WorkloadOp {
    /// Read a location.
    Read(Location),
    /// Write a value to a location.
    Write(Location, i64),
}

/// Parameters of a synthetic workload over an owner-partitioned namespace.
#[derive(Clone, Copy, Debug)]
pub struct WorkloadSpec {
    /// Number of processes.
    pub nodes: usize,
    /// Locations per process's partition (round-robin ownership assumed:
    /// location `l` is owned by `l mod nodes`).
    pub locations_per_node: usize,
    /// Operations generated per process.
    pub ops_per_node: usize,
    /// Fraction of reads in `[0, 1]`.
    pub read_ratio: f64,
    /// Probability that an operation targets the process's *own*
    /// partition (owner-local operations are the causal protocol's fast
    /// path).
    pub locality: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            nodes: 4,
            locations_per_node: 16,
            ops_per_node: 1000,
            read_ratio: 0.9,
            locality: 0.5,
            seed: 0,
        }
    }
}

impl WorkloadSpec {
    /// Total locations in the namespace.
    #[must_use]
    pub fn locations(&self) -> u32 {
        (self.nodes * self.locations_per_node) as u32
    }

    /// Generates each process's operation sequence (deterministic per
    /// seed).
    ///
    /// # Panics
    ///
    /// Panics if ratios are outside `[0, 1]` or any dimension is zero.
    #[must_use]
    pub fn generate(&self) -> Vec<Vec<WorkloadOp>> {
        assert!(self.nodes > 0 && self.locations_per_node > 0);
        assert!(
            (0.0..=1.0).contains(&self.read_ratio),
            "read_ratio in [0,1]"
        );
        assert!((0.0..=1.0).contains(&self.locality), "locality in [0,1]");
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let mut value = 1i64;
        (0..self.nodes)
            .map(|node| {
                (0..self.ops_per_node)
                    .map(|_| {
                        // Pick the owning partition, then a slot within it.
                        // Round-robin ownership: owner p's locations are
                        // p, p + nodes, p + 2·nodes, …
                        let owner = if rng.gen_bool(self.locality) {
                            node
                        } else {
                            rng.gen_range(0..self.nodes)
                        };
                        let slot = rng.gen_range(0..self.locations_per_node);
                        let loc = Location::new((slot * self.nodes + owner) as u32);
                        if rng.gen_bool(self.read_ratio) {
                            WorkloadOp::Read(loc)
                        } else {
                            value += 1;
                            WorkloadOp::Write(loc, value)
                        }
                    })
                    .collect()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let spec = WorkloadSpec::default();
        assert_eq!(spec.generate(), spec.generate());
    }

    #[test]
    fn dimensions_match_spec() {
        let spec = WorkloadSpec {
            nodes: 3,
            ops_per_node: 50,
            ..WorkloadSpec::default()
        };
        let ops = spec.generate();
        assert_eq!(ops.len(), 3);
        assert!(ops.iter().all(|o| o.len() == 50));
        let max_loc = spec.locations();
        for op in ops.iter().flatten() {
            let loc = match op {
                WorkloadOp::Read(l) | WorkloadOp::Write(l, _) => *l,
            };
            assert!((loc.index() as u32) < max_loc);
        }
    }

    #[test]
    fn read_ratio_zero_yields_only_writes() {
        let spec = WorkloadSpec {
            read_ratio: 0.0,
            ops_per_node: 20,
            ..WorkloadSpec::default()
        };
        assert!(spec
            .generate()
            .iter()
            .flatten()
            .all(|op| matches!(op, WorkloadOp::Write(..))));
    }

    #[test]
    fn full_locality_targets_own_partition() {
        let spec = WorkloadSpec {
            locality: 1.0,
            nodes: 4,
            ops_per_node: 100,
            ..WorkloadSpec::default()
        };
        for (node, ops) in spec.generate().iter().enumerate() {
            for op in ops {
                let loc = match op {
                    WorkloadOp::Read(l) | WorkloadOp::Write(l, _) => *l,
                };
                assert_eq!(loc.index() % 4, node, "op {op:?} not node-local");
            }
        }
    }

    #[test]
    fn write_values_are_unique() {
        let spec = WorkloadSpec {
            read_ratio: 0.0,
            ops_per_node: 100,
            ..WorkloadSpec::default()
        };
        let mut values: Vec<i64> = spec
            .generate()
            .iter()
            .flatten()
            .filter_map(|op| match op {
                WorkloadOp::Write(_, v) => Some(*v),
                WorkloadOp::Read(_) => None,
            })
            .collect();
        let len = values.len();
        values.sort_unstable();
        values.dedup();
        assert_eq!(values.len(), len);
    }
}
