//! The synchronous iterative linear solver of Figure 6.
//!
//! `n` worker processes each own one component of the solution vector plus
//! two handshake flags; a coordinator process cycles the barrier. The same
//! code runs unchanged on causal and atomic memory — the paper's central
//! programming claim — and the message-count experiment (E6) measures the
//! paper's `2n + 6` (causal) vs `≥ 3n + 5` (atomic) per processor per
//! phase.
//!
//! Memory layout (page size 1, explicit ownership):
//!
//! | locations | variable | owner |
//! |---|---|---|
//! | `i` | `x_i` | worker `P_i` |
//! | `n + i` | `complete_i` | worker `P_i` |
//! | `2n + i` | `changed_i` | worker `P_i` |
//! | `3n + i·n + j` | `A[i][j]` | coordinator (constant) |
//! | `3n + n² + i` | `b_i` | coordinator (constant) |
//!
//! The coordinator is node `n`.

use memcore::{Location, MemoryError, NodeId, PageId, SharedMemory, Word};

use crate::system::LinearSystem;

/// The solver's shared-memory layout for `n` workers plus a coordinator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SolverLayout {
    n: usize,
}

impl SolverLayout {
    /// Layout for `n` workers.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` (the paper's counting argument needs at least two
    /// workers).
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(n >= 2, "solver needs at least two workers");
        SolverLayout { n }
    }

    /// Number of workers.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.n
    }

    /// Total processes (workers + coordinator).
    #[must_use]
    pub fn nodes(&self) -> u32 {
        (self.n + 1) as u32
    }

    /// The coordinator's node id.
    #[must_use]
    pub fn coordinator(&self) -> NodeId {
        NodeId::new(self.n as u32)
    }

    /// Location of `x_i`.
    #[must_use]
    pub fn x(&self, i: usize) -> Location {
        Location::new(i as u32)
    }

    /// Location of `complete_i`.
    #[must_use]
    pub fn complete(&self, i: usize) -> Location {
        Location::new((self.n + i) as u32)
    }

    /// Location of `changed_i`.
    #[must_use]
    pub fn changed(&self, i: usize) -> Location {
        Location::new((2 * self.n + i) as u32)
    }

    /// Location of `A[i][j]`.
    #[must_use]
    pub fn a(&self, i: usize, j: usize) -> Location {
        Location::new((3 * self.n + i * self.n + j) as u32)
    }

    /// Location of `b_i`.
    #[must_use]
    pub fn b(&self, i: usize) -> Location {
        Location::new((3 * self.n + self.n * self.n + i) as u32)
    }

    /// The initialization flag: the coordinator sets it true once `A` and
    /// `b` are published; workers wait for it before their first read.
    /// (Needed on replicated memories, where an early local read would
    /// otherwise see the initial zeros.)
    #[must_use]
    pub fn ready(&self) -> Location {
        Location::new((3 * self.n + self.n * self.n + self.n) as u32)
    }

    /// Total locations in the namespace.
    #[must_use]
    pub fn locations(&self) -> u32 {
        (3 * self.n + self.n * self.n + self.n + 1) as u32
    }

    /// Per-page owner table: worker `P_i` owns `x_i` and its flags; the
    /// coordinator owns `A` and `b`.
    #[must_use]
    pub fn owner_table(&self) -> Vec<NodeId> {
        let mut table = Vec::with_capacity(self.locations() as usize);
        // x block, complete block, changed block: P_i owns slot i of each.
        for _block in 0..3 {
            for i in 0..self.n {
                table.push(NodeId::new(i as u32));
            }
        }
        let coord = self.coordinator();
        // A, b and the ready flag belong to the coordinator.
        for _ in 0..(self.n * self.n + self.n + 1) {
            table.push(coord);
        }
        table
    }

    /// The pages holding `A` and `b` (candidates for constant marking —
    /// the paper's footnote-2 enhancement). The ready flag is excluded:
    /// it changes.
    #[must_use]
    pub fn const_pages(&self) -> Vec<PageId> {
        (3 * self.n..self.ready().index())
            .map(|l| PageId::new(l as u32))
            .collect()
    }

    /// Explicit owner map for this layout (page size 1).
    #[must_use]
    pub fn owners(&self) -> memcore::ExplicitOwners {
        memcore::ExplicitOwners::new(self.nodes(), 1, self.owner_table())
    }
}

/// Publishes `A` and `b` into shared memory (run on the coordinator's
/// handle before starting the workers).
///
/// # Errors
///
/// Propagates memory errors.
pub fn publish_system<M: SharedMemory<Word>>(
    mem: &M,
    layout: &SolverLayout,
    system: &LinearSystem,
) -> Result<(), MemoryError> {
    let n = layout.workers();
    for i in 0..n {
        for j in 0..n {
            mem.write(layout.a(i, j), Word::Float(system.a(i, j)))?;
        }
        mem.write(layout.b(i), Word::Float(system.b(i)))?;
    }
    mem.write(layout.ready(), Word::Bool(true))?;
    Ok(())
}

/// Runs worker `i` of the Figure-6 synchronous solver for `phases`
/// iterations on any shared memory. Blocking; intended for one thread per
/// worker. All inputs (`A`, `b`, the vector) come from shared memory;
/// the worker carries no out-of-band state.
///
/// # Errors
///
/// Propagates memory errors.
///
/// # Panics
///
/// Panics if the memory returns a non-float where the layout stores
/// floats.
pub fn run_worker<M: SharedMemory<Word>>(
    mem: &M,
    layout: &SolverLayout,
    i: usize,
    phases: usize,
) -> Result<f64, MemoryError> {
    let n = layout.workers();
    let t = |w: Word| w.as_float().expect("solver locations hold floats");
    let is_false = |v: &Word| v.as_bool() == Some(false);

    // Wait for the coordinator to finish publishing A and b.
    mem.wait_until(layout.ready(), &|v: &Word| v.as_bool() == Some(true))?;

    let mut a_row = vec![0.0; n];
    let mut x = vec![0.0; n];
    for _phase in 0..phases {
        // Read this row of A and b from shared memory (cache hits when
        // their pages are marked constant — the footnote-2 enhancement).
        for (j, slot) in a_row.iter_mut().enumerate() {
            *slot = t(mem.read(layout.a(i, j))?);
        }
        let b_i = t(mem.read(layout.b(i))?);

        // Read the previous iteration's vector. Own component is local;
        // others may be cached or fetched.
        for (j, slot) in x.iter_mut().enumerate() {
            *slot = t(mem.read(layout.x(j))?);
        }
        let mut sum = b_i;
        for (j, (&a, &xv)) in a_row.iter().zip(&x).enumerate() {
            if j != i {
                sum -= a * xv;
            }
        }
        let t_i = sum / a_row[i];

        // Handshake 1: signal computation complete, await release.
        mem.write(layout.complete(i), Word::Bool(true))?;
        mem.wait_until(layout.complete(i), &is_false)?;

        // Publish the new value.
        mem.write(layout.x(i), Word::Float(t_i))?;

        // Handshake 2: signal copy complete, await next phase (the
        // coordinator resets changed_i to false).
        mem.write(layout.changed(i), Word::Bool(true))?;
        mem.wait_until(layout.changed(i), &is_false)?;
    }
    mem.read(layout.x(i)).map(t)
}

/// Runs the coordinator of the Figure-6 solver for `phases` iterations.
///
/// # Errors
///
/// Propagates memory errors.
pub fn run_coordinator<M: SharedMemory<Word>>(
    mem: &M,
    layout: &SolverLayout,
    phases: usize,
) -> Result<(), MemoryError> {
    let n = layout.workers();
    let is_true = |v: &Word| v.as_bool() == Some(true);
    for _phase in 0..phases {
        // Wait for every worker to finish computing, then release them to
        // overwrite the global vector.
        for i in 0..n {
            mem.wait_until(layout.complete(i), &is_true)?;
        }
        for i in 0..n {
            mem.write(layout.complete(i), Word::Bool(false))?;
        }
        // Wait for every worker to have copied, then release them into
        // the next phase.
        for i in 0..n {
            mem.wait_until(layout.changed(i), &is_true)?;
        }
        for i in 0..n {
            mem.write(layout.changed(i), Word::Bool(false))?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use memcore::OwnerMap;

    #[test]
    fn layout_locations_are_disjoint_and_dense() {
        let layout = SolverLayout::new(4);
        let mut seen = std::collections::HashSet::new();
        for i in 0..4 {
            assert!(seen.insert(layout.x(i)));
            assert!(seen.insert(layout.complete(i)));
            assert!(seen.insert(layout.changed(i)));
            assert!(seen.insert(layout.b(i)));
            for j in 0..4 {
                assert!(seen.insert(layout.a(i, j)));
            }
        }
        assert!(seen.insert(layout.ready()));
        assert_eq!(seen.len(), layout.locations() as usize);
        assert!(seen.iter().all(|l| l.index() < layout.locations() as usize));
    }

    #[test]
    fn ownership_matches_the_papers_assumption() {
        // "Assume that P_i owns x_i and the handshake bits complete_i and
        // changed_i."
        let layout = SolverLayout::new(3);
        let owners = layout.owners();
        for i in 0..3 {
            let p = NodeId::new(i as u32);
            assert_eq!(owners.owner_of(layout.x(i)), p);
            assert_eq!(owners.owner_of(layout.complete(i)), p);
            assert_eq!(owners.owner_of(layout.changed(i)), p);
            assert_eq!(owners.owner_of(layout.b(i)), layout.coordinator());
        }
        assert_eq!(owners.owner_of(layout.a(2, 1)), layout.coordinator());
    }

    #[test]
    fn const_pages_cover_exactly_a_and_b() {
        let layout = SolverLayout::new(3);
        let pages = layout.const_pages();
        assert_eq!(pages.len(), 9 + 3);
        assert_eq!(pages[0].index(), layout.a(0, 0).index());
        assert_eq!(pages.last().unwrap().index(), layout.b(2).index());
    }

    #[test]
    #[should_panic(expected = "at least two workers")]
    fn single_worker_layout_panics() {
        let _ = SolverLayout::new(1);
    }
}
