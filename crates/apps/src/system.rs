//! Linear systems `Ax = b` for the solver experiments.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A dense linear system `Ax = b`.
///
/// The iterative (Jacobi) method the paper's §4.1 solver implements
/// converges for strictly diagonally dominant matrices, so the random
/// generator produces those.
///
/// # Examples
///
/// ```
/// use dsm_apps::LinearSystem;
///
/// let system = LinearSystem::random(4, 42);
/// let x = system.solve_jacobi(100);
/// assert!(system.residual(&x) < 1e-9);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct LinearSystem {
    n: usize,
    a: Vec<f64>,
    b: Vec<f64>,
}

impl LinearSystem {
    /// Builds a system from row-major coefficients.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions disagree or `n` is zero.
    #[must_use]
    pub fn new(n: usize, a: Vec<f64>, b: Vec<f64>) -> Self {
        assert!(n > 0, "system must have at least one unknown");
        assert_eq!(a.len(), n * n, "A must be n x n");
        assert_eq!(b.len(), n, "b must have n entries");
        for i in 0..n {
            assert!(
                a[i * n + i].abs() > f64::EPSILON,
                "zero diagonal entry at row {i}"
            );
        }
        LinearSystem { n, a, b }
    }

    /// A random strictly diagonally dominant system (deterministic per
    /// seed).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[must_use]
    pub fn random(n: usize, seed: u64) -> Self {
        assert!(n > 0, "system must have at least one unknown");
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut a = vec![0.0; n * n];
        let mut b = vec![0.0; n];
        for i in 0..n {
            let mut off_diag_sum = 0.0;
            for j in 0..n {
                if i != j {
                    let v: f64 = rng.gen_range(-1.0..1.0);
                    a[i * n + j] = v;
                    off_diag_sum += v.abs();
                }
            }
            // Strict dominance with margin: |a_ii| > Σ|a_ij|.
            a[i * n + i] = off_diag_sum + rng.gen_range(1.0..2.0);
            b[i] = rng.gen_range(-10.0..10.0);
        }
        LinearSystem { n, a, b }
    }

    /// Number of unknowns.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Coefficient `A[i][j]`.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    #[must_use]
    pub fn a(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.n && j < self.n);
        self.a[i * self.n + j]
    }

    /// Right-hand side `b[i]`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn b(&self, i: usize) -> f64 {
        self.b[i]
    }

    /// One Jacobi update: `x_i' = (b_i − Σ_{j≠i} a_ij x_j) / a_ii` — the
    /// equation in the paper's §4.1.
    #[must_use]
    pub fn jacobi_step(&self, i: usize, x: &[f64]) -> f64 {
        let row = &self.a[i * self.n..(i + 1) * self.n];
        let mut sum = self.b[i];
        for (j, (&a, &xv)) in row.iter().zip(x).enumerate() {
            if j != i {
                sum -= a * xv;
            }
        }
        sum / row[i]
    }

    /// Reference sequential Jacobi iteration from `x = 0`, `phases` rounds.
    #[must_use]
    pub fn solve_jacobi(&self, phases: usize) -> Vec<f64> {
        let mut x = vec![0.0; self.n];
        let mut next = vec![0.0; self.n];
        for _ in 0..phases {
            for (i, slot) in next.iter_mut().enumerate() {
                *slot = self.jacobi_step(i, &x);
            }
            std::mem::swap(&mut x, &mut next);
        }
        x
    }

    /// `‖Ax − b‖∞`.
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong length.
    #[must_use]
    pub fn residual(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.n);
        (0..self.n)
            .map(|i| {
                let row: f64 = (0..self.n).map(|j| self.a[i * self.n + j] * x[j]).sum();
                (row - self.b[i]).abs()
            })
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_systems_are_diagonally_dominant() {
        let s = LinearSystem::random(8, 1);
        for i in 0..8 {
            let off: f64 = (0..8).filter(|&j| j != i).map(|j| s.a(i, j).abs()).sum();
            assert!(s.a(i, i).abs() > off);
        }
    }

    #[test]
    fn jacobi_converges_on_random_systems() {
        for seed in 0..5 {
            let s = LinearSystem::random(6, seed);
            let x = s.solve_jacobi(200);
            assert!(
                s.residual(&x) < 1e-8,
                "seed {seed}: residual {}",
                s.residual(&x)
            );
        }
    }

    #[test]
    fn jacobi_solves_a_known_system() {
        // 4x + y = 9, x + 3y = 7  →  x = 20/11, y = 19/11.
        let s = LinearSystem::new(2, vec![4.0, 1.0, 1.0, 3.0], vec![9.0, 7.0]);
        let x = s.solve_jacobi(100);
        assert!((x[0] - 20.0 / 11.0).abs() < 1e-9);
        assert!((x[1] - 19.0 / 11.0).abs() < 1e-9);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        assert_eq!(LinearSystem::random(5, 7), LinearSystem::random(5, 7));
        assert_ne!(LinearSystem::random(5, 7), LinearSystem::random(5, 8));
    }

    #[test]
    #[should_panic(expected = "must be n x n")]
    fn dimension_mismatch_panics() {
        let _ = LinearSystem::new(2, vec![1.0; 3], vec![0.0; 2]);
    }

    #[test]
    fn residual_of_exact_solution_is_zero() {
        let s = LinearSystem::new(2, vec![2.0, 0.0, 0.0, 2.0], vec![4.0, 6.0]);
        assert!(s.residual(&[2.0, 3.0]) < 1e-12);
    }
}
