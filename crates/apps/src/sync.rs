//! Synchronization variables on causal memory.
//!
//! §4.1 remarks that "special synchronization variables such as semaphores
//! or event counts may be used on causal memory but we prefer a simpler
//! approach" (the coordinator handshake). This module builds the variables
//! the paper waves at — event counts and a decentralized barrier — on top
//! of the plain [`SharedMemory`] interface, and shows why they are sound
//! on causal memory:
//!
//! *When a waiter observes an event count at value `r`, the observation
//! reads-from the owner's `r`-th advance, so everything the owner did
//! before advancing causally precedes the observation* — and the causal
//! DSM's invalidation-on-introduction then guarantees the waiter cannot go
//! on to read any value those earlier writes overwrote. That is exactly
//! the (1)–(5) chain the paper builds for its handshake, packaged as a
//! reusable primitive.

use memcore::{Location, MemoryError, SharedMemory, Word};

/// An *event count*: a monotone counter owned by one process, awaited by
/// any number of others.
///
/// Only the owner should call [`EventCount::advance`] (the location should
/// be owned by the advancing node for the advance to be message-free, and
/// single-writer keeps the count monotone).
///
/// # Examples
///
/// ```
/// use causal_dsm::CausalCluster;
/// use dsm_apps::EventCount;
/// use memcore::{Location, Word};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let cluster = CausalCluster::<Word>::builder(2, 2).build()?;
/// let ec_owner = EventCount::new(cluster.handle(0), Location::new(0));
/// let ec_waiter = EventCount::new(cluster.handle(1), Location::new(0));
///
/// ec_owner.advance()?; // free: P0 owns x0
/// assert_eq!(ec_waiter.await_at_least(1)?, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct EventCount<M> {
    mem: M,
    loc: Location,
}

impl<M: SharedMemory<Word>> EventCount<M> {
    /// Wraps the counter at `loc` (initially 0, the paper's initial
    /// value).
    #[must_use]
    pub fn new(mem: M, loc: Location) -> Self {
        EventCount { mem, loc }
    }

    /// The current value in this process's view.
    ///
    /// # Errors
    ///
    /// Propagates memory errors.
    ///
    /// # Panics
    ///
    /// Panics if the location holds a non-integer.
    pub fn current(&self) -> Result<i64, MemoryError> {
        Ok(self
            .mem
            .read(self.loc)?
            .as_int()
            .expect("event counts are integers"))
    }

    /// Increments the count (owner only). Returns the new value.
    ///
    /// # Errors
    ///
    /// Propagates memory errors.
    ///
    /// # Panics
    ///
    /// Panics if the location holds a non-integer.
    pub fn advance(&self) -> Result<i64, MemoryError> {
        let next = self.current()? + 1;
        self.mem.write(self.loc, Word::Int(next))?;
        Ok(next)
    }

    /// Blocks until the count reaches at least `target`, returning the
    /// observed value. Discards before re-reading, per the paper's
    /// liveness rule.
    ///
    /// # Errors
    ///
    /// Propagates memory errors.
    ///
    /// # Panics
    ///
    /// Panics if the location holds a non-integer.
    pub fn await_at_least(&self, target: i64) -> Result<i64, MemoryError> {
        let observed = self.mem.wait_until(self.loc, &|v: &Word| {
            v.as_int().is_some_and(|c| c >= target)
        })?;
        Ok(observed.as_int().expect("event counts are integers"))
    }
}

/// A decentralized phase barrier: `n` participants, each owning one event
/// count in a contiguous block of locations; crossing the barrier means
/// advancing your own count and awaiting everyone else's.
///
/// Unlike the paper's coordinator handshake (8 messages per worker per
/// phase through a central process), the decentralized barrier costs each
/// participant `2(n − 1)` messages per crossing under ideal signaling and
/// has no central bottleneck. Its correctness argument is the same
/// causality chain, peer to peer.
///
/// # Examples
///
/// ```
/// use causal_dsm::CausalCluster;
/// use dsm_apps::CausalBarrier;
/// use memcore::{Location, Word};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let cluster = CausalCluster::<Word>::builder(2, 2).build()?;
/// let mut barriers: Vec<_> = (0..2)
///     .map(|i| CausalBarrier::new(cluster.handle(i), Location::new(0), 2))
///     .collect();
/// let b1 = barriers.pop().unwrap();
/// let mut b0 = barriers.pop().unwrap();
/// let t = std::thread::spawn(move || {
///     let mut b1 = b1;
///     b1.enter().unwrap();
/// });
/// b0.enter()?;
/// t.join().unwrap();
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct CausalBarrier<M> {
    mem: M,
    base: Location,
    n: usize,
    me: usize,
    round: i64,
}

impl<M: SharedMemory<Word>> CausalBarrier<M> {
    /// A barrier over the `n` counters at `base..base+n`; this process's
    /// counter is selected by its node index. Counter `base + i` must be
    /// owned by participant `i` for advances to be message-free.
    ///
    /// # Panics
    ///
    /// Panics if this process's node index is not below `n`.
    #[must_use]
    pub fn new(mem: M, base: Location, n: usize) -> Self {
        let me = mem.node().index();
        assert!(me < n, "node outside the barrier's participant set");
        CausalBarrier {
            mem,
            base,
            n,
            me,
            round: 0,
        }
    }

    fn counter(&self, i: usize) -> Location {
        Location::new(self.base.index() as u32 + i as u32)
    }

    /// Completed barrier rounds.
    #[must_use]
    pub fn round(&self) -> i64 {
        self.round
    }

    /// Crosses the barrier: announce arrival, await everyone.
    ///
    /// On return, every participant has entered round `self.round()`, and
    /// — by the causal chain through their counters — all their writes
    /// from before entering are causally visible here.
    ///
    /// # Errors
    ///
    /// Propagates memory errors.
    pub fn enter(&mut self) -> Result<(), MemoryError> {
        self.round += 1;
        self.mem
            .write(self.counter(self.me), Word::Int(self.round))?;
        for i in 0..self.n {
            if i == self.me {
                continue;
            }
            let target = self.round;
            self.mem.wait_until(self.counter(i), &move |v: &Word| {
                v.as_int().is_some_and(|c| c >= target)
            })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use causal_dsm::CausalCluster;
    use memcore::NodeId;

    #[test]
    fn event_count_advances_and_wakes_waiters() {
        let cluster = CausalCluster::<Word>::builder(2, 2).build().unwrap();
        let owner = EventCount::new(cluster.handle(0), Location::new(0));
        let waiter = EventCount::new(cluster.handle(1), Location::new(0));
        assert_eq!(owner.current().unwrap(), 0);

        std::thread::scope(|scope| {
            scope.spawn(|| {
                for _ in 0..5 {
                    owner.advance().unwrap();
                }
            });
            scope.spawn(|| {
                assert!(waiter.await_at_least(5).unwrap() >= 5);
            });
        });
    }

    #[test]
    fn owner_advances_are_message_free() {
        let cluster = CausalCluster::<Word>::builder(2, 2).build().unwrap();
        let owner = EventCount::new(cluster.handle(0), Location::new(0));
        for _ in 0..10 {
            owner.advance().unwrap();
        }
        assert_eq!(cluster.messages().snapshot().total(), 0);
    }

    #[test]
    fn barrier_makes_pre_barrier_writes_visible() {
        // The §4.1 argument, decentralized: after crossing the barrier,
        // each participant must observe the others' pre-barrier writes.
        const N: usize = 3;
        const ROUNDS: i64 = 10;
        // Layout: counters at 0..3 (owned by their nodes, round-robin),
        // data at 3..6 (data[i] = loc 3+i, owned by node (3+i)%3 = i).
        let cluster = CausalCluster::<Word>::builder(N as u32, 6).build().unwrap();
        std::thread::scope(|scope| {
            for node in 0..N as u32 {
                let handle = cluster.handle(node);
                scope.spawn(move || {
                    let data = |i: usize| Location::new(3 + i as u32);
                    let mut barrier = CausalBarrier::new(handle.clone(), Location::new(0), N);
                    for round in 1..=ROUNDS {
                        handle.write(data(node as usize), Word::Int(round)).unwrap();
                        barrier.enter().unwrap();
                        for peer in 0..N {
                            let seen = handle.read_fresh(data(peer)).unwrap().as_int().unwrap();
                            assert!(
                                seen >= round,
                                "node {node} round {round}: peer {peer} shows {seen}"
                            );
                        }
                    }
                    assert_eq!(barrier.round(), ROUNDS);
                });
            }
        });
    }

    #[test]
    #[should_panic(expected = "outside the barrier")]
    fn barrier_rejects_foreign_nodes() {
        let cluster = CausalCluster::<Word>::builder(3, 3).build().unwrap();
        let handle = cluster.handle(2);
        let _ = CausalBarrier::new(handle, Location::new(0), 2);
    }

    #[test]
    fn event_count_works_on_atomic_memory_too() {
        // The primitives are SharedMemory-generic, per the paper's theme.
        use atomic_dsm::{AtomicCluster, InvalMode};
        let cluster = AtomicCluster::<Word>::builder(2, 2)
            .configure(|c| c.inval_mode(InvalMode::Acknowledged))
            .build()
            .unwrap();
        let owner = EventCount::new(cluster.handle(0), Location::new(0));
        let waiter = EventCount::new(cluster.handle(1), Location::new(0));
        owner.advance().unwrap();
        owner.advance().unwrap();
        assert!(waiter.await_at_least(2).unwrap() >= 2);
        let _ = NodeId::new(0);
    }
}
