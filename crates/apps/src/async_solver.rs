//! The asynchronous solver variant (§4.1, last paragraph).
//!
//! "It is possible to eliminate the synchronization entirely by using an
//! *asynchronous* algorithm": workers iterate freely, each round reading
//! whatever vector values are available (refreshing its cache with
//! `discard`) and writing its own component, with no handshakes and no
//! coordinator. For strictly diagonally dominant systems this chaotic
//! relaxation still converges (Chazan–Miranker), and on causal memory it
//! costs `2(n−1)` messages per worker per round — strictly less than the
//! synchronous solver's `2n + 6`.

use std::sync::Arc;

use causal_dsm::CausalConfig;
use dsm_sim::{causal_sim, Actor, Client, ClientOp, Outcome, RunLimits, SimOpts};
use memcore::{Location, MemoryError, SharedMemory, StatsSnapshot, Word};
use simnet::latency::Constant;

use crate::system::LinearSystem;

/// The async solver's layout: just the vector, `x_i` at location `i`
/// owned by `P_i` (round-robin with `n` nodes does exactly that).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AsyncLayout {
    n: usize,
}

impl AsyncLayout {
    /// Layout for `n` workers.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(n >= 2, "solver needs at least two workers");
        AsyncLayout { n }
    }

    /// Number of workers.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.n
    }

    /// Location of `x_i`.
    #[must_use]
    pub fn x(&self, i: usize) -> Location {
        Location::new(i as u32)
    }
}

/// Runs one asynchronous worker on any shared memory (blocking; one
/// thread per worker). Returns its final component value.
///
/// # Errors
///
/// Propagates memory errors.
///
/// # Panics
///
/// Panics if the memory returns a non-float.
pub fn run_async_worker<M: SharedMemory<Word>>(
    mem: &M,
    layout: &AsyncLayout,
    system: &Arc<LinearSystem>,
    i: usize,
    rounds: usize,
) -> Result<f64, MemoryError> {
    let n = layout.workers();
    let mut x = vec![0.0; n];
    let mut t_i = 0.0;
    for _ in 0..rounds {
        for (j, slot) in x.iter_mut().enumerate() {
            let w = if j == i {
                mem.read(layout.x(j))?
            } else {
                // No handshake invalidates our cache; refresh explicitly.
                mem.read_fresh(layout.x(j))?
            };
            *slot = w.as_float().expect("solver locations hold floats");
        }
        t_i = system.jacobi_step(i, &x);
        mem.write(layout.x(i), Word::Float(t_i))?;
    }
    Ok(t_i)
}

enum AStep {
    ReadX { j: usize },
    WriteX,
    Done,
}

/// One asynchronous worker as a simulator client.
pub struct AsyncWorker {
    layout: AsyncLayout,
    system: Arc<LinearSystem>,
    i: usize,
    rounds_left: usize,
    step: AStep,
    x: Vec<f64>,
}

impl AsyncWorker {
    /// Worker `i` running `rounds` chaotic-relaxation rounds.
    #[must_use]
    pub fn new(layout: AsyncLayout, system: Arc<LinearSystem>, i: usize, rounds: usize) -> Self {
        let n = layout.workers();
        AsyncWorker {
            layout,
            system,
            i,
            rounds_left: rounds,
            step: AStep::ReadX { j: 0 },
            x: vec![0.0; n],
        }
    }
}

impl Client<Word> for AsyncWorker {
    fn next(&mut self, last: Option<&Outcome<Word>>) -> Option<ClientOp<Word>> {
        let n = self.layout.workers();
        loop {
            match self.step {
                AStep::ReadX { j } => {
                    if let Some(prev) = j.checked_sub(1) {
                        self.x[prev] = match last {
                            Some(Outcome::Read { value, .. }) => value.as_float().expect("floats"),
                            other => panic!("expected read outcome, got {other:?}"),
                        };
                    }
                    if j < n {
                        self.step = AStep::ReadX { j: j + 1 };
                        return Some(if j == self.i {
                            ClientOp::Read(self.layout.x(j))
                        } else {
                            ClientOp::ReadFresh(self.layout.x(j))
                        });
                    }
                    self.step = AStep::WriteX;
                }
                AStep::WriteX => {
                    let t_i = self.system.jacobi_step(self.i, &self.x);
                    self.rounds_left -= 1;
                    self.step = if self.rounds_left == 0 {
                        AStep::Done
                    } else {
                        AStep::ReadX { j: 0 }
                    };
                    return Some(ClientOp::Write(self.layout.x(self.i), Word::Float(t_i)));
                }
                AStep::Done => return None,
            }
        }
    }
}

/// The outcome of a simulated asynchronous solve.
#[derive(Clone, Debug)]
pub struct AsyncRun {
    /// All protocol messages.
    pub messages: StatsSnapshot,
    /// The final vector.
    pub x: Vec<f64>,
    /// `‖Ax − b‖∞` of the final vector.
    pub residual: f64,
    /// Simulated makespan.
    pub time: u64,
    /// Whether every worker finished its rounds.
    pub all_done: bool,
}

/// Runs the asynchronous solver on the simulated causal DSM.
#[must_use]
pub fn run_async_solver_sim(
    system: &LinearSystem,
    workers: usize,
    rounds: usize,
    latency: u64,
    seed: u64,
) -> AsyncRun {
    let layout = AsyncLayout::new(workers);
    let config = CausalConfig::<Word>::builder(workers as u32, workers as u32).build();
    let mut sim = causal_sim(
        &config,
        SimOpts {
            latency: Box::new(Constant::new(latency)),
            seed,
            ..SimOpts::default()
        },
    );
    let system_arc = Arc::new(system.clone());
    for i in 0..workers {
        sim.set_client(
            i,
            AsyncWorker::new(layout, Arc::clone(&system_arc), i, rounds),
        );
    }
    let report = sim.run(RunLimits::default());
    let x: Vec<f64> = (0..workers)
        .map(|i| {
            sim.actor(i)
                .peek(layout.x(i))
                .and_then(Word::as_float)
                .unwrap_or(f64::NAN)
        })
        .collect();
    AsyncRun {
        messages: sim.messages().snapshot(),
        residual: system.residual(&x),
        x,
        time: report.time,
        all_done: report.all_done,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn async_solver_converges_without_synchronization() {
        let system = LinearSystem::random(4, 21);
        let run = run_async_solver_sim(&system, 4, 60, 1, 0);
        assert!(run.all_done);
        assert!(
            run.residual < 1e-6,
            "residual {} after 60 chaotic rounds",
            run.residual
        );
    }

    #[test]
    fn async_costs_exactly_2n_minus_2_per_worker_per_round() {
        let n = 5;
        let system = LinearSystem::random(n, 22);
        let short = run_async_solver_sim(&system, n, 4, 1, 0).messages.total();
        let long = run_async_solver_sim(&system, n, 8, 1, 0).messages.total();
        let per_worker_per_round = (long - short) as f64 / 4.0 / n as f64;
        assert!(
            (per_worker_per_round - (2 * n - 2) as f64).abs() < 1e-9,
            "measured {per_worker_per_round}"
        );
    }

    #[test]
    fn async_beats_synchronous_on_messages() {
        use crate::solver_sim::{run_causal_solver_sim, SolverSimConfig};
        let n = 4;
        let system = LinearSystem::random(n, 23);
        let rounds = 10;
        let sync_run = run_causal_solver_sim(
            &system,
            &SolverSimConfig {
                workers: n,
                phases: rounds,
                ..SolverSimConfig::default()
            },
        );
        let async_run = run_async_solver_sim(&system, n, rounds, 1, 0);
        assert!(async_run.messages.total() < sync_run.messages.total());
    }

    #[test]
    fn run_async_worker_threaded_single_round() {
        // Smoke-test the blocking variant on the threaded causal engine.
        use causal_dsm::CausalCluster;
        let n = 3;
        let system = Arc::new(LinearSystem::random(n, 24));
        let layout = AsyncLayout::new(n);
        let cluster = CausalCluster::<Word>::builder(n as u32, n as u32)
            .build()
            .unwrap();
        let mut threads = Vec::new();
        for i in 0..n {
            let mem = cluster.handle(i as u32);
            let system = Arc::clone(&system);
            threads.push(std::thread::spawn(move || {
                run_async_worker(&mem, &layout, &system, i, 30).unwrap()
            }));
        }
        for t in threads {
            t.join().unwrap();
        }
        let x: Vec<f64> = (0..n)
            .map(|i| {
                cluster
                    .handle(i as u32)
                    .read(layout.x(i))
                    .unwrap()
                    .as_float()
                    .unwrap()
            })
            .collect();
        assert!(
            system.residual(&x) < 1e-6,
            "residual {}",
            system.residual(&x)
        );
    }
}
