//! The paper's applications (§4), written once against
//! [`memcore::SharedMemory`] and run unchanged on causal and atomic DSM.
//!
//! * [`run_worker`] / [`run_coordinator`] — the Figure-6 synchronous
//!   iterative linear solver, blocking (thread-per-process) form;
//!   [`SolverWorker`] / [`SolverCoordinator`] — the same programs as
//!   simulator clients, used by the E6 message-count experiment
//!   ([`run_causal_solver_sim`] / [`run_atomic_solver_sim`]).
//! * [`run_async_worker`] / [`AsyncWorker`] — the asynchronous,
//!   handshake-free solver variant (§4.1 last paragraph, E7).
//! * [`Dictionary`] — the §4.2 distributed dictionary, a veneer over the
//!   typed object layer's observed-remove set (`dsm-objects`), relying on
//!   the causal engine's owner-favored write policy (E8).
//! * [`WorkloadSpec`] — synthetic read/write mixes for throughput benches.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod async_solver;
mod dict_sim;
mod dictionary;
mod solver;
mod solver_sim;
mod sync;
mod system;
mod workload;

pub use async_solver::{
    run_async_solver_sim, run_async_worker, AsyncLayout, AsyncRun, AsyncWorker,
};
pub use dict_sim::{DictClient, DictOp, DictResults};
pub use dictionary::{DictLayout, Dictionary};
pub use solver::{publish_system, run_coordinator, run_worker, SolverLayout};
pub use solver_sim::{
    run_atomic_solver_sim, run_broadcast_solver_sim, run_causal_solver_sim, SolverCoordinator,
    SolverRun, SolverSimConfig, SolverWorker,
};
pub use sync::{CausalBarrier, EventCount};
pub use system::LinearSystem;
pub use workload::{WorkloadOp, WorkloadSpec};
