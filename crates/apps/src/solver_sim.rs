//! The Figure-6 solver as simulator client programs — the E6 message-count
//! experiment.
//!
//! Workers and coordinator are expressed as resumable state machines for
//! the deterministic simulator, which counts every protocol message. The
//! same clients run against the causal and the atomic protocol; the
//! harness reports messages per processor per phase next to the paper's
//! analytic `2n + 6` and `≥ 3n + 5`.

use std::sync::Arc;

use atomic_dsm::{AtomicConfig, InvalMode};
use causal_dsm::CausalConfig;
use dsm_sim::{
    atomic_sim, causal_sim, Actor, Client, ClientOp, Outcome, RunLimits, SimOpts, WaitMode,
};
use memcore::{StatsSnapshot, Word};
use simnet::latency::Constant;

use crate::solver::SolverLayout;
use crate::system::LinearSystem;

/// Parameters of one simulated solver run.
#[derive(Clone, Debug)]
pub struct SolverSimConfig {
    /// Number of worker processes (one vector component each).
    pub workers: usize,
    /// Synchronous phases to run.
    pub phases: usize,
    /// Wait re-read policy (ideal signaling reproduces the paper's
    /// counts; polling measures honest spinning).
    pub wait_mode: WaitMode,
    /// Mark the `A`/`b` pages constant (the paper's footnote-2
    /// enhancement). Ablation A3 turns this off.
    pub const_ab: bool,
    /// Link latency (time units, constant).
    pub latency: u64,
    /// Scheduler seed.
    pub seed: u64,
}

impl Default for SolverSimConfig {
    fn default() -> Self {
        SolverSimConfig {
            workers: 4,
            phases: 6,
            wait_mode: WaitMode::IdealSignal,
            const_ab: true,
            latency: 1,
            seed: 0,
        }
    }
}

/// The outcome of one simulated solver run.
#[derive(Clone, Debug)]
pub struct SolverRun {
    /// All protocol messages, per (node, kind).
    pub messages: StatsSnapshot,
    /// Approximate wire bytes, per (node, kind).
    pub bytes: StatsSnapshot,
    /// The final solution vector, peeked from each worker's owned `x_i`.
    pub x: Vec<f64>,
    /// `‖Ax − b‖∞` of the final vector.
    pub residual: f64,
    /// Simulated makespan.
    pub time: u64,
    /// Whether every process ran to completion.
    pub all_done: bool,
}

impl SolverRun {
    /// Messages per worker per phase — the paper's §4.1 quantity.
    /// Coordinator traffic is attributed to the workers it serves, as in
    /// the paper.
    #[must_use]
    pub fn messages_per_worker_per_phase(&self, workers: usize, phases: usize) -> f64 {
        self.messages.total() as f64 / (workers as f64 * phases as f64)
    }
}

enum WStep {
    WaitReady,
    LoadA { j: usize },
    LoadB,
    ReadX { j: usize },
    SetComplete,
    WaitCompleteF,
    WriteX,
    SetChanged,
    WaitChangedF,
    Done,
}

/// Worker `P_i` of Figure 6, as a simulator client.
pub struct SolverWorker {
    layout: SolverLayout,
    i: usize,
    phases_left: usize,
    step: WStep,
    a_row: Vec<f64>,
    b_i: f64,
    x: Vec<f64>,
    t_i: f64,
}

impl SolverWorker {
    /// Worker `i` running `phases` iterations.
    #[must_use]
    pub fn new(layout: SolverLayout, i: usize, phases: usize) -> Self {
        let n = layout.workers();
        SolverWorker {
            layout,
            i,
            phases_left: phases,
            step: WStep::WaitReady,
            a_row: vec![0.0; n],
            b_i: 0.0,
            x: vec![0.0; n],
            t_i: 0.0,
        }
    }

    fn float_of(last: Option<&Outcome<Word>>) -> f64 {
        match last {
            Some(Outcome::Read { value, .. }) => {
                value.as_float().expect("solver locations hold floats")
            }
            other => panic!("expected read outcome, got {other:?}"),
        }
    }
}

impl Client<Word> for SolverWorker {
    fn next(&mut self, last: Option<&Outcome<Word>>) -> Option<ClientOp<Word>> {
        let n = self.layout.workers();
        loop {
            match self.step {
                WStep::WaitReady => {
                    self.step = WStep::LoadA { j: 0 };
                    return Some(ClientOp::wait_until(self.layout.ready(), |v: &Word| {
                        v.as_bool() == Some(true)
                    }));
                }
                // A and b are read from shared memory every phase, as the
                // program's update rule requires; with the pages marked
                // constant these are cache hits after the first phase
                // (footnote 2), otherwise they are re-fetched (ablation
                // A3).
                WStep::LoadA { j } => {
                    if let Some(prev) = j.checked_sub(1) {
                        self.a_row[prev] = Self::float_of(last);
                    }
                    if j < n {
                        self.step = WStep::LoadA { j: j + 1 };
                        return Some(ClientOp::Read(self.layout.a(self.i, j)));
                    }
                    self.step = WStep::LoadB;
                    return Some(ClientOp::Read(self.layout.b(self.i)));
                }
                WStep::LoadB => {
                    self.b_i = Self::float_of(last);
                    if self.phases_left == 0 {
                        self.step = WStep::Done;
                        continue;
                    }
                    self.step = WStep::ReadX { j: 0 };
                }
                WStep::ReadX { j } => {
                    if let Some(prev) = j.checked_sub(1) {
                        self.x[prev] = Self::float_of(last);
                    }
                    if j < n {
                        self.step = WStep::ReadX { j: j + 1 };
                        return Some(ClientOp::Read(self.layout.x(j)));
                    }
                    // Compute t_i = (b_i − Σ_{j≠i} a_ij x_j) / a_ii.
                    let mut sum = self.b_i;
                    for (j, (&a, &xv)) in self.a_row.iter().zip(&self.x).enumerate() {
                        if j != self.i {
                            sum -= a * xv;
                        }
                    }
                    self.t_i = sum / self.a_row[self.i];
                    self.step = WStep::SetComplete;
                }
                WStep::SetComplete => {
                    self.step = WStep::WaitCompleteF;
                    return Some(ClientOp::Write(
                        self.layout.complete(self.i),
                        Word::Bool(true),
                    ));
                }
                WStep::WaitCompleteF => {
                    self.step = WStep::WriteX;
                    return Some(ClientOp::wait_until(
                        self.layout.complete(self.i),
                        |v: &Word| v.as_bool() == Some(false),
                    ));
                }
                WStep::WriteX => {
                    self.step = WStep::SetChanged;
                    return Some(ClientOp::Write(
                        self.layout.x(self.i),
                        Word::Float(self.t_i),
                    ));
                }
                WStep::SetChanged => {
                    self.step = WStep::WaitChangedF;
                    return Some(ClientOp::Write(
                        self.layout.changed(self.i),
                        Word::Bool(true),
                    ));
                }
                WStep::WaitChangedF => {
                    self.phases_left -= 1;
                    self.step = if self.phases_left == 0 {
                        WStep::Done
                    } else {
                        // Next phase re-reads A and b (hits when const).
                        WStep::LoadA { j: 0 }
                    };
                    return Some(ClientOp::wait_until(
                        self.layout.changed(self.i),
                        |v: &Word| v.as_bool() == Some(false),
                    ));
                }
                WStep::Done => return None,
            }
        }
    }
}

enum CStep {
    Publish { idx: usize },
    SetReady,
    WaitComplete { i: usize },
    ResetComplete { i: usize },
    WaitChanged { i: usize },
    ResetChanged { i: usize },
}

/// The coordinator of Figure 6, as a simulator client. Also publishes `A`
/// and `b` (which it owns) before the first phase.
pub struct SolverCoordinator {
    layout: SolverLayout,
    system: Arc<LinearSystem>,
    phases_left: usize,
    step: CStep,
    ready_written: bool,
}

impl SolverCoordinator {
    /// A coordinator for `phases` iterations of `system`.
    #[must_use]
    pub fn new(layout: SolverLayout, system: Arc<LinearSystem>, phases: usize) -> Self {
        SolverCoordinator {
            layout,
            system,
            phases_left: phases,
            step: CStep::Publish { idx: 0 },
            ready_written: false,
        }
    }

    fn publish_op(&self, idx: usize) -> Option<ClientOp<Word>> {
        let n = self.layout.workers();
        if idx < n * n {
            let (i, j) = (idx / n, idx % n);
            Some(ClientOp::Write(
                self.layout.a(i, j),
                Word::Float(self.system.a(i, j)),
            ))
        } else if idx < n * n + n {
            let i = idx - n * n;
            Some(ClientOp::Write(
                self.layout.b(i),
                Word::Float(self.system.b(i)),
            ))
        } else {
            None
        }
    }
}

impl Client<Word> for SolverCoordinator {
    fn next(&mut self, _last: Option<&Outcome<Word>>) -> Option<ClientOp<Word>> {
        let n = self.layout.workers();
        loop {
            match self.step {
                CStep::Publish { idx } => {
                    if let Some(op) = self.publish_op(idx) {
                        self.step = CStep::Publish { idx: idx + 1 };
                        return Some(op);
                    }
                    if !self.ready_written {
                        self.step = CStep::SetReady;
                        continue;
                    }
                    if self.phases_left == 0 {
                        return None;
                    }
                    self.step = CStep::WaitComplete { i: 0 };
                }
                CStep::SetReady => {
                    self.ready_written = true;
                    self.step = if self.phases_left == 0 {
                        CStep::Publish { idx: usize::MAX }
                    } else {
                        CStep::WaitComplete { i: 0 }
                    };
                    return Some(ClientOp::Write(self.layout.ready(), Word::Bool(true)));
                }
                CStep::WaitComplete { i } => {
                    if i < n {
                        self.step = CStep::WaitComplete { i: i + 1 };
                        return Some(ClientOp::wait_until(self.layout.complete(i), |v: &Word| {
                            v.as_bool() == Some(true)
                        }));
                    }
                    self.step = CStep::ResetComplete { i: 0 };
                }
                CStep::ResetComplete { i } => {
                    if i < n {
                        self.step = CStep::ResetComplete { i: i + 1 };
                        return Some(ClientOp::Write(self.layout.complete(i), Word::Bool(false)));
                    }
                    self.step = CStep::WaitChanged { i: 0 };
                }
                CStep::WaitChanged { i } => {
                    if i < n {
                        self.step = CStep::WaitChanged { i: i + 1 };
                        return Some(ClientOp::wait_until(self.layout.changed(i), |v: &Word| {
                            v.as_bool() == Some(true)
                        }));
                    }
                    self.step = CStep::ResetChanged { i: 0 };
                }
                CStep::ResetChanged { i } => {
                    if i < n {
                        self.step = CStep::ResetChanged { i: i + 1 };
                        return Some(ClientOp::Write(self.layout.changed(i), Word::Bool(false)));
                    }
                    self.phases_left -= 1;
                    self.step = CStep::Publish {
                        idx: usize::MAX, // exhausted: falls through to the
                                         // next phase or termination
                    };
                }
            }
        }
    }
}

/// Runs the synchronous solver on the simulated **causal** DSM.
#[must_use]
pub fn run_causal_solver_sim(system: &LinearSystem, cfg: &SolverSimConfig) -> SolverRun {
    let layout = SolverLayout::new(cfg.workers);
    let mut builder =
        CausalConfig::<Word>::builder(layout.nodes(), layout.locations()).owners(layout.owners());
    if cfg.const_ab {
        builder = builder.const_pages(layout.const_pages());
    }
    let config = builder.build();
    let mut sim = causal_sim(
        &config,
        SimOpts {
            latency: Box::new(Constant::new(cfg.latency)),
            seed: cfg.seed,
            wait_mode: cfg.wait_mode,
            recorder: None,
            faults: None,
        },
    );
    install_clients(&mut sim, &layout, system, cfg);
    finish(sim, &layout, system)
}

/// Runs the synchronous solver on the simulated **causal-broadcast**
/// replica memory — the full-replication comparator. The same client
/// programs run unchanged: reads are local (causal delivery guarantees
/// each phase's vector updates arrive before the handshake that releases
/// the next phase), but every write costs `n` update messages.
#[must_use]
pub fn run_broadcast_solver_sim(system: &LinearSystem, cfg: &SolverSimConfig) -> SolverRun {
    let layout = SolverLayout::new(cfg.workers);
    let mut sim = dsm_sim::broadcast_sim::<Word>(
        layout.nodes(),
        layout.locations(),
        SimOpts {
            latency: Box::new(Constant::new(cfg.latency)),
            seed: cfg.seed,
            wait_mode: cfg.wait_mode,
            recorder: None,
            faults: None,
        },
    );
    install_clients(&mut sim, &layout, system, cfg);
    finish(sim, &layout, system)
}

/// Runs the synchronous solver on the simulated **atomic** DSM.
#[must_use]
pub fn run_atomic_solver_sim(
    system: &LinearSystem,
    cfg: &SolverSimConfig,
    inval_mode: InvalMode,
) -> SolverRun {
    let layout = SolverLayout::new(cfg.workers);
    let config = AtomicConfig::<Word>::builder(layout.nodes(), layout.locations())
        .owners(layout.owners())
        .inval_mode(inval_mode)
        .build();
    let mut sim = atomic_sim(
        &config,
        SimOpts {
            latency: Box::new(Constant::new(cfg.latency)),
            seed: cfg.seed,
            wait_mode: cfg.wait_mode,
            recorder: None,
            faults: None,
        },
    );
    install_clients(&mut sim, &layout, system, cfg);
    finish(sim, &layout, system)
}

fn install_clients<A: Actor<Word>>(
    sim: &mut dsm_sim::Sim<Word, A>,
    layout: &SolverLayout,
    system: &LinearSystem,
    cfg: &SolverSimConfig,
) {
    let system = Arc::new(system.clone());
    for i in 0..layout.workers() {
        sim.set_client(i, SolverWorker::new(*layout, i, cfg.phases));
    }
    sim.set_client(
        layout.workers(),
        SolverCoordinator::new(*layout, system, cfg.phases),
    );
}

fn finish<A: Actor<Word>>(
    mut sim: dsm_sim::Sim<Word, A>,
    layout: &SolverLayout,
    system: &LinearSystem,
) -> SolverRun {
    let report = sim.run(RunLimits::default());
    let x: Vec<f64> = (0..layout.workers())
        .map(|i| {
            sim.actor(i)
                .peek(layout.x(i))
                .and_then(Word::as_float)
                .unwrap_or(f64::NAN)
        })
        .collect();
    SolverRun {
        messages: sim.messages().snapshot(),
        bytes: sim.bytes().snapshot(),
        residual: system.residual(&x),
        x,
        time: report.time,
        all_done: report.all_done,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn causal_solver_converges_in_simulation() {
        let system = LinearSystem::random(4, 11);
        let cfg = SolverSimConfig {
            workers: 4,
            phases: 40,
            ..SolverSimConfig::default()
        };
        let run = run_causal_solver_sim(&system, &cfg);
        assert!(run.all_done, "stuck: {run:?}");
        let reference = system.solve_jacobi(40);
        for (got, want) in run.x.iter().zip(&reference) {
            assert!(
                (got - want).abs() < 1e-9,
                "simulated {got} vs reference {want}"
            );
        }
    }

    #[test]
    fn atomic_solver_converges_in_simulation() {
        let system = LinearSystem::random(3, 12);
        let cfg = SolverSimConfig {
            workers: 3,
            phases: 40,
            ..SolverSimConfig::default()
        };
        let run = run_atomic_solver_sim(&system, &cfg, InvalMode::Acknowledged);
        assert!(run.all_done, "stuck: {run:?}");
        let reference = system.solve_jacobi(40);
        for (got, want) in run.x.iter().zip(&reference) {
            assert!((got - want).abs() < 1e-9);
        }
    }

    #[test]
    fn broadcast_solver_converges_in_simulation() {
        // The same client programs on full-replication broadcast memory.
        let system = LinearSystem::random(4, 15);
        let cfg = SolverSimConfig {
            workers: 4,
            phases: 40,
            ..SolverSimConfig::default()
        };
        let run = run_broadcast_solver_sim(&system, &cfg);
        assert!(run.all_done, "stuck: {run:?}");
        let reference = system.solve_jacobi(40);
        for (got, want) in run.x.iter().zip(&reference) {
            assert!(
                (got - want).abs() < 1e-9,
                "broadcast {got} vs reference {want}"
            );
        }
    }

    #[test]
    fn broadcast_costs_more_than_causal_at_scale() {
        let n = 6;
        let system = LinearSystem::random(n, 16);
        let cfg = |phases| SolverSimConfig {
            workers: n,
            phases,
            ..SolverSimConfig::default()
        };
        let causal = run_causal_solver_sim(&system, &cfg(8)).messages.total()
            - run_causal_solver_sim(&system, &cfg(4)).messages.total();
        let broadcast = run_broadcast_solver_sim(&system, &cfg(8)).messages.total()
            - run_broadcast_solver_sim(&system, &cfg(4)).messages.total();
        assert!(
            broadcast > causal,
            "full replication ({broadcast}) should cost more than the owner \
             protocol ({causal}) per steady-state phase"
        );
    }

    #[test]
    fn causal_message_count_matches_the_papers_formula() {
        // Paper §4.1: 2n + 6 messages per processor per iteration on
        // causal memory, under ideal signaling. Measure steady state by
        // differencing two run lengths.
        let n = 4;
        let system = LinearSystem::random(n, 13);
        let runs = |phases: usize| {
            let cfg = SolverSimConfig {
                workers: n,
                phases,
                ..SolverSimConfig::default()
            };
            run_causal_solver_sim(&system, &cfg).messages.total()
        };
        let (short, long) = (runs(4), runs(8));
        let per_phase = (long - short) as f64 / 4.0;
        let per_worker_per_phase = per_phase / n as f64;
        let expected = (2 * n + 6) as f64;
        assert!(
            (per_worker_per_phase - expected).abs() < 1e-9,
            "measured {per_worker_per_phase}, paper says {expected}"
        );
    }

    #[test]
    fn atomic_solver_costs_at_least_3n_plus_5() {
        let n = 4;
        let system = LinearSystem::random(n, 14);
        let runs = |phases: usize| {
            let cfg = SolverSimConfig {
                workers: n,
                phases,
                ..SolverSimConfig::default()
            };
            run_atomic_solver_sim(&system, &cfg, InvalMode::FireAndForget)
                .messages
                .total()
        };
        let (short, long) = (runs(4), runs(8));
        let per_worker_per_phase = (long - short) as f64 / 4.0 / n as f64;
        let bound = (3 * n + 5) as f64;
        assert!(
            per_worker_per_phase >= bound - 1e-9,
            "measured {per_worker_per_phase}, paper bound {bound}"
        );
        // And causal strictly beats atomic.
        let causal = {
            let cfg = SolverSimConfig {
                workers: n,
                phases: 8,
                ..SolverSimConfig::default()
            };
            run_causal_solver_sim(&system, &cfg).messages.total()
        };
        assert!(causal < long);
    }
}
