//! The §4.2 dictionary as a simulator client — lets the deterministic
//! scheduler drive dictionary workloads under controlled/adversarial
//! interleavings, with the recorded execution checked against the
//! specification.
//!
//! Since PR 10 the client is an adapter over the typed object layer's
//! [`ObjectClient`]: each [`DictOp`] maps onto its observed-remove-set
//! counterpart ([`ObjOp::SetAdd`]/[`ObjOp::SetRemove`]/
//! [`ObjOp::SetContains`]/[`ObjOp::Refresh`]), and finished results flow
//! back through the object client's finish hook. The register accesses
//! issued are exactly those of the retired hand-rolled state machine
//! (pinned by `tests/dict_port.rs`).

use std::sync::Arc;

use dsm_objects::{ObjOp, ObjRet, ObjVal, ObjectClient, PolicyKind};
use dsm_sim::{Client, ClientOp, Outcome};
use parking_lot::Mutex;

use crate::dictionary::DictLayout;

/// One high-level dictionary operation for a scripted process.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DictOp {
    /// Insert an item into this process's own row.
    Insert(i64),
    /// Delete an item wherever this process's view finds it.
    Delete(i64),
    /// Look an item up in this process's view.
    Lookup(i64),
    /// Discard all cached (non-owned) slots, restoring view liveness.
    Refresh,
}

impl DictOp {
    /// The observed-remove-set operation this dictionary op lowers to.
    #[must_use]
    pub fn to_obj(self) -> ObjOp {
        match self {
            DictOp::Insert(v) => ObjOp::SetAdd(v),
            DictOp::Delete(v) => ObjOp::SetRemove(v),
            DictOp::Lookup(v) => ObjOp::SetContains(v),
            DictOp::Refresh => ObjOp::Refresh,
        }
    }

    fn from_obj(op: ObjOp) -> Option<Self> {
        match op {
            ObjOp::SetAdd(v) => Some(DictOp::Insert(v)),
            ObjOp::SetRemove(v) => Some(DictOp::Delete(v)),
            ObjOp::SetContains(v) => Some(DictOp::Lookup(v)),
            ObjOp::Refresh => Some(DictOp::Refresh),
            _ => None,
        }
    }
}

/// The boolean results of each completed [`DictOp`], in script order
/// (`Refresh` records `true`).
pub type DictResults = Arc<Mutex<Vec<(DictOp, bool)>>>;

/// A scripted dictionary process for the deterministic simulator.
///
/// Scans are performed exactly as [`Dictionary`](crate::Dictionary) does
/// on the threaded engine: row-major reads, first match wins, inserts
/// confined to the owner's row.
pub struct DictClient {
    inner: ObjectClient,
}

impl DictClient {
    /// A client for process `row`, running `script`; outcomes are pushed
    /// into `results`.
    #[must_use]
    pub fn new(layout: DictLayout, row: usize, script: Vec<DictOp>, results: DictResults) -> Self {
        assert!(row < layout.rows(), "row out of range");
        let lowered = script.into_iter().map(DictOp::to_obj).collect();
        let inner = ObjectClient::new(layout, row, lowered, PolicyKind::LastWriter)
            .with_finish_hook(Box::new(move |op, ret| {
                if let Some(op) = DictOp::from_obj(op) {
                    let ok = match ret {
                        ObjRet::Bool(b) => b,
                        _ => true, // Refresh returns Unit; record `true`.
                    };
                    results.lock().push((op, ok));
                }
            }));
        DictClient { inner }
    }
}

impl Client<ObjVal> for DictClient {
    fn next(&mut self, last: Option<&Outcome<ObjVal>>) -> Option<ClientOp<ObjVal>> {
        self.inner.next(last)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use causal_dsm::{CausalConfig, WritePolicy};
    use causal_spec::{check_causal, Execution};
    use dsm_sim::{causal_sim, Actor, RunLimits, SimOpts};
    use memcore::Recorder;
    use simnet::latency::Uniform;

    fn results() -> DictResults {
        Arc::new(Mutex::new(Vec::new()))
    }

    struct ScriptRun {
        log: Vec<(DictOp, bool)>,
        slots: Vec<Option<ObjVal>>,
        exec: Execution<ObjVal>,
    }

    fn run_scripts(layout: DictLayout, scripts: Vec<Vec<DictOp>>, seed: u64) -> ScriptRun {
        let recorder: Recorder<ObjVal> = Recorder::new(layout.rows());
        let config = CausalConfig::<ObjVal>::builder(layout.rows() as u32, layout.locations())
            .owners(layout.owners())
            .policy(WritePolicy::OwnerFavored)
            .build();
        let mut sim = causal_sim(
            &config,
            SimOpts {
                latency: Box::new(Uniform::new(1, 12)),
                seed,
                recorder: Some(recorder.clone()),
                ..SimOpts::default()
            },
        );
        let shared = results();
        for (row, script) in scripts.into_iter().enumerate() {
            sim.set_client(row, DictClient::new(layout, row, script, shared.clone()));
        }
        let report = sim.run(RunLimits::default());
        assert!(report.all_done, "{report:?}");
        // Ground truth: owner copies of every slot.
        let slots = (0..layout.rows() * layout.cols())
            .map(|flat| {
                let row = flat / layout.cols();
                sim.actor(row).peek(layout.slot(row, flat % layout.cols()))
            })
            .collect();
        let log = shared.lock().clone();
        ScriptRun {
            log,
            slots,
            exec: Execution::from_recorder(&recorder),
        }
    }

    #[test]
    fn scripted_insert_lookup_delete_flow() {
        let layout = DictLayout::new(2, 4);
        let ScriptRun { log, slots, exec } = run_scripts(
            layout,
            vec![
                vec![DictOp::Insert(10), DictOp::Lookup(10)],
                vec![DictOp::Refresh, DictOp::Lookup(10)],
            ],
            0,
        );
        // P0's insert and own lookup must succeed.
        assert!(log.contains(&(DictOp::Insert(10), true)));
        assert_eq!(
            log.iter()
                .filter(|(op, _)| *op == DictOp::Lookup(10))
                .count(),
            2
        );
        // The item sits in P0's row at the owner.
        assert!(slots.contains(&Some(ObjVal::Item(10))));
        assert!(check_causal(&exec).unwrap().is_correct());
    }

    #[test]
    fn random_schedules_keep_dictionary_executions_causal() {
        let layout = DictLayout::new(3, 6);
        for seed in 0..25u64 {
            let scripts = vec![
                vec![
                    DictOp::Insert(1),
                    DictOp::Insert(2),
                    DictOp::Lookup(20),
                    DictOp::Delete(1),
                    DictOp::Refresh,
                    DictOp::Lookup(30),
                ],
                vec![
                    DictOp::Insert(10),
                    DictOp::Refresh,
                    DictOp::Delete(2),
                    DictOp::Insert(20),
                    DictOp::Lookup(1),
                ],
                vec![
                    DictOp::Insert(30),
                    DictOp::Refresh,
                    DictOp::Lookup(10),
                    DictOp::Delete(30),
                    DictOp::Insert(31),
                ],
            ];
            let exec = run_scripts(layout, scripts, seed).exec;
            let verdict = check_causal(&exec).unwrap();
            assert!(verdict.is_correct(), "seed {seed}:\n{verdict}");
        }
    }

    #[test]
    fn own_row_survives_foreign_delete_then_reinsert_races() {
        // All processes hammer the same item id owned by P0, racing
        // deletes against P0's re-inserts across many schedules. Whatever
        // interleaving happens, executions stay causal and the final
        // owner state is one of the legal outcomes (7 present or absent).
        let layout = DictLayout::new(3, 2);
        for seed in 0..25u64 {
            let scripts = vec![
                vec![DictOp::Insert(7), DictOp::Delete(7), DictOp::Insert(7)],
                vec![DictOp::Refresh, DictOp::Delete(7)],
                vec![DictOp::Refresh, DictOp::Delete(7)],
            ];
            let ScriptRun { slots, exec, .. } = run_scripts(layout, scripts, seed);
            assert!(check_causal(&exec).unwrap().is_correct(), "seed {seed}");
            let sevens = slots
                .iter()
                .filter(|s| **s == Some(ObjVal::Item(7)))
                .count();
            assert!(sevens <= 1, "seed {seed}: duplicate item after races");
        }
    }
}
