//! The §4.2 dictionary as a simulator client — lets the deterministic
//! scheduler drive dictionary workloads under controlled/adversarial
//! interleavings, with the recorded execution checked against the
//! specification.

use std::sync::Arc;

use dsm_sim::{Client, ClientOp, Outcome};
use memcore::{Location, Word};
use parking_lot::Mutex;

use crate::dictionary::DictLayout;

/// One high-level dictionary operation for a scripted process.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DictOp {
    /// Insert an item into this process's own row.
    Insert(i64),
    /// Delete an item wherever this process's view finds it.
    Delete(i64),
    /// Look an item up in this process's view.
    Lookup(i64),
    /// Discard all cached (non-owned) slots, restoring view liveness.
    Refresh,
}

/// The boolean results of each completed [`DictOp`], in script order
/// (`Refresh` records `true`).
pub type DictResults = Arc<Mutex<Vec<(DictOp, bool)>>>;

enum Phase {
    /// Scanning slots; `cursor` is the next flat slot index to read.
    Scan { cursor: usize },
    /// Writing the operation's final value to a found slot.
    Commit,
    /// Discarding non-owned slots starting at `cursor`.
    Discarding { cursor: usize },
}

/// A scripted dictionary process for the deterministic simulator.
///
/// Scans are performed exactly as [`Dictionary`](crate::Dictionary) does
/// on the threaded engine: row-major reads, first match wins, inserts
/// confined to the owner's row.
pub struct DictClient {
    layout: DictLayout,
    row: usize,
    script: std::vec::IntoIter<DictOp>,
    current: Option<DictOp>,
    phase: Phase,
    target: Option<Location>,
    results: DictResults,
}

impl DictClient {
    /// A client for process `row`, running `script`; outcomes are pushed
    /// into `results`.
    #[must_use]
    pub fn new(layout: DictLayout, row: usize, script: Vec<DictOp>, results: DictResults) -> Self {
        assert!(row < layout.rows(), "row out of range");
        DictClient {
            layout,
            row,
            script: script.into_iter(),
            current: None,
            phase: Phase::Scan { cursor: 0 },
            target: None,
            results,
        }
    }

    fn slot_at(&self, flat: usize) -> Location {
        let (row, col) = (flat / self.layout.cols(), flat % self.layout.cols());
        self.layout.slot(row, col)
    }

    fn total_slots(&self) -> usize {
        self.layout.rows() * self.layout.cols()
    }

    /// The flat index range an operation scans: inserts stay in the own
    /// row; lookups and deletes scan everything.
    fn scan_range(&self, op: DictOp) -> (usize, usize) {
        match op {
            DictOp::Insert(_) => {
                let start = self.row * self.layout.cols();
                (start, start + self.layout.cols())
            }
            _ => (0, self.total_slots()),
        }
    }

    fn finish(&mut self, outcome: bool) {
        if let Some(op) = self.current.take() {
            self.results.lock().push((op, outcome));
        }
        self.phase = Phase::Scan { cursor: 0 };
        self.target = None;
    }
}

impl Client<Word> for DictClient {
    fn next(&mut self, last: Option<&Outcome<Word>>) -> Option<ClientOp<Word>> {
        loop {
            let Some(op) = self.current else {
                // Start the next scripted operation.
                let op = self.script.next()?;
                self.current = Some(op);
                self.phase = match op {
                    DictOp::Refresh => Phase::Discarding { cursor: 0 },
                    _ => {
                        let (start, _) = self.scan_range(op);
                        Phase::Scan { cursor: start }
                    }
                };
                continue;
            };

            match (&self.phase, op) {
                (Phase::Discarding { cursor }, DictOp::Refresh) => {
                    let mut cursor = *cursor;
                    // Skip own-row slots (never discarded).
                    while cursor < self.total_slots() && cursor / self.layout.cols() == self.row {
                        cursor += 1;
                    }
                    if cursor >= self.total_slots() {
                        self.finish(true);
                        continue;
                    }
                    self.phase = Phase::Discarding { cursor: cursor + 1 };
                    return Some(ClientOp::Discard(self.slot_at(cursor)));
                }
                (Phase::Scan { cursor }, op) => {
                    let cursor = *cursor;
                    let (_, end) = self.scan_range(op);
                    // Interpret the previous read, if we were mid-scan.
                    if cursor > self.scan_range(op).0 {
                        let value = match last {
                            Some(Outcome::Read { value, .. }) => *value,
                            _ => panic!("scan step expects a read outcome"),
                        };
                        let hit = match op {
                            DictOp::Insert(_) => matches!(value, Word::Zero),
                            DictOp::Lookup(v) | DictOp::Delete(v) => value == Word::Int(v),
                            DictOp::Refresh => unreachable!(),
                        };
                        if hit {
                            let found = self.slot_at(cursor - 1);
                            match op {
                                DictOp::Lookup(_) => {
                                    self.finish(true);
                                    continue;
                                }
                                _ => {
                                    self.target = Some(found);
                                    self.phase = Phase::Commit;
                                    continue;
                                }
                            }
                        }
                    }
                    if cursor >= end {
                        self.finish(false);
                        continue;
                    }
                    self.phase = Phase::Scan { cursor: cursor + 1 };
                    return Some(ClientOp::Read(self.slot_at(cursor)));
                }
                (Phase::Commit, op) => {
                    let target = self.target.expect("commit follows a found slot");
                    let value = match op {
                        DictOp::Insert(v) => Word::Int(v),
                        DictOp::Delete(_) => Word::Zero,
                        _ => unreachable!("only inserts and deletes commit"),
                    };
                    self.finish(true);
                    return Some(ClientOp::Write(target, value));
                }
                (Phase::Discarding { .. }, _) => unreachable!("discard phase is refresh-only"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use causal_dsm::{CausalConfig, WritePolicy};
    use causal_spec::{check_causal, Execution};
    use dsm_sim::{causal_sim, Actor, RunLimits, SimOpts};
    use memcore::Recorder;
    use simnet::latency::Uniform;

    fn results() -> DictResults {
        Arc::new(Mutex::new(Vec::new()))
    }

    struct ScriptRun {
        log: Vec<(DictOp, bool)>,
        slots: Vec<Option<Word>>,
        exec: Execution<Word>,
    }

    fn run_scripts(layout: DictLayout, scripts: Vec<Vec<DictOp>>, seed: u64) -> ScriptRun {
        let recorder: Recorder<Word> = Recorder::new(layout.rows());
        let config = CausalConfig::<Word>::builder(layout.rows() as u32, layout.locations())
            .owners(layout.owners())
            .policy(WritePolicy::OwnerFavored)
            .build();
        let mut sim = causal_sim(
            &config,
            SimOpts {
                latency: Box::new(Uniform::new(1, 12)),
                seed,
                recorder: Some(recorder.clone()),
                ..SimOpts::default()
            },
        );
        let shared = results();
        for (row, script) in scripts.into_iter().enumerate() {
            sim.set_client(row, DictClient::new(layout, row, script, shared.clone()));
        }
        let report = sim.run(RunLimits::default());
        assert!(report.all_done, "{report:?}");
        // Ground truth: owner copies of every slot.
        let slots = (0..layout.rows() * layout.cols())
            .map(|flat| {
                let row = flat / layout.cols();
                sim.actor(row).peek(layout.slot(row, flat % layout.cols()))
            })
            .collect();
        let log = shared.lock().clone();
        ScriptRun {
            log,
            slots,
            exec: Execution::from_recorder(&recorder),
        }
    }

    #[test]
    fn scripted_insert_lookup_delete_flow() {
        let layout = DictLayout::new(2, 4);
        let ScriptRun { log, slots, exec } = run_scripts(
            layout,
            vec![
                vec![DictOp::Insert(10), DictOp::Lookup(10)],
                vec![DictOp::Refresh, DictOp::Lookup(10)],
            ],
            0,
        );
        // P0's insert and own lookup must succeed.
        assert!(log.contains(&(DictOp::Insert(10), true)));
        assert_eq!(
            log.iter()
                .filter(|(op, _)| *op == DictOp::Lookup(10))
                .count(),
            2
        );
        // The item sits in P0's row at the owner.
        assert!(slots.contains(&Some(Word::Int(10))));
        assert!(check_causal(&exec).unwrap().is_correct());
    }

    #[test]
    fn random_schedules_keep_dictionary_executions_causal() {
        let layout = DictLayout::new(3, 6);
        for seed in 0..25u64 {
            let scripts = vec![
                vec![
                    DictOp::Insert(1),
                    DictOp::Insert(2),
                    DictOp::Lookup(20),
                    DictOp::Delete(1),
                    DictOp::Refresh,
                    DictOp::Lookup(30),
                ],
                vec![
                    DictOp::Insert(10),
                    DictOp::Refresh,
                    DictOp::Delete(2),
                    DictOp::Insert(20),
                    DictOp::Lookup(1),
                ],
                vec![
                    DictOp::Insert(30),
                    DictOp::Refresh,
                    DictOp::Lookup(10),
                    DictOp::Delete(30),
                    DictOp::Insert(31),
                ],
            ];
            let exec = run_scripts(layout, scripts, seed).exec;
            let verdict = check_causal(&exec).unwrap();
            assert!(verdict.is_correct(), "seed {seed}:\n{verdict}");
        }
    }

    #[test]
    fn own_row_survives_foreign_delete_then_reinsert_races() {
        // All processes hammer the same item id owned by P0, racing
        // deletes against P0's re-inserts across many schedules. Whatever
        // interleaving happens, executions stay causal and the final
        // owner state is one of the legal outcomes (7 present or absent).
        let layout = DictLayout::new(3, 2);
        for seed in 0..25u64 {
            let scripts = vec![
                vec![DictOp::Insert(7), DictOp::Delete(7), DictOp::Insert(7)],
                vec![DictOp::Refresh, DictOp::Delete(7)],
                vec![DictOp::Refresh, DictOp::Delete(7)],
            ];
            let ScriptRun { slots, exec, .. } = run_scripts(layout, scripts, seed);
            assert!(check_causal(&exec).unwrap().is_correct(), "seed {seed}");
            let sevens = slots.iter().filter(|s| **s == Some(Word::Int(7))).count();
            assert!(sevens <= 1, "seed {seed}: duplicate item after races");
        }
    }
}
