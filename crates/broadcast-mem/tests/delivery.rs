//! Property tests for the BSS causal delivery machinery: under *any*
//! delivery interleaving that respects per-link FIFO, updates apply in
//! causal order at every replica.

use broadcast_mem::{BMsg, BroadcastState};
use memcore::{Location, NodeId, Word};
use proptest::prelude::*;

fn p(i: u32) -> NodeId {
    NodeId::new(i)
}

/// Scenario: P0 issues `k0` writes to location 0; P1 relays (it receives
/// P0's updates at random points interleaved with its own writes to
/// location 1). P2 receives everything in a random FIFO-respecting merge.
/// At the end, P2 must hold P0's last write at loc 0 and P1's last at
/// loc 1, and nothing may remain in the holdback queue.
fn run_case(k0: usize, k1: usize, interleave: Vec<bool>, merge: Vec<u8>) {
    let locations = 2u32;
    let mut p0 = BroadcastState::<Word>::new(p(0), 3, locations);
    let mut p1 = BroadcastState::<Word>::new(p(1), 3, locations);
    let mut p2 = BroadcastState::<Word>::new(p(2), 3, locations);

    // Queues of messages in flight, per (sender → receiver) link: FIFO.
    let mut q0_to_2: Vec<BMsg<Word>> = Vec::new();
    let mut q1_to_2: Vec<BMsg<Word>> = Vec::new();
    let mut q0_to_1: Vec<BMsg<Word>> = Vec::new();

    let take = |out: Vec<(NodeId, BMsg<Word>)>, dst: NodeId| {
        out.into_iter()
            .find(|(d, _)| *d == dst)
            .map(|(_, m)| m)
            .expect("message for destination")
    };

    // P0's writes.
    for v in 1..=k0 {
        let (_, out) = p0.write(Location::new(0), Word::Int(v as i64));
        q0_to_1.push(take(out.clone(), p(1)));
        q0_to_2.push(take(out, p(2)));
    }
    // P1 interleaves receiving P0's updates with its own writes.
    let mut received = 0usize;
    let mut written = 0usize;
    for recv_first in interleave {
        if recv_first && received < q0_to_1.len() {
            p1.on_message(p(0), q0_to_1[received].clone());
            received += 1;
        } else if written < k1 {
            written += 1;
            let (_, out) = p1.write(Location::new(1), Word::Int(1000 + written as i64));
            q1_to_2.push(take(out, p(2)));
        }
    }
    while written < k1 {
        written += 1;
        let (_, out) = p1.write(Location::new(1), Word::Int(1000 + written as i64));
        q1_to_2.push(take(out, p(2)));
    }
    while received < q0_to_1.len() {
        p1.on_message(p(0), q0_to_1[received].clone());
        received += 1;
    }

    // P2 receives the two FIFO streams in a random merge.
    let (mut i0, mut i1) = (0usize, 0usize);
    for pick in merge {
        if pick % 2 == 0 && i0 < q0_to_2.len() {
            p2.on_message(p(0), q0_to_2[i0].clone());
            i0 += 1;
        } else if i1 < q1_to_2.len() {
            p2.on_message(p(1), q1_to_2[i1].clone());
            i1 += 1;
        }
    }
    while i0 < q0_to_2.len() {
        p2.on_message(p(0), q0_to_2[i0].clone());
        i0 += 1;
    }
    while i1 < q1_to_2.len() {
        p2.on_message(p(1), q1_to_2[i1].clone());
        i1 += 1;
    }

    // Everything deliverable must have been delivered...
    assert_eq!(p2.holdback_len(), 0, "stuck updates in holdback");
    assert_eq!(p2.delivered().get(0), k0 as u64);
    assert_eq!(p2.delivered().get(1), k1 as u64);
    // ...and per-sender FIFO means final values are the last writes.
    if k0 > 0 {
        assert_eq!(p2.read(Location::new(0)).0, Word::Int(k0 as i64));
    }
    if k1 > 0 {
        assert_eq!(p2.read(Location::new(1)).0, Word::Int(1000 + k1 as i64));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn random_fifo_merges_always_deliver_causally(
        k0 in 0usize..8,
        k1 in 0usize..8,
        interleave in proptest::collection::vec(any::<bool>(), 0..16),
        merge in proptest::collection::vec(any::<u8>(), 0..32),
    ) {
        run_case(k0, k1, interleave, merge);
    }
}

/// Deterministic worst case: P2 receives P1's stream entirely before
/// P0's, even though P1's later writes causally depend on P0's. The
/// holdback queue must park them and release in order.
#[test]
fn fully_inverted_arrival_order_is_repaired() {
    let mut p0 = BroadcastState::<Word>::new(p(0), 3, 2);
    let mut p1 = BroadcastState::<Word>::new(p(1), 3, 2);
    let mut p2 = BroadcastState::<Word>::new(p(2), 3, 2);

    let take = |out: Vec<(NodeId, BMsg<Word>)>, dst: NodeId| {
        out.into_iter()
            .find(|(d, _)| *d == dst)
            .map(|(_, m)| m)
            .unwrap()
    };

    // P0 writes x=1..3; P1 sees them all, then writes y.
    let mut to_p1 = Vec::new();
    let mut to_p2 = Vec::new();
    for v in 1..=3i64 {
        let (_, out) = p0.write(Location::new(0), Word::Int(v));
        to_p1.push(take(out.clone(), p(1)));
        to_p2.push(take(out, p(2)));
    }
    for m in to_p1 {
        p1.on_message(p(0), m);
    }
    let (_, out) = p1.write(Location::new(1), Word::Int(42));
    let y_update = take(out, p(2));

    // P2 gets y first: must hold it back (depends on all three x writes).
    assert_eq!(p2.on_message(p(1), y_update), 0);
    assert_eq!(p2.holdback_len(), 1);
    assert_eq!(p2.read(Location::new(1)).0, Word::Zero);
    // x updates arrive; delivering the third releases y too.
    assert_eq!(p2.on_message(p(0), to_p2.remove(0)), 1);
    assert_eq!(p2.on_message(p(0), to_p2.remove(0)), 1);
    assert_eq!(p2.on_message(p(0), to_p2.remove(0)), 2);
    assert_eq!(p2.read(Location::new(1)).0, Word::Int(42));
    assert_eq!(p2.read(Location::new(0)).0, Word::Int(3));
}
