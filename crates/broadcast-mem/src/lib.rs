//! Causally-ordered broadcast replica memory — the paper's §2 comparator
//! showing that **"causal broadcasting is not causal memory"** (Figure 3).
//!
//! Each node holds a full replica; writes apply locally and broadcast an
//! update delivered at every other node in causal order
//! (Birman–Schiper–Stephenson vector-clock delivery, after the ISIS causal
//! broadcast the paper cites). Reads are local.
//!
//! The paper's point, reproduced by this workspace's E3 experiment: even
//! with causally ordered delivery, *concurrent* writes to the same
//! location may be applied in different orders at different replicas, and
//! a process can first observe evidence that a concurrent write has been
//! superseded and then still read it — an outcome Definition 2 forbids.
//! See `tests/separation.rs` at the workspace root.
//!
//! # Examples
//!
//! ```
//! use broadcast_mem::BroadcastCluster;
//! use memcore::{Location, SharedMemory, Word};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let cluster = BroadcastCluster::<Word>::new(3, 4)?;
//! let p0 = cluster.handle(0);
//! let p2 = cluster.handle(2);
//! p0.write(Location::new(1), Word::Int(7))?;
//! let v = p2.wait_until(Location::new(1), &|v| *v == Word::Int(7))?;
//! assert_eq!(v, Word::Int(7));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod state;

pub use engine::{BroadcastCluster, BroadcastHandle};
pub use state::{BMsg, BroadcastState};
