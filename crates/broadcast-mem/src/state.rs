//! Causal-broadcast replica memory as a pure state machine.
//!
//! Every node holds a full replica; a write applies locally and is
//! broadcast; receivers delay delivery until all causally prior updates
//! have been delivered (Birman–Schiper–Stephenson vector-clock delivery,
//! after the ISIS causal broadcast the paper cites). Reads are local.

use memcore::{Location, NodeId, Value, WriteId};
use simnet::Tagged;
use vclock::VectorClock;

/// The single protocol message: a replicated update.
#[derive(Clone, Debug, PartialEq)]
pub enum BMsg<V> {
    /// Apply `value` to `loc`, ordered by the attached broadcast clock.
    Update {
        /// The written location.
        loc: Location,
        /// The written value.
        value: V,
        /// The write's unique tag.
        wid: WriteId,
        /// The sender's broadcast clock (its own component counts this
        /// message).
        vt: VectorClock,
    },
    /// Engine shutdown sentinel.
    Halt,
}

impl<V: Value> Tagged for BMsg<V> {
    fn kind(&self) -> &'static str {
        match self {
            BMsg::Update { .. } => "UPDATE",
            BMsg::Halt => "HALT",
        }
    }

    fn wire_size(&self) -> Option<usize> {
        Some(match self {
            BMsg::Update { vt, .. } => 1 + 4 + std::mem::size_of::<V>() + 12 + 4 + 8 * vt.len(),
            BMsg::Halt => 1,
        })
    }
}

#[derive(Clone, Debug)]
struct Held<V> {
    from: NodeId,
    loc: Location,
    value: V,
    wid: WriteId,
    vt: VectorClock,
}

/// One node's replica plus the causal delivery machinery.
///
/// # Examples
///
/// ```
/// use broadcast_mem::BroadcastState;
/// use memcore::{Location, NodeId, Word};
///
/// let mut p0 = BroadcastState::<Word>::new(NodeId::new(0), 2, 2);
/// let mut p1 = BroadcastState::<Word>::new(NodeId::new(1), 2, 2);
/// let (_, outgoing) = p0.write(Location::new(0), Word::Int(1));
/// for (dst, msg) in outgoing {
///     assert_eq!(dst, NodeId::new(1));
///     p1.on_message(NodeId::new(0), msg);
/// }
/// assert_eq!(p1.read(Location::new(0)).0, Word::Int(1));
/// ```
#[derive(Debug)]
pub struct BroadcastState<V> {
    id: NodeId,
    n: usize,
    /// Count of delivered broadcasts per sender (own writes included).
    delivered: VectorClock,
    replica: Vec<(V, WriteId)>,
    holdback: Vec<Held<V>>,
    write_seq: u64,
}

impl<V: Value + Default> BroadcastState<V> {
    /// Creates node `id`'s replica of `locations` locations, all holding
    /// `V::default()`.
    ///
    /// # Panics
    ///
    /// Panics if `n` or `locations` is zero.
    #[must_use]
    pub fn new(id: NodeId, n: usize, locations: u32) -> Self {
        assert!(n > 0, "at least one node required");
        assert!(locations > 0, "at least one location required");
        BroadcastState {
            id,
            n,
            delivered: VectorClock::new(n),
            replica: (0..locations)
                .map(|i| (V::default(), WriteId::initial(Location::new(i))))
                .collect(),
            holdback: Vec::new(),
            write_seq: 0,
        }
    }
}

impl<V: Value> BroadcastState<V> {
    /// This node's identifier.
    #[must_use]
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The per-sender delivered counts.
    #[must_use]
    pub fn delivered(&self) -> &VectorClock {
        &self.delivered
    }

    /// Number of updates parked awaiting causally prior deliveries.
    #[must_use]
    pub fn holdback_len(&self) -> usize {
        self.holdback.len()
    }

    /// Reads `loc` from the local replica.
    ///
    /// # Panics
    ///
    /// Panics if `loc` is out of range.
    #[must_use]
    pub fn read(&self, loc: Location) -> (V, WriteId) {
        let (v, wid) = &self.replica[loc.index()];
        (v.clone(), *wid)
    }

    /// Writes locally and returns the broadcast to every other node.
    ///
    /// # Panics
    ///
    /// Panics if `loc` is out of range.
    pub fn write(&mut self, loc: Location, value: V) -> (WriteId, Vec<(NodeId, BMsg<V>)>) {
        let wid = WriteId::new(self.id, self.write_seq);
        self.write_seq += 1;
        self.delivered.increment(self.id.index());
        self.replica[loc.index()] = (value.clone(), wid);
        let vt = self.delivered.clone();
        let outgoing = (0..self.n)
            .map(|i| NodeId::new(i as u32))
            .filter(|&dst| dst != self.id)
            .map(|dst| {
                (
                    dst,
                    BMsg::Update {
                        loc,
                        value: value.clone(),
                        wid,
                        vt: vt.clone(),
                    },
                )
            })
            .collect();
        (wid, outgoing)
    }

    /// Receives a broadcast; delivers it (and anything it unblocks) as
    /// soon as causal order permits. Returns the number of updates applied.
    pub fn on_message(&mut self, from: NodeId, msg: BMsg<V>) -> usize {
        let BMsg::Update {
            loc,
            value,
            wid,
            vt,
        } = msg
        else {
            return 0;
        };
        self.holdback.push(Held {
            from,
            loc,
            value,
            wid,
            vt,
        });
        self.deliver_ready()
    }

    /// BSS delivery condition: from `j` with clock `vt`, deliverable iff
    /// `vt[j] == delivered[j] + 1` and `vt[k] <= delivered[k]` for `k ≠ j`.
    fn deliverable(&self, held: &Held<V>) -> bool {
        let j = held.from.index();
        held.vt.iter().enumerate().all(|(k, &c)| {
            if k == j {
                c == self.delivered.get(k) + 1
            } else {
                c <= self.delivered.get(k)
            }
        })
    }

    fn deliver_ready(&mut self) -> usize {
        let mut applied = 0;
        loop {
            let Some(pos) = self.holdback.iter().position(|h| self.deliverable(h)) else {
                return applied;
            };
            let held = self.holdback.swap_remove(pos);
            self.delivered.increment(held.from.index());
            self.replica[held.loc.index()] = (held.value, held.wid);
            applied += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memcore::Word;

    fn p(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn loc(i: u32) -> Location {
        Location::new(i)
    }

    fn update_for(outgoing: &[(NodeId, BMsg<Word>)], dst: NodeId) -> BMsg<Word> {
        outgoing
            .iter()
            .find(|(d, _)| *d == dst)
            .map(|(_, m)| m.clone())
            .expect("message for destination")
    }

    #[test]
    fn writes_apply_locally_and_broadcast() {
        let mut p0 = BroadcastState::<Word>::new(p(0), 3, 2);
        let (_, outgoing) = p0.write(loc(0), Word::Int(4));
        assert_eq!(outgoing.len(), 2);
        assert_eq!(p0.read(loc(0)).0, Word::Int(4));
        assert_eq!(p0.delivered().get(0), 1);
    }

    #[test]
    fn in_order_updates_deliver_immediately() {
        let mut p0 = BroadcastState::<Word>::new(p(0), 2, 2);
        let mut p1 = BroadcastState::<Word>::new(p(1), 2, 2);
        let (_, out) = p0.write(loc(0), Word::Int(1));
        assert_eq!(p1.on_message(p(0), update_for(&out, p(1))), 1);
        assert_eq!(p1.read(loc(0)).0, Word::Int(1));
        assert_eq!(p1.holdback_len(), 0);
    }

    #[test]
    fn out_of_causal_order_updates_are_held_back() {
        // P0 writes x then y; P1 receives y's update first: it must wait.
        let mut p0 = BroadcastState::<Word>::new(p(0), 2, 2);
        let mut p1 = BroadcastState::<Word>::new(p(1), 2, 2);
        let (_, out_x) = p0.write(loc(0), Word::Int(1));
        let (_, out_y) = p0.write(loc(1), Word::Int(2));
        assert_eq!(p1.on_message(p(0), update_for(&out_y, p(1))), 0);
        assert_eq!(p1.holdback_len(), 1);
        assert_eq!(p1.read(loc(1)).0, Word::Zero); // not yet visible
                                                   // x's update arrives: both deliver, in causal order.
        assert_eq!(p1.on_message(p(0), update_for(&out_x, p(1))), 2);
        assert_eq!(p1.read(loc(0)).0, Word::Int(1));
        assert_eq!(p1.read(loc(1)).0, Word::Int(2));
    }

    #[test]
    fn cross_process_causality_is_respected() {
        // P0 writes x; P1 sees it, then writes y; P2 receives y's update
        // before x's — y must wait for x.
        let mut p0 = BroadcastState::<Word>::new(p(0), 3, 2);
        let mut p1 = BroadcastState::<Word>::new(p(1), 3, 2);
        let mut p2 = BroadcastState::<Word>::new(p(2), 3, 2);
        let (_, out_x) = p0.write(loc(0), Word::Int(1));
        p1.on_message(p(0), update_for(&out_x, p(1)));
        let (_, out_y) = p1.write(loc(1), Word::Int(2));
        // P2 gets y first: held.
        assert_eq!(p2.on_message(p(1), update_for(&out_y, p(2))), 0);
        assert_eq!(p2.read(loc(1)).0, Word::Zero);
        // Then x: both deliver.
        assert_eq!(p2.on_message(p(0), update_for(&out_x, p(2))), 2);
        assert_eq!(p2.read(loc(1)).0, Word::Int(2));
    }

    #[test]
    fn concurrent_writes_may_deliver_in_either_order() {
        // P0 and P1 write x concurrently; P2 applies them in arrival
        // order — last arrival wins, and different replicas may disagree.
        let mut p0 = BroadcastState::<Word>::new(p(0), 3, 1);
        let mut p1 = BroadcastState::<Word>::new(p(1), 3, 1);
        let mut p2 = BroadcastState::<Word>::new(p(2), 3, 1);
        let (_, out_a) = p0.write(loc(0), Word::Int(1));
        let (_, out_b) = p1.write(loc(0), Word::Int(2));
        // P2: a then b → ends at 2.
        p2.on_message(p(0), update_for(&out_a, p(2)));
        p2.on_message(p(1), update_for(&out_b, p(2)));
        assert_eq!(p2.read(loc(0)).0, Word::Int(2));
        // P0 gets b → ends at 2; P1 gets a → ends at 1: replicas disagree,
        // which causal memory permits for concurrent writes.
        p0.on_message(p(1), update_for(&out_b, p(0)));
        p1.on_message(p(0), update_for(&out_a, p(1)));
        assert_eq!(p0.read(loc(0)).0, Word::Int(2));
        assert_eq!(p1.read(loc(0)).0, Word::Int(1));
    }

    #[test]
    fn halt_is_ignored() {
        let mut p0 = BroadcastState::<Word>::new(p(0), 2, 1);
        assert_eq!(p0.on_message(p(1), BMsg::Halt), 0);
    }

    #[test]
    fn message_kinds_and_sizes() {
        let msg: BMsg<Word> = BMsg::Update {
            loc: loc(0),
            value: Word::Int(1),
            wid: WriteId::new(p(0), 0),
            vt: VectorClock::new(4),
        };
        assert_eq!(msg.kind(), "UPDATE");
        assert!(msg.wire_size().unwrap() > BMsg::<Word>::Halt.wire_size().unwrap());
    }
}
