//! Threaded engine for the causal-broadcast replica memory.
//!
//! Unlike the owner protocols, no operation ever blocks: writes broadcast
//! and return, reads are local. The cost is full replication and an
//! `n − 1`-message broadcast per write — and, as Figure 3 of the paper
//! shows, the result is *not* causal memory.

use std::sync::Arc;
use std::thread::JoinHandle;

use memcore::{Location, MemoryError, NetStats, NodeId, OpRecord, Recorder, SharedMemory, Value};
use parking_lot::Mutex;
use simnet::Network;

use crate::state::{BMsg, BroadcastState};

struct ClusterInner<V: Value> {
    locations: u32,
    net: Network<BMsg<V>>,
    nodes: Vec<Arc<Mutex<BroadcastState<V>>>>,
    recorder: Option<Recorder<V>>,
    servers: Mutex<Vec<JoinHandle<()>>>,
}

/// A running causal-broadcast memory: full replicas updated by
/// causally-ordered broadcasts.
///
/// # Examples
///
/// ```
/// use broadcast_mem::BroadcastCluster;
/// use memcore::{Location, SharedMemory, Word};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let cluster = BroadcastCluster::<Word>::new(2, 4)?;
/// let p0 = cluster.handle(0);
/// let p1 = cluster.handle(1);
/// p0.write(Location::new(0), Word::Int(1))?;
/// // Replication is asynchronous; wait for the update to land.
/// let v = p1.wait_until(Location::new(0), &|v| *v == Word::Int(1))?;
/// assert_eq!(v, Word::Int(1));
/// # Ok(())
/// # }
/// ```
pub struct BroadcastCluster<V: Value> {
    inner: Arc<ClusterInner<V>>,
}

impl<V: Value + Default> BroadcastCluster<V> {
    /// Builds a cluster of `nodes` full replicas of `locations` locations.
    ///
    /// # Errors
    ///
    /// Currently infallible; returns `Result` for forward compatibility.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` or `locations` is zero.
    pub fn new(nodes: u32, locations: u32) -> Result<Self, MemoryError> {
        Self::with_recorder(nodes, locations, None)
    }

    /// Builds a cluster that records operations into `recorder`.
    ///
    /// # Errors
    ///
    /// Currently infallible; returns `Result` for forward compatibility.
    pub fn with_recorder(
        nodes: u32,
        locations: u32,
        recorder: Option<Recorder<V>>,
    ) -> Result<Self, MemoryError> {
        let n = nodes as usize;
        let net: Network<BMsg<V>> = Network::new(n);
        let states: Vec<_> = (0..nodes)
            .map(|i| {
                Arc::new(Mutex::new(BroadcastState::new(
                    NodeId::new(i),
                    n,
                    locations,
                )))
            })
            .collect();

        let mut servers = Vec::with_capacity(n);
        for (i, state) in states.iter().enumerate() {
            let me = NodeId::new(i as u32);
            let mailbox = net.take_mailbox(me);
            let state = Arc::clone(state);
            servers.push(
                std::thread::Builder::new()
                    .name(format!("bcast-node-{i}"))
                    .spawn(move || {
                        while let Some(env) = mailbox.recv() {
                            if matches!(env.payload, BMsg::Halt) {
                                break;
                            }
                            state.lock().on_message(env.src, env.payload);
                        }
                    })
                    .expect("spawning server thread"),
            );
        }

        Ok(BroadcastCluster {
            inner: Arc::new(ClusterInner {
                locations,
                net,
                nodes: states,
                recorder,
                servers: Mutex::new(servers),
            }),
        })
    }
}

impl<V: Value> BroadcastCluster<V> {
    /// A handle performing operations as process `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[must_use]
    pub fn handle(&self, node: u32) -> BroadcastHandle<V> {
        assert!(
            (node as usize) < self.inner.nodes.len(),
            "node {node} out of range"
        );
        BroadcastHandle {
            inner: Arc::clone(&self.inner),
            node: NodeId::new(node),
        }
    }

    /// Per-(node, kind) message counters.
    #[must_use]
    pub fn messages(&self) -> &NetStats {
        self.inner.net.messages()
    }

    /// Stops all server threads.
    pub fn shutdown(&self) {
        let handles: Vec<_> = self.inner.servers.lock().drain(..).collect();
        if handles.is_empty() {
            return;
        }
        for i in 0..self.inner.nodes.len() {
            let dst = NodeId::new(i as u32);
            let _ = self.inner.net.send(dst, dst, BMsg::Halt);
        }
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl<V: Value> Drop for BroadcastCluster<V> {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl<V: Value> std::fmt::Debug for BroadcastCluster<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BroadcastCluster({} nodes)", self.inner.nodes.len())
    }
}

/// A per-process handle onto a [`BroadcastCluster`]; implements
/// [`SharedMemory`].
pub struct BroadcastHandle<V: Value> {
    inner: Arc<ClusterInner<V>>,
    node: NodeId,
}

impl<V: Value> Clone for BroadcastHandle<V> {
    fn clone(&self) -> Self {
        BroadcastHandle {
            inner: Arc::clone(&self.inner),
            node: self.node,
        }
    }
}

impl<V: Value> std::fmt::Debug for BroadcastHandle<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BroadcastHandle({})", self.node)
    }
}

impl<V: Value> SharedMemory<V> for BroadcastHandle<V> {
    fn node(&self) -> NodeId {
        self.node
    }

    fn read(&self, loc: Location) -> Result<V, MemoryError> {
        if loc.index() >= self.inner.locations as usize {
            return Err(MemoryError::OutOfRange {
                loc,
                namespace: self.inner.locations as usize,
            });
        }
        let (value, wid) = self.inner.nodes[self.node.index()].lock().read(loc);
        if let Some(rec) = &self.inner.recorder {
            rec.record(self.node, OpRecord::read(loc, value.clone(), wid));
        }
        Ok(value)
    }

    fn write(&self, loc: Location, value: V) -> Result<(), MemoryError> {
        if loc.index() >= self.inner.locations as usize {
            return Err(MemoryError::OutOfRange {
                loc,
                namespace: self.inner.locations as usize,
            });
        }
        let (wid, outgoing) = self.inner.nodes[self.node.index()]
            .lock()
            .write(loc, value.clone());
        for (dst, msg) in outgoing {
            self.inner
                .net
                .send(self.node, dst, msg)
                .map_err(|_| MemoryError::Shutdown)?;
        }
        if let Some(rec) = &self.inner.recorder {
            rec.record(self.node, OpRecord::write(loc, value, wid));
        }
        Ok(())
    }

    /// Replicas hold no caches; discard is a no-op.
    fn discard(&self, _loc: Location) {}
}
