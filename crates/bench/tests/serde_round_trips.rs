//! Serde round-trips for the workspace's data structures (C-SERDE): an
//! execution recorded from one run can be serialized, archived and checked
//! later.

use causal_spec::paper;
use causal_spec::{check_causal, Execution};
use memcore::{NetStats, NodeId, StatsSnapshot, Word};
use vclock::VectorClock;

#[test]
fn executions_serialize_and_check_identically() {
    let exec = paper::figure2();
    let json = serde_json::to_string(&exec).expect("serialize");
    let back: Execution<i64> = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(back, exec);
    let a = check_causal(&exec).unwrap();
    let b = check_causal(&back).unwrap();
    assert_eq!(a, b);
    assert!(a.is_correct());
}

#[test]
fn stats_snapshots_round_trip() {
    let stats = NetStats::new(2);
    stats.record(NodeId::new(0), "READ");
    stats.record(NodeId::new(1), "W_REPLY");
    stats.record(NodeId::new(1), "W_REPLY");
    let snap = stats.snapshot();
    let json = serde_json::to_string(&snap).expect("serialize");
    let back: StatsSnapshot = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(back, snap);
    assert_eq!(back.total(), 3);
}

#[test]
fn vector_clocks_round_trip() {
    let vt = VectorClock::from([3u64, 0, 7]);
    let json = serde_json::to_string(&vt).expect("serialize");
    let back: VectorClock = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(back, vt);
}

#[test]
fn words_round_trip() {
    for w in [
        Word::Zero,
        Word::Int(-4),
        Word::Bool(true),
        Word::Float(2.5),
    ] {
        let json = serde_json::to_string(&w).expect("serialize");
        let back: Word = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, w);
    }
}

#[test]
fn recorded_engine_execution_survives_archival() {
    // Record a real run, archive it as JSON, recheck from the archive.
    use causal_dsm::CausalCluster;
    use memcore::{Location, Recorder, SharedMemory};
    let recorder: Recorder<Word> = Recorder::new(2);
    let cluster = CausalCluster::<Word>::builder(2, 2)
        .recorder(recorder.clone())
        .build()
        .unwrap();
    cluster
        .handle(0)
        .write(Location::new(0), Word::Int(1))
        .unwrap();
    let _ = cluster.handle(1).read(Location::new(0)).unwrap();
    let exec = Execution::from_recorder(&recorder);
    let archived = serde_json::to_string_pretty(&exec).unwrap();
    let restored: Execution<Word> = serde_json::from_str(&archived).unwrap();
    assert!(check_causal(&restored).unwrap().is_correct());
}
