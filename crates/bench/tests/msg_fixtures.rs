//! Message-count equality fixtures: the hot-path optimizations are
//! allowed to change *cost per message*, never *number of messages*.
//!
//! The deterministic simulator makes this checkable bit-for-bit: for a
//! fixed seed, the Figure-6 solver and the chaos workload send exactly
//! the same per-kind message counts on every run. This test pins those
//! counts in `tests/fixtures/msg_counts.json` (captured on the pre-PR
//! protocol) and fails if any engine change alters them.
//!
//! Regenerate intentionally with:
//!
//! ```text
//! UPDATE_FIXTURES=1 cargo test -p dsm-bench --test msg_fixtures
//! ```

use std::collections::BTreeMap;

use dsm_apps::{run_causal_solver_sim, LinearSystem, SolverSimConfig};
use dsm_faults::{run_chaos_once, ChaosConfig};
use serde::{Deserialize, Serialize};

/// One pinned scenario: its identity and its per-kind message bill.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
struct Fixture {
    scenario: String,
    seed: u64,
    protocol_msgs: u64,
    overhead_msgs: u64,
    by_kind: BTreeMap<String, u64>,
}

const FIXTURE_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/fixtures/msg_counts.json"
);

/// The Figure-6 solver seeds pinned by the fixture (the perf suite's
/// quick-mode seeds plus one more).
const SOLVER_SEEDS: [u64; 3] = [0xC0FFEE, 0x5EED, 7];

/// The chaos-smoke seeds pinned by the fixture.
const CHAOS_SEEDS: [u64; 3] = [1, 2, 3];

fn solver_fixture(seed: u64) -> Fixture {
    let system = LinearSystem::random(4, seed);
    let run = run_causal_solver_sim(
        &system,
        &SolverSimConfig {
            workers: 4,
            phases: 8,
            seed,
            ..SolverSimConfig::default()
        },
    );
    assert!(run.all_done, "solver sim wedged at seed {seed:#x}");
    Fixture {
        scenario: "figure6_solver_sim".to_owned(),
        seed,
        protocol_msgs: run.messages.protocol_total(),
        overhead_msgs: run.messages.overhead_total(),
        by_kind: run.messages.by_kind(),
    }
}

fn chaos_fixture(seed: u64) -> Fixture {
    let outcome = run_chaos_once(seed, &ChaosConfig::default());
    assert!(
        outcome.ok(),
        "chaos run at seed {seed} violated the causal spec: {:?}",
        outcome.violations
    );
    Fixture {
        scenario: "chaos_smoke".to_owned(),
        seed,
        protocol_msgs: outcome.messages.protocol_total(),
        overhead_msgs: outcome.messages.overhead_total(),
        by_kind: outcome.messages.by_kind(),
    }
}

fn current_fixtures() -> Vec<Fixture> {
    let mut out = Vec::new();
    for &seed in &SOLVER_SEEDS {
        out.push(solver_fixture(seed));
    }
    for &seed in &CHAOS_SEEDS {
        out.push(chaos_fixture(seed));
    }
    out
}

#[test]
fn message_counts_match_pinned_fixtures() {
    let current = current_fixtures();

    if std::env::var("UPDATE_FIXTURES").is_ok() {
        let text = serde_json::to_string_pretty(&current).expect("serialize fixtures");
        std::fs::write(FIXTURE_PATH, text + "\n").expect("write fixtures");
        eprintln!("updated {FIXTURE_PATH}");
        return;
    }

    let text = std::fs::read_to_string(FIXTURE_PATH).unwrap_or_else(|e| {
        panic!(
            "missing {FIXTURE_PATH} ({e}); generate it with \
             UPDATE_FIXTURES=1 cargo test -p dsm-bench --test msg_fixtures"
        )
    });
    let pinned: Vec<Fixture> = serde_json::from_str(&text).expect("parse fixtures");

    assert_eq!(
        pinned.len(),
        current.len(),
        "fixture count drifted — regenerate intentionally with UPDATE_FIXTURES=1"
    );
    for (want, got) in pinned.iter().zip(&current) {
        assert_eq!(
            want, got,
            "message bill changed for {} seed {:#x} — hot-path changes must \
             not alter protocol traffic; if the protocol itself changed on \
             purpose, regenerate with UPDATE_FIXTURES=1",
            want.scenario, want.seed
        );
    }
}

#[test]
fn solver_sim_is_deterministic() {
    // The fixture methodology rests on this: same seed, same bill.
    let a = solver_fixture(0xC0FFEE);
    let b = solver_fixture(0xC0FFEE);
    assert_eq!(a, b);
}
