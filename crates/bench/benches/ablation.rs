//! A1–A4 — ablation benches: wall-clock cost of the design-choice sweeps
//! (the counters themselves are deterministic; see the `repro` binary).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dsm_apps::WorkloadSpec;
use dsm_bench::{
    ack_mode_ablation, const_segments_ablation, invalidation_mode_ablation, page_size_ablation,
    wait_mode_ablation,
};
use std::hint::black_box;

fn bench_ablations(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);

    let spec = WorkloadSpec {
        nodes: 4,
        locations_per_node: 8,
        ops_per_node: 200,
        read_ratio: 0.7,
        locality: 0.3,
        seed: 5,
    };
    group.bench_function("A1_invalidation_modes", |b| {
        b.iter(|| black_box(invalidation_mode_ablation(&spec)));
    });

    for &size in &[1u32, 4, 16] {
        group.bench_with_input(BenchmarkId::new("A2_page_size", size), &size, |b, &size| {
            b.iter(|| black_box(page_size_ablation(&[size])));
        });
    }

    group.bench_function("A3_const_segments", |b| {
        b.iter(|| black_box(const_segments_ablation(4, 4)));
    });
    group.bench_function("A4a_wait_modes", |b| {
        b.iter(|| black_box(wait_mode_ablation(4, 4, 2)));
    });
    group.bench_function("A4b_ack_modes", |b| {
        b.iter(|| black_box(ack_mode_ablation(4, 4)));
    });
    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
