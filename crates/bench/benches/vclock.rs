//! Micro-bench of the vector-timestamp operations every protocol message
//! pays for — the per-`n` overhead behind the owner protocol's metadata.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use vclock::VectorClock;

fn bench_vclock(c: &mut Criterion) {
    let mut group = c.benchmark_group("vclock");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &n in &[4usize, 16, 64, 256] {
        let a: VectorClock = (0..n as u64).collect();
        let b: VectorClock = (0..n as u64).rev().collect();
        group.bench_with_input(BenchmarkId::new("update", n), &n, |bench, _| {
            bench.iter(|| {
                let mut vt = black_box(&a).clone();
                vt.update(black_box(&b));
                black_box(vt)
            });
        });
        group.bench_with_input(BenchmarkId::new("partial_cmp", n), &n, |bench, _| {
            bench.iter(|| black_box(black_box(&a).partial_cmp(black_box(&b))));
        });
        group.bench_with_input(BenchmarkId::new("dominated_by", n), &n, |bench, _| {
            bench.iter(|| black_box(black_box(&a).dominated_by(black_box(&b))));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_vclock);
criterion_main!(benches);
