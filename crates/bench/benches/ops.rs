//! P1 — operation throughput on the threaded engines: causal vs atomic vs
//! broadcast, across read ratios.

use atomic_dsm::{AtomicCluster, InvalMode};
use broadcast_mem::BroadcastCluster;
use causal_dsm::CausalCluster;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dsm_apps::{WorkloadOp, WorkloadSpec};
use memcore::{SharedMemory, Word};
use std::hint::black_box;

fn run_ops<M: SharedMemory<Word> + Send>(handles: Vec<M>, workload: &[Vec<WorkloadOp>]) {
    std::thread::scope(|scope| {
        for (mem, ops) in handles.into_iter().zip(workload) {
            scope.spawn(move || {
                for op in ops {
                    match op {
                        WorkloadOp::Read(loc) => {
                            black_box(mem.read(*loc).expect("read"));
                        }
                        WorkloadOp::Write(loc, v) => {
                            mem.write(*loc, Word::Int(*v)).expect("write");
                        }
                    }
                }
            });
        }
    });
}

fn bench_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("threaded_ops");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    for &read_ratio in &[0.5f64, 0.95] {
        let spec = WorkloadSpec {
            nodes: 4,
            locations_per_node: 16,
            ops_per_node: 2_000,
            read_ratio,
            locality: 0.5,
            seed: 3,
        };
        let workload = spec.generate();
        let total_ops = (spec.nodes * spec.ops_per_node) as u64;
        group.throughput(Throughput::Elements(total_ops));
        let tag = format!("r{}", (read_ratio * 100.0) as u32);

        group.bench_with_input(BenchmarkId::new("causal", &tag), &spec, |b, spec| {
            b.iter(|| {
                let cluster = CausalCluster::<Word>::builder(spec.nodes as u32, spec.locations())
                    .build()
                    .expect("cluster");
                run_ops(cluster.handles(), &workload);
            });
        });
        group.bench_with_input(BenchmarkId::new("atomic_acked", &tag), &spec, |b, spec| {
            b.iter(|| {
                let cluster = AtomicCluster::<Word>::builder(spec.nodes as u32, spec.locations())
                    .configure(|c| c.inval_mode(InvalMode::Acknowledged))
                    .build()
                    .expect("cluster");
                run_ops(cluster.handles(), &workload);
            });
        });
        group.bench_with_input(BenchmarkId::new("broadcast", &tag), &spec, |b, spec| {
            b.iter(|| {
                let cluster = BroadcastCluster::<Word>::new(spec.nodes as u32, spec.locations())
                    .expect("cluster");
                let handles: Vec<_> = (0..spec.nodes as u32).map(|i| cluster.handle(i)).collect();
                run_ops(handles, &workload);
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ops);
criterion_main!(benches);
