//! E8 — distributed dictionary operation cost on causal memory (threaded
//! engine), insert/lookup/delete mixes.

use causal_dsm::{CausalCluster, WritePolicy};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dsm_apps::{DictLayout, Dictionary};
use dsm_objects::ObjVal;
use std::hint::black_box;

fn bench_dictionary(c: &mut Criterion) {
    let mut group = c.benchmark_group("dictionary");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    for &nodes in &[2usize, 4] {
        let layout = DictLayout::new(nodes, 64);
        let items_per_node = 32i64;
        group.throughput(Throughput::Elements(
            (nodes as u64) * items_per_node as u64 * 3,
        ));
        group.bench_with_input(
            BenchmarkId::new("insert_lookup_delete", nodes),
            &nodes,
            |b, &nodes| {
                b.iter(|| {
                    let cluster = CausalCluster::<ObjVal>::builder(nodes as u32, layout.locations())
                        .configure(|c| c.owners(layout.owners()).policy(WritePolicy::OwnerFavored))
                        .build()
                        .expect("cluster");
                    std::thread::scope(|scope| {
                        for node in 0..nodes {
                            let handle = cluster.handle(node as u32);
                            scope.spawn(move || {
                                let dict = Dictionary::new(handle, layout);
                                let base = node as i64 * 1_000;
                                for k in 1..=items_per_node {
                                    dict.insert(base + k).expect("insert");
                                }
                                for k in 1..=items_per_node {
                                    black_box(dict.lookup(base + k).expect("lookup"));
                                }
                                for k in 1..=items_per_node {
                                    dict.delete(base + k).expect("delete");
                                }
                            });
                        }
                    });
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_dictionary);
criterion_main!(benches);
