//! Text renditions of the paper's figures, regenerated from the
//! executable specification and the protocol witnesses (E1–E5, E8).

use std::fmt::Write as _;

use causal_dsm::WritePolicy;
use causal_spec::paper::{self, fig1};
use causal_spec::{
    alpha, check_causal, check_causal_mode, check_sequential, render_dot, CausalGraph, NoticeMode,
    ScVerdict,
};
use dsm_sim::witness::{
    dictionary_conflict_witness, figure3_broadcast_witness, figure5_owner_witness,
};

/// E1 — Figure 1: the causal relations the paper reads off the example.
///
/// # Panics
///
/// Panics if the reproduced relations disagree with the paper.
#[must_use]
pub fn render_figure1() -> String {
    let exec = paper::figure1();
    let graph = CausalGraph::build(&exec).expect("figure 1 is well formed");
    let mut out = String::new();
    let _ = writeln!(out, "P1: w(x)1 w(y)2 r(y)2 r(x)1");
    let _ = writeln!(out, "P2: w(z)1 r(y)2 r(x)1");
    assert!(graph.concurrent(fig1::W_X, fig1::W_Z));
    let _ = writeln!(out, "  w1(x)1 ∥  w2(z)1   (concurrent)");
    assert!(graph.precedes(fig1::W_X, fig1::R1_Y));
    let _ = writeln!(out, "  w1(x)1 →* r1(y)2   (program order)");
    assert!(graph.precedes(fig1::W_Y, fig1::R2_Y));
    let _ = writeln!(out, "  w1(y)2 →* r2(y)2   (established by the read)");
    assert!(graph.precedes(fig1::W_X, fig1::R1_X));
    let _ = writeln!(out, "  w1(x)1 →* r1(x)1   (confirmed by the read)");
    out
}

/// E2 — Figure 2: the worked α sets, recomputed and checked against the
/// paper's values.
///
/// # Panics
///
/// Panics if any α set disagrees with the paper.
#[must_use]
pub fn render_figure2() -> String {
    let exec = paper::figure2();
    let graph = CausalGraph::build(&exec).expect("figure 2 is well formed");
    let mut out = String::new();
    let _ = writeln!(out, "P1: w(x)2 w(y)2 w(y)3 r(z)5 w(x)4");
    let _ = writeln!(out, "P2: w(x)1 r(y)3 w(x)7 w(z)5 r(x)4 r(x)9");
    let _ = writeln!(out, "P3: r(z)5 w(x)9");
    for (read, name, expected) in paper::figure2_expected_alphas() {
        let mut values = alpha(&exec, &graph, read).values(&exec, &0);
        values.sort_unstable();
        assert_eq!(values, expected, "α({name}) disagrees with the paper");
        let _ = writeln!(out, "  α({name}) = {values:?}   (paper: {expected:?})");
    }
    let report = check_causal(&exec).expect("well formed");
    assert!(report.is_correct());
    let _ = writeln!(out, "  verdict: {report}");
    out
}

/// E3 — Figure 3: the broadcast memory produces the execution; the causal
/// checker rejects it.
///
/// # Panics
///
/// Panics if the separation fails in either direction.
#[must_use]
pub fn render_figure3() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "P1: w(x)5 w(y)3");
    let _ = writeln!(out, "P2: w(x)2 r(y)3 r(x)5 w(z)4");
    let _ = writeln!(out, "P3: r(z)4 r(x)2");

    // Hand-written transcription is rejected...
    let transcribed = paper::figure3();
    let report = check_causal(&transcribed).expect("well formed");
    assert!(!report.is_correct());
    let _ = writeln!(
        out,
        "  causal checker on the figure: {} violation(s) — 2 ∉ α(r3(x)2)",
        report.violations.len()
    );

    // ...and the BSS causal-broadcast memory really produces it.
    let produced = figure3_broadcast_witness();
    let report = check_causal(&produced).expect("well formed");
    assert!(!report.is_correct());
    let _ = writeln!(
        out,
        "  causal-broadcast replica memory produced this execution under a \
         causally ordered delivery schedule; causal memory forbids it."
    );
    out
}

/// E5 — Figure 5: the owner protocol produces the weakly consistent
/// execution; it is causal but has no SC witness.
///
/// # Panics
///
/// Panics if any of the three claims fails.
#[must_use]
pub fn render_figure5() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "P1: r(y)0 w(x)1 r(y)0");
    let _ = writeln!(out, "P2: r(x)0 w(y)1 r(x)0");
    let (exec, messages) = figure5_owner_witness();
    assert!(check_causal(&exec).expect("well formed").is_correct());
    assert_eq!(check_sequential(&exec), ScVerdict::Inconsistent);
    let _ = writeln!(
        out,
        "  produced by the owner protocol (P1 = owner(x), P2 = owner(y)) \
         with {messages} messages"
    );
    let _ = writeln!(out, "  causal checker: correct");
    let _ = writeln!(out, "  SC witness search: none exists (weakly consistent)");
    out
}

/// The strict-vs-plain causal memory separation (the paper's footnote:
/// "the memory discussed in this paper is called *strict* causal memory"
/// in its companion theory paper).
///
/// # Panics
///
/// Panics if the two checkers fail to separate on the flip-flop
/// execution.
#[must_use]
pub fn render_notice_modes() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "P0: w(x)1   P1: w(x)2   P2: r(x)1 r(x)2 r(x)1");
    let exec = causal_spec::Execution::<i64>::builder(3)
        .write(0, 0, 1)
        .write(1, 0, 2)
        .read(2, 0, 1)
        .read(2, 0, 2)
        .read(2, 0, 1)
        .build();
    let strict = check_causal(&exec).expect("well formed");
    let plain = check_causal_mode(&exec, NoticeMode::WritesOnly).expect("well formed");
    assert!(!strict.is_correct() && plain.is_correct());
    let _ = writeln!(
        out,
        "  strict causal memory (this paper): REJECTED — the read of 2 served notice on 1"
    );
    let _ = writeln!(
        out,
        "  plain causal memory ([3]):         accepted — only writes overwrite"
    );
    out
}

/// Writes Graphviz DOT renderings of the figures' causality graphs into
/// `dir`, returning the paths written.
///
/// # Errors
///
/// Returns I/O errors from writing the files.
pub fn write_figure_dots(dir: &std::path::Path) -> std::io::Result<Vec<std::path::PathBuf>> {
    std::fs::create_dir_all(dir)?;
    let mut written = Vec::new();
    let fig1 = paper::figure1();
    let fig2 = paper::figure2();
    let fig3 = paper::figure3();
    let fig5 = paper::figure5();
    let fig3_report = check_causal(&fig3).expect("well formed");
    let renders = [
        ("figure1.dot", render_dot(&fig1, None).expect("well formed")),
        ("figure2.dot", render_dot(&fig2, None).expect("well formed")),
        (
            "figure3.dot",
            render_dot(&fig3, Some(&fig3_report)).expect("well formed"),
        ),
        ("figure5.dot", render_dot(&fig5, None).expect("well formed")),
    ];
    for (name, dot) in renders {
        let path = dir.join(name);
        std::fs::write(&path, dot)?;
        written.push(path);
    }
    Ok(written)
}

/// E8 — the §4.2 dictionary conflict, under both write policies.
///
/// # Panics
///
/// Panics if owner-favored resolution fails to protect the re-insert.
#[must_use]
pub fn render_dictionary() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "P0 (owner) inserts 10; P1 reads it; P0 deletes 10 and re-inserts 20;"
    );
    let _ = writeln!(
        out,
        "P1 issues its stale delete of 10 (a concurrent write of λ):"
    );
    let favored = dictionary_conflict_witness(WritePolicy::OwnerFavored);
    assert!(!favored.delete_applied);
    let _ = writeln!(
        out,
        "  OwnerFavored: delete rejected, slot holds {} — dictionary correct",
        favored.final_value
    );
    let arrival = dictionary_conflict_witness(WritePolicy::LastArrival);
    assert!(arrival.delete_applied);
    let _ = writeln!(
        out,
        "  LastArrival:  delete applied, slot holds {} — re-insert lost",
        arrival.final_value
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_figures_render_without_disagreement() {
        assert!(render_figure1().contains("concurrent"));
        assert!(render_figure2().contains("α(r2(x)4) = [4, 7, 9]"));
        assert!(render_figure3().contains("violation"));
        assert!(render_figure5().contains("weakly consistent"));
        assert!(render_dictionary().contains("dictionary correct"));
        assert!(render_notice_modes().contains("REJECTED"));
    }

    #[test]
    fn figure_dots_are_written() {
        let dir = std::env::temp_dir().join("causalmem-dots-test");
        let written = write_figure_dots(&dir).expect("write dots");
        assert_eq!(written.len(), 4);
        let fig3 = std::fs::read_to_string(dir.join("figure3.dot")).unwrap();
        assert!(fig3.contains("color=red"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
