//! Additional quantitative experiments: per-operation dictionary message
//! costs (E8) and the vector-timestamp metadata overhead (the price of
//! causality tracking, in wire bytes per message, as `n` grows).

use std::fmt::Write as _;

use causal_dsm::{CausalCluster, WritePolicy};
use dsm_apps::{run_causal_solver_sim, DictLayout, Dictionary, LinearSystem, SolverSimConfig};
use dsm_objects::ObjVal;
use memcore::Word;

/// Message cost of each dictionary operation kind on the causal engine
/// (single-threaded, hence deterministic).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DictCosts {
    /// Messages for an insert into the caller's own row.
    pub insert_own_row: u64,
    /// Messages for the first lookup of a foreign item (cold cache).
    pub lookup_cold: u64,
    /// Messages for a repeat lookup (warm cache).
    pub lookup_warm: u64,
    /// Messages for deleting a foreign item (a remote write of λ).
    pub delete_foreign: u64,
}

/// Measures [`DictCosts`] for an `n × m` dictionary.
///
/// # Panics
///
/// Panics if the cluster fails to build or any operation errors.
#[must_use]
pub fn dictionary_costs(n: usize, m: usize) -> DictCosts {
    let layout = DictLayout::new(n, m);
    let cluster = CausalCluster::<ObjVal>::builder(n as u32, layout.locations())
        .configure(|c| c.owners(layout.owners()).policy(WritePolicy::OwnerFavored))
        .build()
        .expect("cluster");
    let d0 = Dictionary::new(cluster.handle(0), layout);
    let d1 = Dictionary::new(cluster.handle(1), layout);
    let total = || cluster.messages().snapshot().total();

    let before = total();
    d0.insert(7).expect("insert");
    let insert_own_row = total() - before;

    let before = total();
    assert!(d1.lookup(7).expect("lookup"));
    let lookup_cold = total() - before;

    let before = total();
    assert!(d1.lookup(7).expect("lookup"));
    let lookup_warm = total() - before;

    let before = total();
    assert!(d1.delete(7).expect("delete"));
    let delete_foreign = total() - before;

    DictCosts {
        insert_own_row,
        lookup_cold,
        lookup_warm,
        delete_foreign,
    }
}

/// One row of the metadata-overhead table: average wire bytes per protocol
/// message for a solver run at `n` workers. The vector timestamp in every
/// message grows as `8n` bytes — causality tracking's scaling cost.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OverheadRow {
    /// Worker count.
    pub n: usize,
    /// Total protocol messages.
    pub messages: u64,
    /// Total approximate wire bytes.
    pub bytes: u64,
    /// Average bytes per message.
    pub avg_bytes_per_msg: f64,
}

/// Measures metadata overhead across worker counts.
#[must_use]
pub fn metadata_overhead(ns: &[usize]) -> Vec<OverheadRow> {
    ns.iter()
        .map(|&n| {
            let system = LinearSystem::random(n, 60 + n as u64);
            let run = run_causal_solver_sim(
                &system,
                &SolverSimConfig {
                    workers: n,
                    phases: 6,
                    ..SolverSimConfig::default()
                },
            );
            assert!(run.all_done);
            let messages = run.messages.total();
            let bytes = run.bytes.total();
            OverheadRow {
                n,
                messages,
                bytes,
                avg_bytes_per_msg: bytes as f64 / messages as f64,
            }
        })
        .collect()
}

/// One row of the barrier-style comparison: messages per participant per
/// crossing for the §4.1 coordinator handshake vs the decentralized
/// event-count barrier (`dsm_apps::CausalBarrier`'s protocol).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BarrierRow {
    /// Participants.
    pub n: usize,
    /// Coordinator handshake, analytic: 8 messages per worker per phase
    /// (each flag read once and written once remotely).
    pub handshake: f64,
    /// Decentralized barrier, measured (ideal signaling).
    pub decentralized: f64,
    /// Decentralized analytic: `2(n − 1)`.
    pub decentralized_analytic: f64,
}

/// Measures the decentralized barrier's message cost per participant per
/// crossing on the simulated causal DSM.
///
/// # Panics
///
/// Panics if a simulation fails to complete.
#[must_use]
pub fn barrier_costs(ns: &[usize]) -> Vec<BarrierRow> {
    use causal_dsm::CausalConfig;
    use dsm_sim::{causal_sim, ClientOp, RunLimits, Script, SimOpts};
    use memcore::Location;

    let total_for = |n: usize, rounds: i64| -> u64 {
        // Counters at 0..n, round-robin: node i owns counter i.
        let config = CausalConfig::<Word>::builder(n as u32, n as u32).build();
        let mut sim = causal_sim(&config, SimOpts::default());
        for me in 0..n {
            let mut ops: Vec<ClientOp<Word>> = Vec::new();
            for round in 1..=rounds {
                ops.push(ClientOp::Write(Location::new(me as u32), Word::Int(round)));
                for peer in 0..n {
                    if peer != me {
                        ops.push(ClientOp::wait_until(
                            Location::new(peer as u32),
                            move |v: &Word| v.as_int().is_some_and(|c| c >= round),
                        ));
                    }
                }
            }
            sim.set_client(me, Script::new(ops));
        }
        let report = sim.run(RunLimits::default());
        assert!(report.all_done, "barrier sim stuck: {report:?}");
        sim.messages().snapshot().total()
    };

    ns.iter()
        .map(|&n| {
            let short = total_for(n, 4);
            let long = total_for(n, 8);
            BarrierRow {
                n,
                handshake: 8.0,
                decentralized: (long - short) as f64 / 4.0 / n as f64,
                decentralized_analytic: (2 * (n - 1)) as f64,
            }
        })
        .collect()
}

/// Renders both cost experiments for the repro harness.
#[must_use]
pub fn render_costs() -> String {
    let mut out = String::new();
    let costs = dictionary_costs(3, 8);
    let _ = writeln!(
        out,
        "dictionary per-op messages (3 processes, 8 slots/row):"
    );
    let _ = writeln!(
        out,
        "      insert (own row) : {}   — purely local, as §4.2 promises",
        costs.insert_own_row
    );
    let _ = writeln!(
        out,
        "      lookup (cold)    : {}   — fetches of uncached rows",
        costs.lookup_cold
    );
    let _ = writeln!(
        out,
        "      lookup (warm)    : {}   — cache hits",
        costs.lookup_warm
    );
    let _ = writeln!(
        out,
        "      delete (foreign) : {}   — one certification round-trip",
        costs.delete_foreign
    );

    let _ = writeln!(
        out,
        "vector-timestamp metadata overhead (solver, 6 phases):"
    );
    for row in metadata_overhead(&[4, 8, 16, 32]) {
        let _ = writeln!(
            out,
            "      n={:>2}: {:>5} msgs, {:>8} bytes, {:>6.1} bytes/msg",
            row.n, row.messages, row.bytes, row.avg_bytes_per_msg
        );
    }

    let _ = writeln!(
        out,
        "barrier styles, messages per participant per crossing (ideal signaling):"
    );
    for row in barrier_costs(&[3, 5, 8]) {
        let _ = writeln!(
            out,
            "      n={:>2}: coordinator handshake {:>4.0}   decentralized {:>5.1} \
             (analytic 2(n-1) = {:.0})",
            row.n, row.handshake, row.decentralized, row.decentralized_analytic
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn own_row_inserts_are_free() {
        let costs = dictionary_costs(3, 8);
        assert_eq!(costs.insert_own_row, 0, "§4.2: inserts need no messages");
        assert_eq!(costs.lookup_warm, 0, "warm lookups hit the cache");
        assert!(costs.lookup_cold > 0);
        assert_eq!(costs.delete_foreign, 2, "one WRITE + one W_REPLY");
    }

    #[test]
    fn decentralized_barrier_matches_its_analytic_cost() {
        let rows = barrier_costs(&[3, 5]);
        for row in rows {
            assert!(
                (row.decentralized - row.decentralized_analytic).abs() < 1e-9,
                "n={}: measured {} vs analytic {}",
                row.n,
                row.decentralized,
                row.decentralized_analytic
            );
        }
    }

    #[test]
    fn metadata_overhead_grows_with_n() {
        let rows = metadata_overhead(&[4, 16]);
        assert!(rows[1].avg_bytes_per_msg > rows[0].avg_bytes_per_msg);
    }
}
