//! The hot-path perf suite driver: runs the seeded workloads from
//! [`dsm_bench::hotpath`] and writes a `BENCH_*.json` report.
//!
//! ```text
//! perf [--quick] [--out FILE] [--gate BASELINE [--threshold PCT]]
//! ```
//!
//! * `--quick` — CI-sized op counts on the two fixed CI seeds.
//! * `--out FILE` — write the JSON report (default: stdout table only).
//! * `--gate BASELINE` — after running, compare against the baseline
//!   report and exit non-zero if any gated workload regressed by more
//!   than the threshold (default 15%).
//!
//! Build with `--features alloc-count` to install the counting global
//! allocator and populate `allocs_per_op` (otherwise reported as -1).

use std::process::ExitCode;

use dsm_bench::hotpath::{check_regression, render_perf, run_suite, AllocProbe, PerfConfig};

// The counting allocator lives in the bin target on purpose: the library
// keeps `#![forbid(unsafe_code)]`; only this executable opts into the
// (trivially auditable) unsafe GlobalAlloc wrapper.
#[cfg(feature = "alloc-count")]
mod counting_alloc {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    static ALLOCS: AtomicU64 = AtomicU64::new(0);
    static BYTES: AtomicU64 = AtomicU64::new(0);

    struct Counting;

    // SAFETY: delegates every operation verbatim to `System`; the only
    // addition is relaxed atomic bookkeeping, which cannot affect the
    // returned pointers or layouts.
    unsafe impl GlobalAlloc for Counting {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
            System.alloc(layout)
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout);
        }

        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
            System.alloc_zeroed(layout)
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
            System.realloc(ptr, layout, new_size)
        }
    }

    #[global_allocator]
    static COUNTING: Counting = Counting;

    pub fn probe() -> dsm_bench::hotpath::AllocSnapshot {
        dsm_bench::hotpath::AllocSnapshot {
            allocs: ALLOCS.load(Ordering::Relaxed),
            bytes: BYTES.load(Ordering::Relaxed),
        }
    }
}

fn probe() -> Option<AllocProbe> {
    #[cfg(feature = "alloc-count")]
    {
        Some(counting_alloc::probe as AllocProbe)
    }
    #[cfg(not(feature = "alloc-count"))]
    {
        None
    }
}

fn main() -> ExitCode {
    let mut quick = false;
    let mut out: Option<String> = None;
    let mut gate: Option<String> = None;
    let mut threshold = 0.15;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => out = Some(args.next().expect("--out needs a path")),
            "--gate" => gate = Some(args.next().expect("--gate needs a baseline path")),
            "--threshold" => {
                threshold = args
                    .next()
                    .expect("--threshold needs a fraction")
                    .parse::<f64>()
                    .expect("--threshold must be a number, e.g. 0.15");
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: perf [--quick] [--out FILE] [--gate BASELINE [--threshold PCT]]");
                return ExitCode::from(2);
            }
        }
    }

    let cfg = PerfConfig { quick };
    eprintln!(
        "running hot-path suite ({} mode, alloc counting {})...",
        if quick { "quick" } else { "full" },
        if probe().is_some() { "on" } else { "off" }
    );
    let report = run_suite(&cfg, probe());
    print!("{}", render_perf(&report));

    if let Some(path) = out {
        let text = serde_json::to_string_pretty(&report).expect("serialize report");
        std::fs::write(&path, text + "\n").expect("write report");
        eprintln!("wrote {path}");
    }

    if let Some(baseline_path) = gate {
        let text = std::fs::read_to_string(&baseline_path).expect("read baseline");
        let baseline = serde_json::from_str(&text).expect("parse baseline");
        let violations = check_regression(&baseline, &report, threshold);
        if violations.is_empty() {
            eprintln!(
                "gate vs {baseline_path}: PASS (no gated workload below {:.0}% of baseline)",
                (1.0 - threshold) * 100.0
            );
        } else {
            eprintln!("gate vs {baseline_path}: FAIL");
            for v in &violations {
                eprintln!("  regression: {v}");
            }
            return ExitCode::FAILURE;
        }
    }

    ExitCode::SUCCESS
}
