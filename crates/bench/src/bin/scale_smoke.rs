//! CI scale smoke: seeded 128-node in-process sims under the causal
//! oracle, CI-sized op budget.
//!
//! Each cell builds a 128-node deterministic sim with hash-ring
//! ownership and ring-local working sets, runs the seeded workload to
//! completion, and checks the full recorded execution against the
//! Definition-2 oracle — [`dsm_bench::hotpath::scale_cell`] panics on a
//! wedged run or an oracle rejection, so any violation fails the build
//! with the reproducing seed in the output. One scoped/dense pair runs
//! per seed; the dense twin keeps the byte-identical Figure-4 wire
//! shape covered at the same scale.
//!
//! Usage: `scale-smoke [SEED...]` (defaults to the two CI seeds).

use dsm_bench::hotpath::{scale_cell, PerfConfig};

fn main() {
    let args: Vec<u64> = std::env::args()
        .skip(1)
        .map(|a| {
            let a = a.trim_start_matches("0x");
            u64::from_str_radix(a, 16)
                .or_else(|_| a.parse())
                .unwrap_or_else(|_| panic!("bad seed {a:?}"))
        })
        .collect();
    let seeds: &[u64] = if args.is_empty() {
        &[0xC0FFEE, 0x5EED]
    } else {
        &args
    };

    let cfg = PerfConfig { quick: true };
    for &seed in seeds {
        for scoped in [true, false] {
            let cell = scale_cell(seed, &cfg, 128, scoped);
            println!(
                "{:<18} seed={seed:#x}: {} ops causal-checked, {:.1} metadata B/op",
                cell.name, cell.ops, cell.metadata_bytes_per_op
            );
        }
    }
    println!("scale smoke: all cells passed the Definition-2 oracle");
}
