//! Regenerates every figure and analysis from the paper's evaluation.
//!
//! ```text
//! cargo run -p dsm-bench --bin repro            # everything
//! cargo run -p dsm-bench --bin repro -- fig2    # one experiment
//! ```
//!
//! Sections: `fig1 fig2 fig3 fig5 solver latency ablations dictionary chaos`.

use dsm_bench::{
    latency_sweep, render_ablations, render_chaos, render_costs, render_dictionary, render_figure1,
    render_figure2, render_figure3, render_figure5, render_latency_sweep, render_notice_modes,
    render_solver_table, solver_table, write_figure_dots,
};

fn section(title: &str, body: &str) {
    println!(
        "== {title} {}",
        "=".repeat(72usize.saturating_sub(title.len()))
    );
    println!("{body}");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let want = |name: &str| args.is_empty() || args.iter().any(|a| a == name || a == "all");

    println!(
        "Reproduction of \"Implementing and Programming Causal Distributed \
         Shared Memory\" (Hutto, Ahamad, John — ICDCS 1991)\n"
    );

    if want("fig1") {
        section("E1: Figure 1 — causal relations", &render_figure1());
    }
    if want("fig2") {
        section("E2: Figure 2 — live sets α(o)", &render_figure2());
    }
    if want("fig3") {
        section(
            "E3: Figure 3 — causal broadcasting is not causal memory",
            &render_figure3(),
        );
    }
    if want("modes") {
        section(
            "E2b: strict vs plain causal memory (the paper's footnote)",
            &render_notice_modes(),
        );
    }
    if want("fig5") {
        section(
            "E5: Figure 5 — a weakly consistent execution of the owner protocol",
            &render_figure5(),
        );
    }
    if want("solver") {
        let rows = solver_table(&[3, 4, 6, 8, 12, 16]);
        section(
            "E6/E7: §4.1 solver — messages per processor per iteration",
            &render_solver_table(&rows),
        );
        println!(
            "   (E4, the Figure-4 protocol itself, is exercised by every run above and\n\
             \x20   by the property suites: all recorded executions satisfy Definition 2.)\n"
        );
    }
    if want("latency") {
        let rows = latency_sweep(4, 6, &[1, 5, 10, 50, 100]);
        section(
            "P1: simulated makespan of a 6-phase solve (n=4) vs link latency",
            &render_latency_sweep(&rows),
        );
    }
    if want("dictionary") {
        section(
            "E8: §4.2 dictionary — concurrent delete vs re-insert",
            &render_dictionary(),
        );
    }
    if want("ablations") {
        section("A1–A4: ablations", &render_ablations());
    }
    if want("chaos") {
        section(
            "F1: fault tolerance — session-layer overhead under chaos",
            &render_chaos(0, 20),
        );
    }
    if want("costs") {
        section(
            "P2: operation costs and causality-metadata overhead",
            &render_costs(),
        );
    }
    if want("dot") {
        let dir = std::path::Path::new("target/repro-dots");
        match write_figure_dots(dir) {
            Ok(paths) => {
                println!("== DOT renderings {}", "=".repeat(58));
                for path in paths {
                    println!("  wrote {}", path.display());
                }
                println!();
            }
            Err(err) => eprintln!("failed to write DOT files: {err}"),
        }
    }
}
