//! Ablations of the design choices `DESIGN.md` calls out (A1–A4).

use std::fmt::Write as _;

use atomic_dsm::InvalMode;
use causal_dsm::{CausalConfig, CausalConfigBuilder, InvalidationMode};
use dsm_apps::{
    run_atomic_solver_sim, run_causal_solver_sim, LinearSystem, SolverSimConfig, WorkloadOp,
    WorkloadSpec,
};
use dsm_sim::{causal_sim, ClientOp, RunLimits, Script, SimOpts, WaitMode};
use memcore::{Location, Word};

/// Aggregate counters from one simulated workload run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WorkloadRun {
    /// Total protocol messages.
    pub messages: u64,
    /// Approximate wire bytes.
    pub bytes: u64,
    /// Cache invalidations performed across nodes.
    pub invalidations: u64,
    /// Simulated makespan.
    pub time: u64,
}

/// Runs a synthetic workload on the simulated causal DSM with a custom
/// protocol configuration.
///
/// # Panics
///
/// Panics if the run does not complete.
#[must_use]
pub fn run_causal_workload(
    spec: &WorkloadSpec,
    configure: impl FnOnce(CausalConfigBuilder<Word>) -> CausalConfigBuilder<Word>,
) -> WorkloadRun {
    let config = configure(CausalConfig::<Word>::builder(
        spec.nodes as u32,
        spec.locations(),
    ))
    .build();
    let mut sim = causal_sim(&config, SimOpts::default());
    for (node, ops) in spec.generate().into_iter().enumerate() {
        let script: Vec<ClientOp<Word>> = ops
            .into_iter()
            .map(|op| match op {
                WorkloadOp::Read(loc) => ClientOp::Read(loc),
                WorkloadOp::Write(loc, v) => ClientOp::Write(loc, Word::Int(v)),
            })
            .collect();
        sim.set_client(node, Script::new(script));
    }
    let report = sim.run(RunLimits::default());
    assert!(report.all_done, "workload stuck: {report:?}");
    let invalidations = (0..spec.nodes)
        .map(|i| sim.actor(i).state().invalidation_count())
        .sum();
    WorkloadRun {
        messages: sim.messages().snapshot().total(),
        bytes: sim.bytes().snapshot().total(),
        invalidations,
        time: report.time,
    }
}

/// A1 — Figure-4-exact vs writer-side invalidation, on a mixed workload.
#[must_use]
pub fn invalidation_mode_ablation(spec: &WorkloadSpec) -> [(InvalidationMode, WorkloadRun); 2] {
    [
        (
            InvalidationMode::PaperExact,
            run_causal_workload(spec, |c| c.invalidation(InvalidationMode::PaperExact)),
        ),
        (
            InvalidationMode::WriterInvalidate,
            run_causal_workload(spec, |c| c.invalidation(InvalidationMode::WriterInvalidate)),
        ),
    ]
}

/// A2 — page-size sweep on a scan-plus-writers workload: larger pages
/// amortise fetches (fewer messages) but cost bytes and false-sharing
/// invalidations.
#[must_use]
pub fn page_size_ablation(page_sizes: &[u32]) -> Vec<(u32, WorkloadRun)> {
    const NODES: u32 = 4;
    const LOCATIONS: u32 = 64;
    page_sizes
        .iter()
        .map(|&page_size| {
            let config = CausalConfig::<Word>::builder(NODES, LOCATIONS)
                .page_size(page_size)
                .build();
            let mut sim = causal_sim(&config, SimOpts::default());
            // Nodes 0..2 scan the whole namespace twice (sequential reads:
            // the page-friendly pattern); nodes 2..4 write into their own
            // partitions between scans (false sharing for big pages).
            for reader in 0..2 {
                let ops: Vec<ClientOp<Word>> = (0..2 * LOCATIONS)
                    .map(|i| ClientOp::Read(Location::new(i % LOCATIONS)))
                    .collect();
                sim.set_client(reader, Script::new(ops));
            }
            for writer in 2..4usize {
                let ops: Vec<ClientOp<Word>> = (0..32)
                    .map(|i| {
                        // Round-robin page ownership: stay in our pages.
                        let page = (writer as u32 + NODES * (i % 4)) % (LOCATIONS / page_size);
                        let loc = page * page_size + (i % page_size);
                        ClientOp::Write(Location::new(loc), Word::Int(i64::from(i) + 1))
                    })
                    .collect();
                sim.set_client(writer, Script::new(ops));
            }
            let report = sim.run(RunLimits::default());
            assert!(report.all_done);
            let invalidations = (0..NODES as usize)
                .map(|i| sim.actor(i).state().invalidation_count())
                .sum();
            (
                page_size,
                WorkloadRun {
                    messages: sim.messages().snapshot().total(),
                    bytes: sim.bytes().snapshot().total(),
                    invalidations,
                    time: report.time,
                },
            )
        })
        .collect()
}

/// A3 — the footnote-2 enhancement: marking the solver's `A`/`b` constant
/// removes their re-fetch traffic. Returns (with, without) total messages.
#[must_use]
pub fn const_segments_ablation(n: usize, phases: usize) -> (u64, u64) {
    let system = LinearSystem::random(n, 91);
    let total = |const_ab: bool| {
        let run = run_causal_solver_sim(
            &system,
            &SolverSimConfig {
                workers: n,
                phases,
                const_ab,
                ..SolverSimConfig::default()
            },
        );
        assert!(run.all_done);
        run.messages.total()
    };
    (total(true), total(false))
}

/// A4a — ideal signaling vs honest polling for the solver's waits.
/// Returns (ideal, poll) total messages for the same solve.
#[must_use]
pub fn wait_mode_ablation(n: usize, phases: usize, poll_interval: u64) -> (u64, u64) {
    let system = LinearSystem::random(n, 92);
    let total = |wait_mode: WaitMode| {
        let run = run_causal_solver_sim(
            &system,
            &SolverSimConfig {
                workers: n,
                phases,
                wait_mode,
                ..SolverSimConfig::default()
            },
        );
        assert!(run.all_done);
        run.messages.total()
    };
    (
        total(WaitMode::IdealSignal),
        total(WaitMode::Poll {
            interval: poll_interval,
        }),
    )
}

/// A4b — atomic invalidation accounting: fire-and-forget (the paper's
/// count) vs acknowledged (properly atomic). Returns (fire-and-forget,
/// acknowledged) totals.
#[must_use]
pub fn ack_mode_ablation(n: usize, phases: usize) -> (u64, u64) {
    let system = LinearSystem::random(n, 93);
    let total = |mode: InvalMode| {
        let run = run_atomic_solver_sim(
            &system,
            &SolverSimConfig {
                workers: n,
                phases,
                ..SolverSimConfig::default()
            },
            mode,
        );
        assert!(run.all_done);
        run.messages.total()
    };
    (
        total(InvalMode::FireAndForget),
        total(InvalMode::Acknowledged),
    )
}

/// Renders the ablation summary for the repro harness.
#[must_use]
pub fn render_ablations() -> String {
    let mut out = String::new();

    let spec = WorkloadSpec {
        nodes: 4,
        locations_per_node: 8,
        ops_per_node: 200,
        read_ratio: 0.7,
        locality: 0.3,
        seed: 5,
    };
    let _ = writeln!(out, "A1  invalidation mode (mixed workload, 4 nodes):");
    for (mode, run) in invalidation_mode_ablation(&spec) {
        let _ = writeln!(
            out,
            "      {mode:?}: {} msgs, {} invalidations",
            run.messages, run.invalidations
        );
    }

    let _ = writeln!(out, "A2  page size (2 scanners + 2 writers, 64 locations):");
    for (size, run) in page_size_ablation(&[1, 2, 4, 8, 16]) {
        let _ = writeln!(
            out,
            "      page={size:>2}: {:>5} msgs, {:>7} bytes, {:>4} invalidations",
            run.messages, run.bytes, run.invalidations
        );
    }

    let (with_const, without_const) = const_segments_ablation(4, 6);
    let _ = writeln!(
        out,
        "A3  const A/b (solver n=4, 6 phases): {with_const} msgs with, {without_const} without"
    );

    let (ideal, poll) = wait_mode_ablation(4, 6, 2);
    let _ = writeln!(
        out,
        "A4a wait mode (solver n=4, 6 phases): {ideal} msgs ideal-signal, {poll} polling"
    );

    let (ff, acked) = ack_mode_ablation(4, 6);
    let _ = writeln!(
        out,
        "A4b atomic inval acks (solver n=4, 6 phases): {ff} msgs fire-and-forget, {acked} acknowledged"
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_invalidate_never_reduces_invalidations() {
        let spec = WorkloadSpec {
            nodes: 3,
            locations_per_node: 4,
            ops_per_node: 100,
            read_ratio: 0.6,
            locality: 0.2,
            seed: 9,
        };
        let [(_, exact), (_, writer)] = invalidation_mode_ablation(&spec);
        assert!(writer.invalidations >= exact.invalidations);
    }

    #[test]
    fn bigger_pages_trade_messages_for_payload() {
        let rows = page_size_ablation(&[1, 8]);
        // Fewer fetch messages for the scan-dominated mix...
        assert!(rows[1].1.messages < rows[0].1.messages);
        // ...but each message carries more bytes.
        let avg = |r: &WorkloadRun| r.bytes as f64 / r.messages as f64;
        assert!(avg(&rows[1].1) > avg(&rows[0].1));
    }

    #[test]
    fn const_marking_saves_messages() {
        let (with_const, without_const) = const_segments_ablation(3, 4);
        assert!(with_const < without_const);
    }

    #[test]
    fn polling_costs_at_least_ideal_signaling() {
        let (ideal, poll) = wait_mode_ablation(3, 4, 2);
        assert!(poll >= ideal);
    }

    #[test]
    fn acks_cost_more_than_fire_and_forget() {
        let (ff, acked) = ack_mode_ablation(3, 4);
        assert!(acked > ff);
    }
}
