//! The chaos section of the repro report: what faults — and the session
//! layer that masks them — cost in messages.
//!
//! Runs a small seeded chaos batch (random workloads under random fault
//! plans, every execution validated by the causal checker) and the same
//! workloads on a reliable network, then reports the message breakdown —
//! protocol traffic vs session/fault overhead (retransmissions, duplicate
//! deliveries, drops, acks) — using the [`memcore::kinds`] counters.

use std::fmt::Write as _;

use dsm_faults::{run_chaos_once, ChaosConfig};
use memcore::kinds;

/// One row of the chaos overhead table.
#[derive(Clone, Debug)]
pub struct ChaosRow {
    /// Batch label ("faulty" or "fault-free").
    pub label: &'static str,
    /// Runs in the batch.
    pub runs: usize,
    /// Failures (violations or wedges) — must be zero.
    pub failures: usize,
    /// Protocol messages (payload kinds).
    pub protocol: u64,
    /// Retransmissions.
    pub retx: u64,
    /// Duplicate deliveries.
    pub dup: u64,
    /// Messages lost to drops/partitions/crashes.
    pub drop: u64,
    /// Session acks.
    pub ack: u64,
}

impl ChaosRow {
    /// Total non-payload messages.
    #[must_use]
    pub fn overhead(&self) -> u64 {
        self.retx + self.dup + self.drop + self.ack
    }
}

fn batch_row(label: &'static str, first_seed: u64, runs: usize, cfg: &ChaosConfig) -> ChaosRow {
    let mut row = ChaosRow {
        label,
        runs,
        failures: 0,
        protocol: 0,
        retx: 0,
        dup: 0,
        drop: 0,
        ack: 0,
    };
    for seed in first_seed..first_seed + runs as u64 {
        let outcome = run_chaos_once(seed, cfg);
        row.failures += usize::from(!outcome.ok());
        row.protocol += outcome.messages.protocol_total();
        row.retx += outcome.messages.kind_total(kinds::RETX);
        row.dup += outcome.messages.kind_total(kinds::DUP);
        row.drop += outcome.messages.kind_total(kinds::DROP);
        row.ack += outcome.messages.kind_total(kinds::ACK);
    }
    row
}

/// Runs `runs` chaos executions starting at `first_seed`, and the same
/// workloads fault-free, returning both rows.
#[must_use]
pub fn chaos_overhead(first_seed: u64, runs: usize) -> Vec<ChaosRow> {
    let faulty = ChaosConfig::default();
    let clean = ChaosConfig {
        fault_free: true,
        ..ChaosConfig::default()
    };
    vec![
        batch_row("faulty", first_seed, runs, &faulty),
        batch_row("fault-free", first_seed, runs, &clean),
    ]
}

/// Renders the chaos overhead table.
#[must_use]
pub fn render_chaos(first_seed: u64, runs: usize) -> String {
    let rows = chaos_overhead(first_seed, runs);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{runs} seeded chaos runs (random drop/dup/delay, partitions, crashes)\n\
         vs the same workloads on a reliable network; every execution is\n\
         checked against the causal specification:\n"
    );
    let _ = writeln!(
        out,
        "  {:<12} {:>8} {:>10} {:>7} {:>7} {:>7} {:>7} {:>10}",
        "batch", "failures", "protocol", "RETX", "DUP", "DROP", "ACK", "overhead"
    );
    for r in &rows {
        let pct = if r.protocol == 0 {
            0.0
        } else {
            100.0 * r.overhead() as f64 / r.protocol as f64
        };
        let _ = writeln!(
            out,
            "  {:<12} {:>8} {:>10} {:>7} {:>7} {:>7} {:>7} {:>9.1}%",
            r.label, r.failures, r.protocol, r.retx, r.dup, r.drop, r.ack, pct
        );
    }
    let _ = writeln!(
        out,
        "\n  (a failure prints its reproducing seed + fault plan; the seed\n\
         \x20  determines workload, plan, and injector dice — see docs/FAULTS.md)"
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_section_renders_and_runs_clean() {
        let rows = chaos_overhead(0, 4);
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().all(|r| r.failures == 0));
        // A reliable network never retransmits or drops.
        let clean = &rows[1];
        assert_eq!(clean.retx + clean.dup + clean.drop, 0);
        assert!(clean.ack > 0, "session acks flow even without faults");
        let text = render_chaos(0, 2);
        assert!(text.contains("RETX"));
        assert!(text.contains("fault-free"));
    }
}
