//! The hot-path throughput/latency suite: seeded workloads on the
//! *threaded* engine, emitting a machine-readable [`PerfReport`]
//! (`BENCH_*.json`) with ops/sec, latency percentiles, allocations per
//! operation, and the protocol-vs-overhead message split.
//!
//! Four workloads, each a pure function of its seed:
//!
//! * `read_heavy_cached` — one node hammers reads that all hit its local
//!   cache (the paper's read-locality case; gated in CI).
//! * `write_heavy_owner_local` — one node writes locations it owns, the
//!   protocol's zero-message write path (gated in CI).
//! * `mixed_remote` — reads and writes spread over a 4-node cluster, with
//!   misses, owner round-trips and invalidation sweeps (gated in CI).
//! * `figure6_solver` — the Figure-6 Jacobi solver end-to-end: threaded
//!   wall-clock makespan plus the deterministic simulator's message bill.
//! * `write_pipeline_w{0,4,32}` — node 0 streams remote writes to node
//!   1's pages; the cells differ only in the configured pipeline window
//!   (0 = the paper's blocking write). Same logical message bill per
//!   cell; the window buys back the blocked round trips (gated in CI).
//! * `bursty_invalidate_{plain,batched}` — bursts of pipelined writes to
//!   one hot owner with transport batching off/on; identical logical
//!   counters, fewer physical envelopes per op when batched (gated).
//! * `failover_migration` — owner failover enabled, the owner of the hot
//!   page fail-stops, and the cell reports the time to the first
//!   operation that succeeds against the promoted successor plus the
//!   heartbeat traffic per post-crash op. Recovery time is dominated by
//!   the configured suspicion/backoff budgets, not by hot-path code, so
//!   this cell is excluded from the CI regression gate (`gated: false`).
//! * `recovery_replay` — WAL replay time vs log length: a `MemDisk`-backed
//!   owner logs thousands of certified writes with compaction off, and the
//!   cell reports the median time to rebuild protocol state from the full
//!   log (`ops` = records replayed, so `ops_per_sec` is replay throughput).
//!   Ungated: the number tracks the durability layer's decode path, not
//!   hot-path code.
//! * `counter_inc` / `set_churn` / `queue_pipe` — the PR-10 typed-object
//!   family over the same engine: PN-counter bumps on owned cells
//!   (message-free, gated), observed-remove-set churn in the owner's row
//!   with periodic remote audits (gated), and a producer/consumer FIFO
//!   drain whose bill is 1.0 msgs/op by construction (ungated — one
//!   short append-only pass per cluster).
//! * `mixed_remote_tcp` — the `mixed_remote` script over `dsm-net`'s real
//!   loopback TCP sockets (one thread per node, each with its own partial
//!   network): every protocol message crosses the kernel. The cell also
//!   runs the merged history through `causal_spec::check_causal`.
//!   Wall-clock over real sockets is scheduling-noisy and concurrent
//!   interleaving makes the miss pattern — hence the message bill —
//!   nondeterministic, so the cell is ungated.
//! * `mixed_remote_tcp_batched` — the same script with pipelined writes
//!   and transport batching on: the real-socket ablation pair for the
//!   PR-7 event-driven mesh (fewer envelopes and `writev` calls per op).
//! * `write_pipeline_tcp_w{0,32}` — the write-pipeline ablation over real
//!   sockets: a two-node pure-write script, blocking vs. pipelined +
//!   batched. Both TCP pairs report `syscalls_per_op` (`writev` calls
//!   counted by the mesh) and are ungated like `mixed_remote_tcp`.
//!
//! Run via `cargo run --release -p dsm-bench --bin perf`; pass
//! `--features alloc-count` to measure allocations with the counting
//! global allocator (the bin installs it and hands the probe in).
//!
//! The optimization contract enforced on top of this suite: hot-path work
//! may change *cost per message*, never *number of messages*. The
//! per-workload `msgs_by_kind` maps in the emitted JSON must be identical
//! between `BENCH_baseline.json` and `BENCH_after.json` for the seeded
//! deterministic workloads (see `tests/msg_fixtures.rs`).

use std::collections::BTreeMap;
use std::time::Instant;

use causal_dsm::{CausalCluster, CausalHandle};
use dsm_apps::{
    publish_system, run_causal_solver_sim, run_coordinator, run_worker, LinearSystem, SolverLayout,
    SolverSimConfig,
};
use memcore::{Location, SharedMemory, StatsSnapshot};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// The value type the payload workloads store: a realistic small blob
/// (64 bytes), so the cost of copying values — the thing shared-value
/// reads eliminate — is visible to the allocator probe.
pub type Payload = Vec<u8>;

/// Bytes per stored payload value.
pub const PAYLOAD_BYTES: usize = 64;

/// A snapshot of the process-wide allocation counters, taken by the
/// `alloc-count` probe the `perf` bin installs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AllocSnapshot {
    /// Heap allocations since process start.
    pub allocs: u64,
    /// Bytes requested since process start.
    pub bytes: u64,
}

/// A probe returning the current [`AllocSnapshot`]; `None` when the
/// counting allocator is not compiled in (`allocs_per_op` is then
/// reported as `-1`).
pub type AllocProbe = fn() -> AllocSnapshot;

/// Suite parameters.
#[derive(Clone, Copy, Debug)]
pub struct PerfConfig {
    /// Quick mode: CI-sized op counts (seconds, not minutes).
    pub quick: bool,
}

/// Measurements for one (workload, seed) cell.
///
/// `Deserialize` is hand-written (below) so the three envelope-era
/// fields default when absent — old `BENCH_*.json` baselines predate
/// them, and schema drift must not break the regression gate.
#[derive(Clone, Debug, Serialize)]
pub struct WorkloadReport {
    /// Workload name.
    pub name: String,
    /// The seed that determines the op sequence.
    pub seed: u64,
    /// Operations performed in the measured phase.
    pub ops: u64,
    /// Wall-clock nanoseconds for the measured phase.
    pub elapsed_ns: u64,
    /// Throughput over the measured phase.
    pub ops_per_sec: f64,
    /// Median single-op latency (sampled in a separate timed pass).
    pub p50_ns: u64,
    /// 99th-percentile single-op latency.
    pub p99_ns: u64,
    /// Heap allocations per measured op; `-1` without the probe.
    pub allocs_per_op: f64,
    /// Heap bytes requested per measured op; `-1` without the probe.
    pub alloc_bytes_per_op: f64,
    /// Protocol messages sent during the measured phase.
    pub protocol_msgs: u64,
    /// Fault/session bookkeeping messages during the measured phase.
    pub overhead_msgs: u64,
    /// Per-kind message counts (deterministic per seed for every
    /// workload except the threaded solver's polling waits).
    pub msgs_by_kind: BTreeMap<String, u64>,
    /// Physical envelopes sent during the measured phase. Equal to the
    /// logical message total unless transport batching coalesced runs;
    /// `messages - envelopes` is the coalescing win. Defaults to 0 when
    /// read from a pre-batching report.
    pub envelope_msgs: u64,
    /// Logical protocol+overhead messages per measured op — the axis the
    /// "equal message counts" ablation contract is stated in.
    pub msgs_per_op: f64,
    /// Physical envelopes per measured op (what batching reduces).
    pub envelopes_per_op: f64,
    /// Estimated transport syscalls per measured op — `writev` calls
    /// counted by the TCP mesh, divided by ops. In-process workloads
    /// push nothing through the kernel, so the estimate is 0 there.
    /// Defaults to 0 when read from a pre-event-loop report.
    pub syscalls_per_op: f64,
    /// Causal-metadata wire bytes per measured op: the exact encoded size
    /// of every vector timestamp shipped, honoring each stamp's
    /// dense/sparse encoding. The `scale_n*` cells exist to plot this
    /// against cluster size. Defaults to 0 when read from a
    /// pre-interest-scoping report.
    pub metadata_bytes_per_op: f64,
    /// Whether the CI regression gate applies to this cell.
    pub gated: bool,
}

impl Deserialize for WorkloadReport {
    fn from_value(v: &serde::value::Value) -> Result<Self, serde::DeError> {
        fn req<T: Deserialize>(v: &serde::value::Value, field: &str) -> Result<T, serde::DeError> {
            Deserialize::from_value(v.get(field).ok_or_else(|| {
                serde::DeError::msg(format!("missing field `{field}` in WorkloadReport"))
            })?)
        }
        // The envelope-era fields default when absent so pre-batching
        // baselines still parse (the stand-in derive has no `default`).
        fn opt<T: Deserialize + Default>(
            v: &serde::value::Value,
            field: &str,
        ) -> Result<T, serde::DeError> {
            match v.get(field) {
                Some(present) => Deserialize::from_value(present),
                None => Ok(T::default()),
            }
        }
        Ok(WorkloadReport {
            name: req(v, "name")?,
            seed: req(v, "seed")?,
            ops: req(v, "ops")?,
            elapsed_ns: req(v, "elapsed_ns")?,
            ops_per_sec: req(v, "ops_per_sec")?,
            p50_ns: req(v, "p50_ns")?,
            p99_ns: req(v, "p99_ns")?,
            allocs_per_op: req(v, "allocs_per_op")?,
            alloc_bytes_per_op: req(v, "alloc_bytes_per_op")?,
            protocol_msgs: req(v, "protocol_msgs")?,
            overhead_msgs: req(v, "overhead_msgs")?,
            msgs_by_kind: req(v, "msgs_by_kind")?,
            envelope_msgs: opt(v, "envelope_msgs")?,
            msgs_per_op: opt(v, "msgs_per_op")?,
            envelopes_per_op: opt(v, "envelopes_per_op")?,
            syscalls_per_op: opt(v, "syscalls_per_op")?,
            metadata_bytes_per_op: opt(v, "metadata_bytes_per_op")?,
            gated: req(v, "gated")?,
        })
    }
}

/// The whole suite's output — the schema of `BENCH_*.json`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PerfReport {
    /// Schema version of this JSON shape.
    pub schema: u32,
    /// `true` if produced in quick (CI) mode.
    pub quick: bool,
    /// `true` if the counting allocator was active.
    pub alloc_counting: bool,
    /// One entry per (workload, seed).
    pub workloads: Vec<WorkloadReport>,
}

impl PerfReport {
    /// Looks up a cell by workload name and seed.
    #[must_use]
    pub fn cell(&self, name: &str, seed: u64) -> Option<&WorkloadReport> {
        self.workloads
            .iter()
            .find(|w| w.name == name && w.seed == seed)
    }
}

/// The fixed seeds the quick-mode (CI) suite runs.
pub const QUICK_SEEDS: [u64; 2] = [0xC0FFEE, 0x5EED];

/// The seeds the full suite runs.
pub const FULL_SEEDS: [u64; 3] = [0xC0FFEE, 0x5EED, 0xD15EA5E];

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

/// Shared measurement scaffolding: runs `op` for `ops` iterations with
/// the clock and allocator probe around the whole loop, then a shorter
/// pass timing individual ops for percentiles.
struct Measured {
    ops: u64,
    /// Total operations actually executed (throughput + latency passes) —
    /// the denominator for per-op message and envelope rates, which are
    /// deltas over the whole measured region.
    executed: u64,
    elapsed_ns: u64,
    p50_ns: u64,
    p99_ns: u64,
    allocs_per_op: f64,
    alloc_bytes_per_op: f64,
}

fn measure(ops: u64, probe: Option<AllocProbe>, mut op: impl FnMut(u64)) -> Measured {
    // Throughput phase: no per-op timing, allocator probe around the loop.
    let before = probe.map(|p| p());
    let start = Instant::now();
    for i in 0..ops {
        op(i);
    }
    let elapsed_ns = start.elapsed().as_nanos() as u64;
    let after = probe.map(|p| p());
    let (allocs_per_op, alloc_bytes_per_op) = match (before, after) {
        (Some(b), Some(a)) => (
            (a.allocs - b.allocs) as f64 / ops as f64,
            (a.bytes - b.bytes) as f64 / ops as f64,
        ),
        _ => (-1.0, -1.0),
    };

    // Latency phase: per-op timing on a sample.
    let samples = ops.min(20_000);
    let mut lat: Vec<u64> = Vec::with_capacity(samples as usize);
    for i in 0..samples {
        let t = Instant::now();
        op(ops + i);
        lat.push(t.elapsed().as_nanos() as u64);
    }
    lat.sort_unstable();

    Measured {
        ops,
        executed: ops + samples,
        elapsed_ns,
        p50_ns: percentile(&lat, 0.50),
        p99_ns: percentile(&lat, 0.99),
        allocs_per_op,
        alloc_bytes_per_op,
    }
}

fn payload(rng: &mut ChaCha8Rng) -> Payload {
    let mut v = vec![0u8; PAYLOAD_BYTES];
    for b in &mut v {
        *b = rng.gen_range(0..=255u32) as u8;
    }
    v
}

fn report(
    name: &str,
    seed: u64,
    m: Measured,
    delta: StatsSnapshot,
    envelopes: StatsSnapshot,
    gated: bool,
) -> WorkloadReport {
    let executed = m.executed.max(1) as f64;
    WorkloadReport {
        name: name.to_owned(),
        seed,
        ops: m.ops,
        elapsed_ns: m.elapsed_ns,
        ops_per_sec: m.ops as f64 / (m.elapsed_ns.max(1) as f64 / 1e9),
        p50_ns: m.p50_ns,
        p99_ns: m.p99_ns,
        allocs_per_op: m.allocs_per_op,
        alloc_bytes_per_op: m.alloc_bytes_per_op,
        protocol_msgs: delta.protocol_total(),
        overhead_msgs: delta.overhead_total(),
        msgs_by_kind: delta.by_kind(),
        envelope_msgs: envelopes.total(),
        msgs_per_op: delta.total() as f64 / executed,
        envelopes_per_op: envelopes.total() as f64 / executed,
        syscalls_per_op: 0.0,
        metadata_bytes_per_op: 0.0,
        gated,
    }
}

/// The suite's hot cached-read step. This is the operation the headline
/// acceptance numbers are about: serve one cached location to the
/// application. Pre-PR the only path was the deep-copying
/// [`SharedMemory::read`]; the shared-value overhaul routes it through
/// the zero-copy fast path instead.
fn hot_read(handle: &CausalHandle<Payload>, loc: Location) -> usize {
    handle.read_shared(loc).expect("cached read").len()
}

/// Read-heavy cached workload: warm every location into node 1's memory
/// (owned + cached), then hammer seeded random reads — every one a hit.
///
/// # Panics
///
/// Panics if the cluster fails to build or an operation errors (both are
/// engine bugs).
#[must_use]
pub fn read_heavy_cached(seed: u64, cfg: &PerfConfig, probe: Option<AllocProbe>) -> WorkloadReport {
    const LOCATIONS: u32 = 256;
    // Long enough that a quick-mode run spans many scheduler quanta —
    // sub-10ms loops made the CI gate flake on busy boxes. Hits send no
    // messages, so the op count is free to grow without perturbing the
    // message-count fixtures.
    let ops: u64 = if cfg.quick { 1_000_000 } else { 2_000_000 };
    let mut rng = ChaCha8Rng::seed_from_u64(seed);

    let cluster = CausalCluster::<Payload>::builder(2, LOCATIONS)
        .build()
        .expect("build cluster");
    let writer0 = cluster.handle(0);
    let writer1 = cluster.handle(1);
    let reader = cluster.handle(1);

    // Populate: each node writes the locations it owns (round-robin).
    for i in 0..LOCATIONS {
        let value = payload(&mut rng);
        let handle = if i % 2 == 0 { &writer0 } else { &writer1 };
        handle.write(Location::new(i), value).expect("populate");
    }
    // Warm node 1's cache. Install order matters: installing a page
    // sweeps every cached page with a dominated timestamp (the paper's
    // conservative invalidation), and one owner's pages form a vt chain
    // in write order — so warm in *descending* write order, and repeat
    // until a pass sends no messages (a message-free pass is the all-hit
    // steady state the measured phase runs in).
    for _ in 0..4 {
        let before = cluster.messages().snapshot().total();
        for i in (0..LOCATIONS).rev() {
            reader.read(Location::new(i)).expect("warm");
        }
        if cluster.messages().snapshot().total() == before {
            break;
        }
    }

    // Pre-draw the location sequence so the RNG is outside the hot loop.
    let locs: Vec<Location> = (0..4096)
        .map(|_| Location::new(rng.gen_range(0..LOCATIONS)))
        .collect();

    let base = cluster.messages().snapshot();
    let env_base = cluster.envelopes().snapshot();
    let m = measure(ops, probe, |i| {
        let loc = locs[(i as usize) & 4095];
        std::hint::black_box(hot_read(&reader, loc));
    });
    let delta = cluster.messages().snapshot().since(&base);
    let envs = cluster.envelopes().snapshot().since(&env_base);
    report("read_heavy_cached", seed, m, delta, envs, true)
}

/// Write-heavy owner-local workload: node 0 writes locations it owns —
/// the protocol's message-free write path.
///
/// # Panics
///
/// Panics if the cluster fails to build or an operation errors.
#[must_use]
pub fn write_heavy_owner_local(
    seed: u64,
    cfg: &PerfConfig,
    probe: Option<AllocProbe>,
) -> WorkloadReport {
    const LOCATIONS: u32 = 256;
    // Owner-local writes send no messages either; see read_heavy_cached
    // for why quick mode still runs a long loop.
    let ops: u64 = if cfg.quick { 400_000 } else { 800_000 };
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x9E37_79B9);

    let cluster = CausalCluster::<Payload>::builder(2, LOCATIONS)
        .build()
        .expect("build cluster");
    let writer = cluster.handle(0);

    // Pre-build value pool and owned-location sequence (even = node 0's).
    let pool: Vec<Payload> = (0..64).map(|_| payload(&mut rng)).collect();
    let locs: Vec<Location> = (0..4096)
        .map(|_| Location::new(rng.gen_range(0..LOCATIONS / 2) * 2))
        .collect();

    let base = cluster.messages().snapshot();
    let env_base = cluster.envelopes().snapshot();
    let m = measure(ops, probe, |i| {
        let loc = locs[(i as usize) & 4095];
        let value = pool[(i as usize) & 63].clone();
        writer.write(loc, value).expect("owned write");
    });
    let delta = cluster.messages().snapshot().since(&base);
    let envs = cluster.envelopes().snapshot().since(&env_base);
    report("write_heavy_owner_local", seed, m, delta, envs, true)
}

/// Mixed remote workload: one driver issues seeded reads and writes round
/// the whole cluster, exercising misses, owner round-trips, and
/// invalidation sweeps. The op sequence — and therefore the protocol
/// message bill — is a pure function of the seed.
///
/// # Panics
///
/// Panics if the cluster fails to build or an operation errors.
#[must_use]
pub fn mixed_remote(seed: u64, cfg: &PerfConfig, probe: Option<AllocProbe>) -> WorkloadReport {
    const NODES: u32 = 4;
    const LOCATIONS: u32 = 64;
    let ops: u64 = if cfg.quick { 20_000 } else { 100_000 };
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x517C_C1B7);

    let cluster = CausalCluster::<Payload>::builder(NODES, LOCATIONS)
        .build()
        .expect("build cluster");
    let handles = cluster.handles();
    let pool: Vec<Payload> = (0..64).map(|_| payload(&mut rng)).collect();

    // Pre-draw (node, loc, is_read) triples.
    let script: Vec<(usize, Location, bool)> = (0..8192)
        .map(|_| {
            (
                rng.gen_range(0..NODES) as usize,
                Location::new(rng.gen_range(0..LOCATIONS)),
                rng.gen_bool(0.7),
            )
        })
        .collect();

    let base = cluster.messages().snapshot();
    let env_base = cluster.envelopes().snapshot();
    let m = measure(ops, probe, |i| {
        let (node, loc, is_read) = script[(i as usize) & 8191];
        if is_read {
            std::hint::black_box(handles[node].read(loc).expect("read").len());
        } else {
            let value = pool[(i as usize) & 63].clone();
            handles[node].write(loc, value).expect("write");
        }
    });
    let delta = cluster.messages().snapshot().since(&base);
    let envs = cluster.envelopes().snapshot().since(&env_base);
    report("mixed_remote", seed, m, delta, envs, true)
}

/// Figure-6 solver end-to-end: wall-clock makespan of the threaded
/// Jacobi solve, with the *deterministic simulator's* message bill for
/// the same configuration attached (threaded polling waits make the
/// threaded bill timing-dependent, so the simulated one is what the
/// before/after equality contract covers).
///
/// # Panics
///
/// Panics if the solve fails to converge on the machinery level (worker
/// or coordinator errors).
#[must_use]
pub fn figure6_solver(seed: u64, cfg: &PerfConfig) -> WorkloadReport {
    const N: usize = 4;
    let phases: usize = if cfg.quick { 8 } else { 20 };
    let system = LinearSystem::random(N, seed);
    let layout = SolverLayout::new(N);

    // Deterministic message bill from the simulator.
    let sim = run_causal_solver_sim(
        &system,
        &SolverSimConfig {
            workers: N,
            phases,
            seed,
            ..SolverSimConfig::default()
        },
    );
    assert!(sim.all_done, "simulated solver stuck");

    // Threaded end-to-end wall clock.
    let cluster = CausalCluster::<memcore::Word>::builder(layout.nodes(), layout.locations())
        .configure(|c| c.owners(layout.owners()).const_pages(layout.const_pages()))
        .build()
        .expect("build cluster");
    let mut handles = cluster.handles();
    let coordinator = handles.pop().expect("coordinator handle");
    publish_system(&coordinator, &layout, &system).expect("publish");
    let start = Instant::now();
    std::thread::scope(|scope| {
        for (i, mem) in handles.iter().enumerate() {
            scope.spawn(move || run_worker(mem, &layout, i, phases).expect("worker"));
        }
        scope.spawn(|| run_coordinator(&coordinator, &layout, phases).expect("coordinator"));
    });
    let elapsed_ns = start.elapsed().as_nanos() as u64;

    let ops = (N * phases) as u64; // one solved component per worker-phase
    let msgs = sim.messages.protocol_total() + sim.messages.overhead_total();
    WorkloadReport {
        name: "figure6_solver".to_owned(),
        seed,
        ops,
        elapsed_ns,
        ops_per_sec: ops as f64 / (elapsed_ns.max(1) as f64 / 1e9),
        p50_ns: 0,
        p99_ns: 0,
        allocs_per_op: -1.0,
        alloc_bytes_per_op: -1.0,
        protocol_msgs: sim.messages.protocol_total(),
        overhead_msgs: sim.messages.overhead_total(),
        msgs_by_kind: sim.messages.by_kind(),
        // The solver sim runs without batching, so every logical message
        // is its own envelope.
        envelope_msgs: msgs,
        msgs_per_op: msgs as f64 / ops.max(1) as f64,
        envelopes_per_op: msgs as f64 / ops.max(1) as f64,
        syscalls_per_op: 0.0,
        metadata_bytes_per_op: 0.0,
        gated: false,
    }
}

/// Timing scaffold for the pipeline workloads: runs the whole seeded
/// loop (plus the trailing `flush`) under one clock and alloc-probe
/// region, sampling every 32nd op's latency inline so the message bill
/// stays a pure function of the seed (a separate latency pass would add
/// traffic and skew the per-op rates).
fn measure_inline(
    ops: u64,
    probe: Option<AllocProbe>,
    mut op: impl FnMut(u64),
    finish: impl FnOnce(),
) -> Measured {
    let mut lat: Vec<u64> = Vec::with_capacity((ops / 32 + 1) as usize);
    let before = probe.map(|p| p());
    let start = Instant::now();
    for i in 0..ops {
        if i & 31 == 0 {
            let t = Instant::now();
            op(i);
            lat.push(t.elapsed().as_nanos() as u64);
        } else {
            op(i);
        }
    }
    finish();
    let elapsed_ns = start.elapsed().as_nanos() as u64;
    let after = probe.map(|p| p());
    let (allocs_per_op, alloc_bytes_per_op) = match (before, after) {
        (Some(b), Some(a)) => (
            (a.allocs - b.allocs) as f64 / ops as f64,
            (a.bytes - b.bytes) as f64 / ops as f64,
        ),
        _ => (-1.0, -1.0),
    };
    lat.sort_unstable();
    Measured {
        ops,
        executed: ops,
        elapsed_ns,
        p50_ns: percentile(&lat, 0.50),
        p99_ns: percentile(&lat, 0.99),
        allocs_per_op,
        alloc_bytes_per_op,
    }
}

/// Bounded-pipeline workload: node 0 streams writes to pages node 1
/// owns — every op a remote WRITE/W_REPLY pair. The `window` parameter
/// is the ablation axis: window 0 is the paper's blocking Figure-4
/// write (one stalled round trip per op), window `W` overlaps up to `W`
/// of them and `flush()` settles the tail. Every cell sends exactly the
/// same logical message bill — 2 msgs/op — so throughput differences
/// are pure blocking reduction, the enhancement §5 of the paper sketches.
///
/// # Panics
///
/// Panics if the cluster fails to build or an operation errors.
#[must_use]
pub fn write_pipeline(
    seed: u64,
    cfg: &PerfConfig,
    probe: Option<AllocProbe>,
    window: u32,
) -> WorkloadReport {
    const LOCATIONS: u32 = 64;
    let ops: u64 = if cfg.quick { 30_000 } else { 120_000 };
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x00B1_0C5E);

    let cluster = CausalCluster::<Payload>::builder(2, LOCATIONS)
        .configure(|c| c.pipeline_window(window))
        .build()
        .expect("build cluster");
    let writer = cluster.handle(0);

    // Pre-draw values and the remote-location sequence (odd = node 1's).
    let pool: Vec<Payload> = (0..64).map(|_| payload(&mut rng)).collect();
    let locs: Vec<Location> = (0..4096)
        .map(|_| Location::new(rng.gen_range(0..LOCATIONS / 2) * 2 + 1))
        .collect();

    let base = cluster.messages().snapshot();
    let env_base = cluster.envelopes().snapshot();
    let m = measure_inline(
        ops,
        probe,
        |i| {
            let loc = locs[(i as usize) & 4095];
            let value = pool[(i as usize) & 63].clone();
            writer.write_pipelined(loc, value).expect("remote write");
        },
        || writer.flush().expect("flush"),
    );
    let delta = cluster.messages().snapshot().since(&base);
    let envs = cluster.envelopes().snapshot().since(&env_base);
    report(
        &format!("write_pipeline_w{window}"),
        seed,
        m,
        delta,
        envs,
        true,
    )
}

/// Bursty-invalidation workload: node 0 fires bursts of pipelined writes
/// at one hot owner, then flushes and reads its own copy back (a hit —
/// the writer's cache holds the value it just wrote). With `batching`
/// the burst's WRITEs travel in coalesced envelopes, the owner serves
/// the run under one lock acquisition with a single trailing
/// invalidation sweep, and the replies ride back batched — same logical
/// counters, measurably fewer physical envelopes per op.
///
/// # Panics
///
/// Panics if the cluster fails to build or an operation errors.
#[must_use]
pub fn bursty_invalidate(
    seed: u64,
    cfg: &PerfConfig,
    probe: Option<AllocProbe>,
    batching: bool,
) -> WorkloadReport {
    const LOCATIONS: u32 = 64;
    const BURST: u64 = 16;
    const WINDOW: u32 = 8;
    let bursts: u64 = if cfg.quick { 2_000 } else { 8_000 };
    let ops = bursts * BURST;
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x1457_B075);

    let cluster = CausalCluster::<Payload>::builder(2, LOCATIONS)
        .configure(|c| c.pipeline_window(WINDOW).batching(batching))
        .build()
        .expect("build cluster");
    let writer = cluster.handle(0);

    let pool: Vec<Payload> = (0..64).map(|_| payload(&mut rng)).collect();
    let locs: Vec<Location> = (0..4096)
        .map(|_| Location::new(rng.gen_range(0..LOCATIONS / 2) * 2 + 1))
        .collect();

    let base = cluster.messages().snapshot();
    let env_base = cluster.envelopes().snapshot();
    let m = measure_inline(
        ops,
        probe,
        |i| {
            let loc = locs[(i as usize) & 4095];
            let value = pool[(i as usize) & 63].clone();
            writer.write_pipelined(loc, value).expect("burst write");
            // End of burst: settle the window, then touch the freshest
            // page — a cache hit on the writer's own copy, message-free.
            if (i + 1) % BURST == 0 {
                writer.flush().expect("flush");
                std::hint::black_box(writer.read_shared(loc).expect("read back").len());
            }
        },
        || writer.flush().expect("final flush"),
    );
    let delta = cluster.messages().snapshot().since(&base);
    let envs = cluster.envelopes().snapshot().since(&env_base);
    let tag = if batching { "batched" } else { "plain" };
    report(
        &format!("bursty_invalidate_{tag}"),
        seed,
        m,
        delta,
        envs,
        true,
    )
}

/// PN-counter object workload: node 0 hammers `add` on the cells it owns
/// — the typed layer's message-free hot path (each bump is one local
/// read-modify-write of an owned single-cell page) — while node 1
/// periodically refreshes and reads the merged `value()`, paying two
/// remote fetches per sample. Single-driver and seeded, so the message
/// bill is deterministic and the cell is gated: the object veneer must
/// not tax the register fast path.
///
/// # Panics
///
/// Panics if the cluster fails to build or an operation errors.
#[must_use]
pub fn counter_inc(seed: u64, cfg: &PerfConfig, probe: Option<AllocProbe>) -> WorkloadReport {
    use dsm_objects::{ObjVal, PnCounter};

    let ops: u64 = if cfg.quick { 200_000 } else { 400_000 };
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x0C0_47E6);

    let layout = dsm_objects::GridLayout::new(2, 2);
    let cluster = CausalCluster::<ObjVal>::builder(2, layout.locations())
        .configure(|c| {
            c.owners(layout.owners())
                .policy(causal_dsm::WritePolicy::OwnerFavored)
        })
        .build()
        .expect("build cluster");
    let c0 = PnCounter::new(cluster.handle(0), layout);
    let c1 = PnCounter::new(cluster.handle(1), layout);

    // Pre-draw signed deltas so the RNG stays outside the hot loop.
    let deltas: Vec<i64> = (0..4096)
        .map(|_| {
            let d = rng.gen_range(1..=5i64);
            if rng.gen_bool(0.25) {
                -d
            } else {
                d
            }
        })
        .collect();

    let base = cluster.messages().snapshot();
    let env_base = cluster.envelopes().snapshot();
    let m = measure(ops, probe, |i| {
        c0.add(deltas[(i as usize) & 4095]).expect("counter add");
        // Periodic cross-node audit: refresh + merged read (remote).
        if (i + 1) % 64 == 0 {
            c1.refresh();
            std::hint::black_box(c1.value().expect("counter value"));
        }
    });
    let delta = cluster.messages().snapshot().since(&base);
    let envs = cluster.envelopes().snapshot().since(&env_base);
    report("counter_inc", seed, m, delta, envs, true)
}

/// Observed-remove-set churn: node 0 alternates `add`/`remove` of a
/// cycling item window — both stay inside its own row, so the steady
/// state is local read + local write per op — while node 1 periodically
/// refreshes and scans `contains`, paying a full remote row fetch.
/// Single-driver and seeded ⇒ deterministic bill; gated like
/// `counter_inc`.
///
/// # Panics
///
/// Panics if the cluster fails to build or an operation errors.
#[must_use]
pub fn set_churn(seed: u64, cfg: &PerfConfig, probe: Option<AllocProbe>) -> WorkloadReport {
    use dsm_objects::{CausalSet, ObjVal};

    let ops: u64 = if cfg.quick { 120_000 } else { 240_000 };

    let layout = dsm_objects::GridLayout::new(2, 32);
    let cluster = CausalCluster::<ObjVal>::builder(2, layout.locations())
        .configure(|c| {
            c.owners(layout.owners())
                .policy(causal_dsm::WritePolicy::OwnerFavored)
        })
        .build()
        .expect("build cluster");
    let s0 = CausalSet::new(cluster.handle(0), layout);
    let s1 = CausalSet::new(cluster.handle(1), layout);

    let base = cluster.messages().snapshot();
    let env_base = cluster.envelopes().snapshot();
    let m = measure(ops, probe, |i| {
        let item = ((i / 2) % 16 + 1) as i64;
        if i % 2 == 0 {
            s0.add(item).expect("set add");
        } else {
            s0.remove(item).expect("set remove");
        }
        if (i + 1) % 64 == 0 {
            s1.refresh();
            std::hint::black_box(s1.contains(item).expect("set contains"));
        }
    });
    let delta = cluster.messages().snapshot().since(&base);
    let envs = cluster.envelopes().snapshot().since(&env_base);
    report("set_churn", seed, m, delta, envs, true)
}

/// FIFO append-queue pipe: node 0 fills its append-only row, then node 1
/// drains it — every pop a cold fetch of the next producer cell (one
/// READ/READ_REPLY round trip), so the cell's logical bill is exactly
/// 1.0 msgs/op by construction. Ungated: the append-only grid allows one
/// drain per cluster, so the pass is wall-clock short and too brief for
/// a stable throughput gate — the cell exists to pin the pipe's message
/// bill and plot pop latency.
///
/// # Panics
///
/// Panics if the cluster fails to build, an operation errors, or the
/// consumer fails to drain everything the producer pushed.
#[must_use]
pub fn queue_pipe(seed: u64, cfg: &PerfConfig) -> WorkloadReport {
    use dsm_objects::{FifoQueue, ObjVal};

    let depth: usize = if cfg.quick { 1_024 } else { 2_048 };
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x0F1F_00D1);

    let layout = dsm_objects::GridLayout::new(2, depth);
    let cluster = CausalCluster::<ObjVal>::builder(2, layout.locations())
        .configure(|c| {
            c.owners(layout.owners())
                .policy(causal_dsm::WritePolicy::OwnerFavored)
        })
        .build()
        .expect("build cluster");
    let producer = FifoQueue::new(cluster.handle(0), layout);
    let consumer = FifoQueue::new(cluster.handle(1), layout);

    let items: Vec<i64> = (0..depth).map(|_| rng.gen_range(1..=i64::MAX)).collect();

    let base = cluster.messages().snapshot();
    let env_base = cluster.envelopes().snapshot();
    let mut lat: Vec<u64> = Vec::with_capacity(depth);
    let start = Instant::now();
    for &item in &items {
        assert!(producer.push(item).expect("push"), "row filled early");
    }
    for expected in &items {
        let t = Instant::now();
        let got = consumer.pop().expect("pop");
        lat.push(t.elapsed().as_nanos() as u64);
        assert_eq!(got.as_ref(), Some(expected), "pipe reordered or dropped");
    }
    let elapsed_ns = start.elapsed().as_nanos() as u64;
    let delta = cluster.messages().snapshot().since(&base);
    let envs = cluster.envelopes().snapshot().since(&env_base);
    lat.sort_unstable();
    let m = Measured {
        ops: 2 * depth as u64, // pushes + pops
        executed: 2 * depth as u64,
        elapsed_ns,
        p50_ns: percentile(&lat, 0.50),
        p99_ns: percentile(&lat, 0.99),
        allocs_per_op: -1.0,
        alloc_bytes_per_op: -1.0,
    };
    report("queue_pipe", seed, m, delta, envs, false)
}

/// `node` is unreachable forever — the bench's fail-stop model (the
/// node's threads keep running; the transport discards everything
/// addressed to it, which is indistinguishable from death to its peers).
struct BenchDeadNode(u32);

impl simnet::FaultHook for BenchDeadNode {
    fn down_until(&self, node: memcore::NodeId, _at: u64) -> Option<u64> {
        (node.index() as u32 == self.0).then_some(u64::MAX)
    }
}

/// Owner-failover recovery cell: a 3-node cluster with failover enabled
/// runs warm traffic against node 0's pages, node 0 fail-stops, and the
/// cell times the first operation that completes against the promoted
/// successor (suspicion + epoch migration + retry — the availability gap
/// the tentpole bounds). The post-crash phase then measures the steady
/// running cost: heartbeat messages per operation show up in
/// `overhead_msgs`/`msgs_per_op`.
///
/// `elapsed_ns` *is* the recovery gap (and `ops_per_sec` its inverse);
/// p50/p99 cover the post-crash steady ops. Excluded from the regression
/// gate — the number tracks the configured suspicion and backoff
/// budgets, not hot-path code.
///
/// # Panics
///
/// Panics if the cluster fails to build or an operation errors (a
/// post-crash error means failover itself is broken).
#[must_use]
pub fn failover_migration(seed: u64, cfg: &PerfConfig) -> WorkloadReport {
    const LOCATIONS: u32 = 6;
    let steady_ops: u64 = if cfg.quick { 64 } else { 256 };
    // Milliseconds-scale budgets so the cell runs in bench time; the
    // *shape* (suspect after interval × threshold, exponential backoff)
    // matches production defaults.
    let fo = causal_dsm::FailoverConfig {
        heartbeat_interval: 10,
        suspicion_threshold: 2,
        backoff_base: 2,
        backoff_max: 16,
        max_retries: 8,
        heartbeat_fanout: 0,
    };
    let cluster = CausalCluster::<memcore::Word>::builder(3, LOCATIONS)
        .configure(|c| c.failover(fo))
        .build()
        .expect("build cluster");
    let h2 = cluster.handle(2);
    let hot = Location::new(0); // page 0: owned by node 0, successor node 1

    // Warm phase: certified writes give the successor a shadow to
    // promote from, so the measured gap includes no cold-start reads.
    for i in 0..8 {
        h2.write(hot, memcore::Word::Int(i)).expect("warm write");
    }

    // The owner dies. The next operation eats the timeout, migrates the
    // page, retries against the successor — that whole gap is the number.
    cluster.set_fault_hook(Some(std::sync::Arc::new(BenchDeadNode(0))));
    let base = cluster.messages().snapshot();
    let env_base = cluster.envelopes().snapshot();
    let start = Instant::now();
    h2.write(hot, memcore::Word::Int(1000))
        .expect("recovery write");
    let recovery_ns = start.elapsed().as_nanos() as u64;

    // Post-crash steady state: ownership has migrated; these ops measure
    // the failover layer's running overhead (heartbeats keep flowing).
    let mut lat: Vec<u64> = Vec::with_capacity(steady_ops as usize);
    for i in 0..steady_ops {
        let t = Instant::now();
        h2.write(hot, memcore::Word::Int(2000 + i as i64))
            .expect("steady write");
        lat.push(t.elapsed().as_nanos() as u64);
    }
    let delta = cluster.messages().snapshot().since(&base);
    let envs = cluster.envelopes().snapshot().since(&env_base);
    lat.sort_unstable();
    let m = Measured {
        ops: 1, // the recovery op — elapsed_ns is the availability gap
        executed: 1 + steady_ops,
        elapsed_ns: recovery_ns,
        p50_ns: percentile(&lat, 0.50),
        p99_ns: percentile(&lat, 0.99),
        allocs_per_op: -1.0,
        alloc_bytes_per_op: -1.0,
    };
    cluster.set_fault_hook(None);
    let out = report("failover_migration", seed, m, delta, envs, false);
    cluster.shutdown();
    out
}

/// WAL recovery replay: how long a restarted node takes to rebuild its
/// protocol state from a log of certified writes — replay time as a
/// function of log length. The populate phase runs real engine writes
/// against a `MemDisk`-backed owner with compaction pinned off
/// (`checkpoint_every = MAX`), so the log length *is* the write count;
/// the measured phase then replays the whole log (`Store::open` decode
/// plus `CausalState::recover`) repeatedly on clones of the disk.
///
/// `ops` is the number of recovered WAL records (the log length),
/// `elapsed_ns` the median full-log replay, so `ops_per_sec` reads as
/// records replayed per second; p50/p99 cover the per-replay spread.
/// Ungated (`gated: false`): replay cost tracks the durability layer's
/// decode path, not the hot protocol path the regression gate protects,
/// and the cell exists to plot the trend line against log length
/// (quick mode replays a 4× shorter log than full mode).
///
/// # Panics
///
/// Panics if the cluster fails to build, a populate write errors, or
/// recovery comes back at incarnation 0 (meaning the log lost the boot
/// watermark — a durability bug).
#[must_use]
pub fn recovery_replay(seed: u64, cfg: &PerfConfig) -> WorkloadReport {
    use causal_dsm::{CausalConfig, CausalState, Disk, DurableConfig, MemDisk, Store, SyncPolicy};
    use memcore::NodeId;

    const LOCATIONS: u32 = 64;
    let writes: u64 = if cfg.quick { 4_096 } else { 16_384 };
    let reps: usize = if cfg.quick { 8 } else { 16 };
    // `EveryOp` is the policy the durability tentpole defaults to; on a
    // MemDisk a sync is a counter bump, so it costs the populate loop
    // nothing while keeping the record stream identical to production.
    let dcfg = DurableConfig {
        sync: SyncPolicy::EveryOp,
        checkpoint_every: u64::MAX,
    };
    let config = CausalConfig::<memcore::Word>::builder(2, LOCATIONS)
        .durability(dcfg)
        .build();
    let disk = MemDisk::new();
    let net = simnet::Network::new(2);
    let local = [NodeId::new(0), NodeId::new(1)];
    let cluster = causal_dsm::CausalCluster::with_durable_transport(
        config.clone(),
        None,
        net,
        &local,
        vec![(NodeId::new(0), Box::new(disk.clone()) as Box<dyn Disk>)],
    )
    .expect("build cluster");

    // Populate: node 0 writes its own (even) locations — zero-message
    // certified writes, each appending one WAL record.
    let h0 = cluster.handle(0);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let base = cluster.messages().snapshot();
    let env_base = cluster.envelopes().snapshot();
    for i in 0..writes {
        let l = Location::new(rng.gen_range(0..LOCATIONS / 2) * 2);
        h0.write(l, memcore::Word::Int(i as i64)).expect("populate");
    }
    let delta = cluster.messages().snapshot().since(&base);
    let envs = cluster.envelopes().snapshot().since(&env_base);
    cluster.shutdown();

    // Measure: full-log recovery, repeatedly. `MemDisk` clones share
    // their backing store, so every rep replays the identical log.
    let mut lat: Vec<u64> = Vec::with_capacity(reps);
    let mut records = 0u64;
    for _ in 0..reps {
        let t = Instant::now();
        let (_store, recovered) = Store::<memcore::Word>::open(Box::new(disk.clone()), dcfg);
        records = recovered.records.len() as u64;
        let incarnation = recovered.next_incarnation();
        let state = CausalState::recover(NodeId::new(0), config.clone(), recovered.records, incarnation);
        lat.push(t.elapsed().as_nanos() as u64);
        assert!(state.incarnation() >= 1, "recovery lost the boot watermark");
    }
    lat.sort_unstable();
    let m = Measured {
        ops: records,
        executed: records,
        elapsed_ns: lat[lat.len() / 2],
        p50_ns: percentile(&lat, 0.50),
        p99_ns: percentile(&lat, 0.99),
        allocs_per_op: -1.0,
        alloc_bytes_per_op: -1.0,
    };
    report("recovery_replay", seed, m, delta, envs, false)
}

/// The mixed-remote workload over real loopback TCP: `dsm-net` spins up
/// one thread per node, each with its own partial network, connected only
/// through kernel sockets — the same data path `dsm-server` processes
/// use. The script is the same shape (and salt) as `mixed_remote`, so the
/// two cells read side by side as in-process vs. real-transport.
///
/// The merged history is checked against the Definition-2 oracle before
/// the cell reports: a fast number for an incorrect memory is worthless.
///
/// Ungated: socket wall-clock is scheduling-noisy, and the concurrent
/// interleaving makes cache misses — and therefore the message bill — a
/// property of the run, not the seed.
///
/// # Panics
///
/// Panics if cluster bring-up fails, an operation errors, or the oracle
/// rejects the execution.
#[must_use]
pub fn mixed_remote_tcp(seed: u64, cfg: &PerfConfig) -> WorkloadReport {
    const NODES: u32 = 4;
    const LOCATIONS: u32 = 64;
    let script_len = if cfg.quick { 2048 } else { 8192 };
    let run = dsm_net::run_loopback(NODES, LOCATIONS, seed, script_len);
    tcp_report("mixed_remote_tcp", seed, run)
}

/// The same cluster-wide script as [`mixed_remote_tcp`], with the PR-7
/// transport turned all the way up: pipelined writes (window 32) sealed
/// into batch envelopes, so runs of logical messages cross the kernel in
/// single `writev` calls. Read next to `mixed_remote_tcp` the pair is the
/// real-socket ablation: the same logical protocol, fewer envelopes and
/// fewer syscalls per op. Ungated for the same reason as its plain twin.
///
/// # Panics
///
/// Panics if cluster bring-up fails, an operation errors, or the oracle
/// rejects the execution.
#[must_use]
pub fn mixed_remote_tcp_batched(seed: u64, cfg: &PerfConfig) -> WorkloadReport {
    const NODES: u32 = 4;
    const LOCATIONS: u32 = 64;
    let script_len = if cfg.quick { 2048 } else { 8192 };
    let net = dsm_net::NetOptions {
        pipeline: 32,
        batching: true,
        ..dsm_net::NetOptions::default()
    };
    let run = dsm_net::run_loopback_with(NODES, LOCATIONS, seed, script_len, &net);
    tcp_report("mixed_remote_tcp_batched", seed, run)
}

/// The write-pipeline ablation over real sockets: a two-node cluster runs
/// a pure-write script (read percentage 0), so roughly half the ops are
/// remote WRITE/W_REPLY round trips over the kernel's loopback TCP.
/// Window 0 is the paper's blocking write — one stalled round trip *and*
/// at least one syscall per op; window `W` overlaps `W` of them and lets
/// the batcher seal the overlapped WRITEs into shared envelopes. Ungated:
/// real-socket wall-clock is scheduling-noisy.
///
/// # Panics
///
/// Panics if cluster bring-up fails, an operation errors, or the oracle
/// rejects the execution.
#[must_use]
pub fn write_pipeline_tcp(seed: u64, cfg: &PerfConfig, window: u32) -> WorkloadReport {
    const NODES: u32 = 2;
    const LOCATIONS: u32 = 64;
    let script_len = if cfg.quick { 2048 } else { 8192 };
    let net = dsm_net::NetOptions {
        pipeline: window,
        batching: window > 0,
        ..dsm_net::NetOptions::default()
    };
    let run = dsm_net::run_loopback_workload(NODES, LOCATIONS, seed, script_len, 0, &net);
    tcp_report(&format!("write_pipeline_tcp_w{window}"), seed, run)
}

/// Shapes a loopback-TCP run into a cell: oracle-checks the merged
/// history first (a fast number for an incorrect memory is worthless),
/// then reports the wire-level syscall estimate — `writev` calls per op —
/// alongside the logical and envelope bills. TCP cells are always
/// ungated; see [`mixed_remote_tcp`].
fn tcp_report(name: &str, seed: u64, run: dsm_net::LoopbackReport) -> WorkloadReport {
    let verdict = causal_spec::check_causal(&run.execution).expect("well-formed execution");
    assert!(verdict.is_correct(), "TCP cluster not causal: {verdict}");

    let ops = run.ops.max(1);
    let msgs = run.protocol_msgs + run.overhead_msgs;
    WorkloadReport {
        name: name.to_owned(),
        seed,
        ops: run.ops,
        elapsed_ns: run.elapsed_ns,
        ops_per_sec: run.ops as f64 / (run.elapsed_ns.max(1) as f64 / 1e9),
        p50_ns: 0,
        p99_ns: 0,
        allocs_per_op: -1.0,
        alloc_bytes_per_op: -1.0,
        protocol_msgs: run.protocol_msgs,
        overhead_msgs: run.overhead_msgs,
        msgs_by_kind: run.msgs_by_kind,
        envelope_msgs: run.envelope_msgs,
        msgs_per_op: msgs as f64 / ops as f64,
        envelopes_per_op: run.envelope_msgs as f64 / ops as f64,
        syscalls_per_op: run.wire.writev_calls as f64 / ops as f64,
        metadata_bytes_per_op: 0.0,
        gated: false,
    }
}

/// Metadata cost at scale: an `n`-node deterministic simulation with
/// hash-ring ownership and a ring-local share graph — each node touches
/// only pages owned by itself and its two ring successors — reporting
/// the causal-metadata wire bytes shipped per operation.
///
/// With `scoped` on, owner replies carry interest-scoped **sparse**
/// timestamps: `8 + 12·nnz` bytes, where `nnz` is bounded by the share
/// graph's causal closure, not by `n`. The `_dense` twin runs the
/// *identical* seeded script with scoping off, paying the paper's flat
/// `4 + 8·n` bytes per timestamp — so the cell pair plots the tentpole
/// claim directly: dense metadata climbs linearly with cluster size,
/// while scoped metadata saturates at the workload's causal-knowledge
/// horizon (it grows with run length, not with `n`; below the
/// crossover — small clusters, long runs — the pair encoding can even
/// cost more than dense, which is the honest price of the feature).
///
/// Every run is checked against the Definition-2 oracle before it
/// reports. Ungated: the cell measures simulated traffic, not wall
/// clock, and new cells are absent from older baselines anyway.
///
/// # Panics
///
/// Panics if the simulation wedges or the oracle rejects the execution.
#[must_use]
pub fn scale_cell(seed: u64, cfg: &PerfConfig, n: u32, scoped: bool) -> WorkloadReport {
    use dsm_sim::{CausalActor, ClientOp, Script, Sim, SimOpts};
    use memcore::{NodeId, OwnerMap as _, Word};

    const PAGES_PER_NODE: u32 = 2;
    const VNODES: u32 = 32;
    let locations = n * PAGES_PER_NODE;
    let ops_per_node: u64 = if cfg.quick { 24 } else { 96 };

    let recorder = memcore::Recorder::new(n as usize);
    let config = causal_dsm::CausalConfig::<Word>::builder(n, locations)
        .owners(memcore::HashRingOwners::new(n, 1, VNODES))
        .interest_scoping(scoped)
        .build();
    let actors = (0..n)
        .map(|i| CausalActor::new(causal_dsm::CausalState::new(NodeId::new(i), config.clone())))
        .collect();
    let mut sim = Sim::new(
        actors,
        SimOpts {
            seed,
            recorder: Some(recorder.clone()),
            ..SimOpts::default()
        },
    );

    let owners = config.owners();
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ (u64::from(n) << 8));
    for node in 0..n {
        let me = NodeId::new(node);
        // The node's working set: every location owned by itself or its
        // two ring successors. This is what keeps the interest closure —
        // and therefore the sparse timestamps — O(neighborhood).
        let group: Vec<NodeId> = std::iter::once(me)
            .chain(owners.neighbors(me, 2))
            .collect();
        let working: Vec<Location> = (0..locations)
            .map(Location::new)
            .filter(|loc| group.contains(&owners.owner_of(*loc)))
            .collect();
        let mut script = Vec::with_capacity(ops_per_node as usize);
        for op in 0..ops_per_node {
            let loc = working[rng.gen_range(0..working.len())];
            if rng.gen_range(0..100u32) < 40 {
                let tag = i64::from(node) << 32 | op as i64;
                script.push(ClientOp::Write(loc, Word::Int(tag)));
            } else {
                script.push(ClientOp::Read(loc));
            }
        }
        sim.set_client(node as usize, Script::new(script));
    }

    let start = Instant::now();
    let run = sim.run_to_completion();
    let elapsed_ns = start.elapsed().as_nanos() as u64;
    assert!(run.all_done, "scale sim wedged: {:?}", run.stuck_nodes);

    let exec = causal_spec::Execution::from_recorder(&recorder);
    let verdict = causal_spec::check_causal(&exec).expect("well-formed execution");
    assert!(verdict.is_correct(), "scale sim not causal: {verdict}");

    let ops = recorder.total_ops() as u64;
    let delta = sim.messages().snapshot();
    let envelopes = sim.envelopes().snapshot();
    let metadata = sim.metadata().snapshot().total();
    let executed = ops.max(1) as f64;
    let suffix = if scoped { "" } else { "_dense" };
    WorkloadReport {
        name: format!("scale_n{n}{suffix}"),
        seed,
        ops,
        elapsed_ns,
        ops_per_sec: ops as f64 / (elapsed_ns.max(1) as f64 / 1e9),
        p50_ns: 0,
        p99_ns: 0,
        allocs_per_op: -1.0,
        alloc_bytes_per_op: -1.0,
        protocol_msgs: delta.protocol_total(),
        overhead_msgs: delta.overhead_total(),
        msgs_by_kind: delta.by_kind(),
        envelope_msgs: envelopes.total(),
        msgs_per_op: delta.total() as f64 / executed,
        envelopes_per_op: envelopes.total() as f64 / executed,
        syscalls_per_op: 0.0,
        metadata_bytes_per_op: metadata as f64 / executed,
        gated: false,
    }
}

/// Runs the whole suite: every workload on every seed for the mode.
#[must_use]
pub fn run_suite(cfg: &PerfConfig, probe: Option<AllocProbe>) -> PerfReport {
    let seeds: &[u64] = if cfg.quick { &QUICK_SEEDS } else { &FULL_SEEDS };
    // Each cell is best-of-N: a workload run builds a fresh cluster and
    // replays the same seeded op sequence, so repetition changes only
    // which run's timing is reported — message and allocation counts are
    // identical across reps. Taking the max throughput filters the
    // one-sided scheduling noise of shared CI boxes, which is what a
    // regression gate needs (a genuine slowdown slows every rep; a noisy
    // neighbour slows some).
    let reps = if cfg.quick { 3 } else { 2 };
    let mut workloads = Vec::new();
    for &seed in seeds {
        workloads.push(best_of(reps, || read_heavy_cached(seed, cfg, probe)));
        workloads.push(best_of(reps, || write_heavy_owner_local(seed, cfg, probe)));
        workloads.push(best_of(reps, || mixed_remote(seed, cfg, probe)));
        workloads.push(best_of(reps, || figure6_solver(seed, cfg)));
        for window in [0u32, 4, 32] {
            workloads.push(best_of(reps, || write_pipeline(seed, cfg, probe, window)));
        }
        for batching in [false, true] {
            workloads.push(best_of(reps, || {
                bursty_invalidate(seed, cfg, probe, batching)
            }));
        }
        // Typed-object workload family (PR 10): the object veneer on the
        // same engine paths the register cells cover.
        workloads.push(best_of(reps, || counter_inc(seed, cfg, probe)));
        workloads.push(best_of(reps, || set_churn(seed, cfg, probe)));
        // One rep: ungated (single short drain per cluster; see the cell).
        workloads.push(queue_pipe(seed, cfg));
        // One rep: the cell reports a recovery *gap*, not a throughput —
        // best-of selection over ops_per_sec would just pick the shortest
        // gap, and the cell is ungated anyway.
        workloads.push(failover_migration(seed, cfg));
        // One rep: ungated; the cell's number is a median over its own
        // internal replay repetitions already.
        workloads.push(recovery_replay(seed, cfg));
        // One rep: ungated (real-socket wall-clock), and each run spins
        // up a full TCP mesh — repetition buys nothing the gate uses.
        workloads.push(mixed_remote_tcp(seed, cfg));
        workloads.push(mixed_remote_tcp_batched(seed, cfg));
        for window in [0u32, 32] {
            workloads.push(write_pipeline_tcp(seed, cfg, window));
        }
        // One rep: fully seeded simulated traffic — repetition changes
        // only wall clock, which these ungated cells don't gate on. The
        // scoped/dense pair per size plots metadata bytes against n.
        for n in [16u32, 64, 128] {
            workloads.push(scale_cell(seed, cfg, n, true));
            workloads.push(scale_cell(seed, cfg, n, false));
        }
    }
    PerfReport {
        schema: 1,
        quick: cfg.quick,
        alloc_counting: probe.is_some(),
        workloads,
    }
}

fn best_of(reps: u32, run: impl Fn() -> WorkloadReport) -> WorkloadReport {
    let mut best = run();
    for _ in 1..reps {
        let next = run();
        if next.ops_per_sec > best.ops_per_sec {
            best = next;
        }
    }
    best
}

/// Compares `current` against `baseline`: every gated cell must reach at
/// least `1 - threshold` of the baseline's ops/sec. Returns the list of
/// violations (empty = pass); cells present in only one report are
/// ignored (schema drift is not a perf regression).
#[must_use]
pub fn check_regression(
    baseline: &PerfReport,
    current: &PerfReport,
    threshold: f64,
) -> Vec<String> {
    let mut violations = Vec::new();
    for b in baseline.workloads.iter().filter(|w| w.gated) {
        let Some(c) = current.cell(&b.name, b.seed) else {
            continue;
        };
        let floor = b.ops_per_sec * (1.0 - threshold);
        if c.ops_per_sec < floor {
            violations.push(format!(
                "{} (seed {:#x}): {:.0} ops/s < {:.0} ops/s floor ({:.0} baseline, -{:.0}%)",
                b.name,
                b.seed,
                c.ops_per_sec,
                floor,
                b.ops_per_sec,
                threshold * 100.0
            ));
        }
    }
    violations
}

/// Renders a human-readable table of one report.
#[must_use]
pub fn render_perf(report: &PerfReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<24} {:>10} {:>12} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "workload",
        "seed",
        "ops/sec",
        "p50 ns",
        "p99 ns",
        "allocs",
        "proto",
        "overhead",
        "msgs/op",
        "envs/op",
        "sys/op",
        "mdB/op"
    );
    for w in &report.workloads {
        let _ = writeln!(
            out,
            "{:<24} {:>#10x} {:>12.0} {:>9} {:>9} {:>9.2} {:>9} {:>9} {:>9.3} {:>9.3} {:>9.3} {:>9.1}",
            w.name,
            w.seed,
            w.ops_per_sec,
            w.p50_ns,
            w.p99_ns,
            w.allocs_per_op,
            w.protocol_msgs,
            w.overhead_msgs,
            w.msgs_per_op,
            w.envelopes_per_op,
            w.syscalls_per_op,
            w.metadata_bytes_per_op
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> PerfConfig {
        PerfConfig { quick: true }
    }

    #[test]
    fn cached_reads_send_no_messages() {
        // Shrunk by hand: the measured phase of the read-heavy workload
        // must be entirely message-free (that is the point of caching).
        let w = read_heavy_cached(7, &tiny(), None);
        assert_eq!(w.protocol_msgs, 0);
        assert_eq!(w.overhead_msgs, 0);
        assert!(w.ops_per_sec > 0.0);
        assert_eq!(w.allocs_per_op, -1.0, "no probe installed");
    }

    #[test]
    fn regression_gate_flags_slowdowns() {
        let mk = |ops_per_sec: f64, gated: bool| WorkloadReport {
            name: "w".into(),
            seed: 1,
            ops: 10,
            elapsed_ns: 10,
            ops_per_sec,
            p50_ns: 0,
            p99_ns: 0,
            allocs_per_op: -1.0,
            alloc_bytes_per_op: -1.0,
            protocol_msgs: 0,
            overhead_msgs: 0,
            msgs_by_kind: BTreeMap::new(),
            envelope_msgs: 0,
            msgs_per_op: 0.0,
            envelopes_per_op: 0.0,
            syscalls_per_op: 0.0,
            metadata_bytes_per_op: 0.0,
            gated,
        };
        let base = PerfReport {
            schema: 1,
            quick: true,
            alloc_counting: false,
            workloads: vec![mk(1000.0, true)],
        };
        let ok = PerfReport {
            workloads: vec![mk(900.0, true)],
            ..base.clone()
        };
        let bad = PerfReport {
            workloads: vec![mk(700.0, true)],
            ..base.clone()
        };
        assert!(check_regression(&base, &ok, 0.15).is_empty());
        assert_eq!(check_regression(&base, &bad, 0.15).len(), 1);

        // Ungated cells never fail the gate.
        let ungated_base = PerfReport {
            workloads: vec![mk(1000.0, false)],
            ..base.clone()
        };
        assert!(check_regression(&ungated_base, &bad, 0.15).is_empty());
    }

    #[test]
    fn pipeline_cells_share_one_logical_message_bill() {
        // The ablation contract behind the ≥2× acceptance claim: the
        // window changes *when* the writer blocks, never what crosses
        // the wire. Every cell is exactly one WRITE + one W_REPLY per op.
        let w0 = write_pipeline(7, &tiny(), None, 0);
        let w4 = write_pipeline(7, &tiny(), None, 4);
        assert_eq!(
            w0.msgs_by_kind, w4.msgs_by_kind,
            "window must not change the logical message bill"
        );
        assert!((w0.msgs_per_op - 2.0).abs() < 1e-9, "{}", w0.msgs_per_op);
        assert!((w4.msgs_per_op - 2.0).abs() < 1e-9, "{}", w4.msgs_per_op);
        // No batching in these cells: every message is its own envelope.
        assert_eq!(w0.envelope_msgs, w0.protocol_msgs + w0.overhead_msgs);
        assert_eq!(w4.envelope_msgs, w4.protocol_msgs + w4.overhead_msgs);
    }

    #[test]
    fn batching_cuts_envelopes_not_messages() {
        let plain = bursty_invalidate(7, &tiny(), None, false);
        let batched = bursty_invalidate(7, &tiny(), None, true);
        assert_eq!(
            plain.msgs_by_kind, batched.msgs_by_kind,
            "batching must be invisible to the logical counters"
        );
        assert_eq!(
            plain.envelope_msgs,
            plain.protocol_msgs + plain.overhead_msgs
        );
        assert!(
            batched.envelopes_per_op < plain.envelopes_per_op,
            "batched {} envs/op vs plain {} envs/op",
            batched.envelopes_per_op,
            plain.envelopes_per_op
        );
    }

    #[test]
    fn object_cells_pay_deterministic_bills() {
        // The gated object cells are single-driver and seeded: two runs
        // at the same seed must produce the identical per-kind bill.
        let a = counter_inc(7, &tiny(), None);
        let b = counter_inc(7, &tiny(), None);
        assert_eq!(a.msgs_by_kind, b.msgs_by_kind);
        assert!(a.gated);
        // The hot path is owner-local; only the periodic audits pay.
        assert!(a.msgs_per_op < 0.2, "{} msgs/op", a.msgs_per_op);
        let c = set_churn(7, &tiny(), None);
        let d = set_churn(7, &tiny(), None);
        assert_eq!(c.msgs_by_kind, d.msgs_by_kind);
        assert!(c.gated);
    }

    #[test]
    fn queue_pipe_pays_one_message_per_op() {
        let w = queue_pipe(7, &tiny());
        assert!(!w.gated, "one short drain is too brief to gate");
        // D pushes are owner-local appends (free); D pops are one cold
        // READ/READ_REPLY each — exactly 1.0 logical msgs per op.
        assert!(
            (w.msgs_per_op - 1.0).abs() < 1e-9,
            "{} msgs/op",
            w.msgs_per_op
        );
        assert!(w.p50_ns > 0 && w.p99_ns >= w.p50_ns);
    }

    #[test]
    fn failover_migration_reports_the_recovery_gap() {
        let w = failover_migration(7, &tiny());
        assert!(!w.gated, "recovery time must stay outside the perf gate");
        assert!(w.elapsed_ns > 0, "the gap is a real wall-clock interval");
        // Heartbeats (and the SUSPECT broadcast) are overhead traffic the
        // cell exists to expose.
        assert!(w.overhead_msgs > 0, "failover overhead must be visible");
        let heartbeats = w.msgs_by_kind.get(memcore::kinds::HEARTBEAT);
        assert!(heartbeats.is_some_and(|&n| n > 0), "{:?}", w.msgs_by_kind);
    }

    #[test]
    fn recovery_replay_reports_replay_time_against_log_length() {
        let w = recovery_replay(7, &tiny());
        assert!(!w.gated, "replay cost must stay outside the perf gate");
        assert_eq!(w.name, "recovery_replay");
        // The log holds at least one record per certified write plus the
        // boot watermark — `ops` is the length the cell plots against.
        assert!(w.ops > 4_096, "log too short to measure: {} records", w.ops);
        assert!(w.elapsed_ns > 0, "replay is a real wall-clock interval");
        assert!(w.p50_ns > 0 && w.p99_ns >= w.p50_ns);
        // Owner-local certified writes send nothing: the populate phase
        // must not have leaked protocol traffic into the cell.
        assert_eq!(w.protocol_msgs, 0, "{:?}", w.msgs_by_kind);
    }

    #[test]
    fn scale_cells_show_bounded_metadata_per_op() {
        // The tentpole claim in one assertion pair: on the identical
        // seeded script, dense timestamps pay O(n) bytes per message
        // while interest-scoped sparse ones pay O(interest closure).
        let scoped_16 = scale_cell(7, &tiny(), 16, true);
        let dense_16 = scale_cell(7, &tiny(), 16, false);
        let scoped_64 = scale_cell(7, &tiny(), 64, true);
        let dense_64 = scale_cell(7, &tiny(), 64, false);
        assert!(
            scoped_64.metadata_bytes_per_op < dense_64.metadata_bytes_per_op,
            "scoped {} vs dense {} at n=64",
            scoped_64.metadata_bytes_per_op,
            dense_64.metadata_bytes_per_op
        );
        // Dense grows linearly with n; scoped must grow strictly slower
        // than the cluster (4x the nodes, well under 4x the bytes).
        let dense_growth = dense_64.metadata_bytes_per_op / dense_16.metadata_bytes_per_op;
        let scoped_growth = scoped_64.metadata_bytes_per_op / scoped_16.metadata_bytes_per_op;
        assert!(
            scoped_growth < dense_growth,
            "scoped x{scoped_growth:.2} vs dense x{dense_growth:.2} from n=16 to n=64"
        );
        // Scoping must not change the protocol itself: same ops, and the
        // Figure-4 message kinds are unchanged modulo INTEREST drops.
        assert_eq!(scoped_64.ops, dense_64.ops);
    }

    #[test]
    fn reports_round_trip_through_json() {
        let report = PerfReport {
            schema: 1,
            quick: true,
            alloc_counting: false,
            workloads: vec![figure6_solver(3, &PerfConfig { quick: true })],
        };
        let text = serde_json::to_string_pretty(&report).expect("serialize");
        let back: PerfReport = serde_json::from_str(&text).expect("parse");
        assert_eq!(back.workloads[0].name, "figure6_solver");
        assert_eq!(
            back.workloads[0].protocol_msgs,
            report.workloads[0].protocol_msgs
        );
    }
}
