//! The E6/E7 quantitative experiments: solver message counts and
//! latency sweeps, causal vs atomic.

use std::fmt::Write as _;

use atomic_dsm::InvalMode;
use dsm_apps::{
    run_async_solver_sim, run_atomic_solver_sim, run_broadcast_solver_sim, run_causal_solver_sim,
    LinearSystem, SolverSimConfig,
};

/// One row of the E6 message-count table.
#[derive(Clone, Debug)]
pub struct SolverRow {
    /// Worker count.
    pub n: usize,
    /// Measured messages per worker per phase, causal protocol, ideal
    /// signaling.
    pub causal: f64,
    /// The paper's analytic causal cost: `2n + 6`.
    pub causal_analytic: f64,
    /// Measured messages per worker per phase, atomic protocol,
    /// fire-and-forget invalidation (the paper's accounting).
    pub atomic_ff: f64,
    /// The paper's analytic atomic lower bound: `3n + 5`.
    pub atomic_bound: f64,
    /// Measured messages per worker per phase, atomic protocol,
    /// acknowledged invalidation (properly atomic).
    pub atomic_acked: f64,
    /// Measured messages per worker per phase on full-replication
    /// causal-broadcast memory (ours; every write costs `n` updates).
    pub broadcast: f64,
    /// Measured messages per worker per round, asynchronous solver
    /// (causal, no handshakes).
    pub async_msgs: f64,
    /// The async analytic cost: `2(n − 1)`.
    pub async_analytic: f64,
}

/// Steady-state messages per worker per phase, measured by differencing a
/// short and a long run (cancels warm-up traffic: publishing `A`/`b`,
/// first-touch fetches).
fn steady_state(total_short: u64, total_long: u64, extra_phases: usize, n: usize) -> f64 {
    (total_long - total_short) as f64 / extra_phases as f64 / n as f64
}

/// Computes one row of the E6 table for `n` workers.
///
/// # Panics
///
/// Panics if any run fails to complete (a protocol liveness bug).
#[must_use]
pub fn solver_row(n: usize, seed: u64) -> SolverRow {
    let system = LinearSystem::random(n, seed);
    let (short_phases, long_phases) = (4, 8);
    let extra = long_phases - short_phases;

    let causal_total = |phases: usize| {
        let run = run_causal_solver_sim(
            &system,
            &SolverSimConfig {
                workers: n,
                phases,
                ..SolverSimConfig::default()
            },
        );
        assert!(run.all_done, "causal solver stuck at n={n}");
        run.messages.total()
    };
    let atomic_total = |phases: usize, mode: InvalMode| {
        let run = run_atomic_solver_sim(
            &system,
            &SolverSimConfig {
                workers: n,
                phases,
                ..SolverSimConfig::default()
            },
            mode,
        );
        assert!(run.all_done, "atomic solver stuck at n={n}");
        run.messages.total()
    };
    let async_total = |rounds: usize| {
        let run = run_async_solver_sim(&system, n, rounds, 1, 0);
        assert!(run.all_done, "async solver stuck at n={n}");
        run.messages.total()
    };
    let broadcast_total = |phases: usize| {
        let run = run_broadcast_solver_sim(
            &system,
            &SolverSimConfig {
                workers: n,
                phases,
                ..SolverSimConfig::default()
            },
        );
        assert!(run.all_done, "broadcast solver stuck at n={n}");
        run.messages.total()
    };

    SolverRow {
        n,
        causal: steady_state(
            causal_total(short_phases),
            causal_total(long_phases),
            extra,
            n,
        ),
        causal_analytic: (2 * n + 6) as f64,
        atomic_ff: steady_state(
            atomic_total(short_phases, InvalMode::FireAndForget),
            atomic_total(long_phases, InvalMode::FireAndForget),
            extra,
            n,
        ),
        atomic_bound: (3 * n + 5) as f64,
        atomic_acked: steady_state(
            atomic_total(short_phases, InvalMode::Acknowledged),
            atomic_total(long_phases, InvalMode::Acknowledged),
            extra,
            n,
        ),
        broadcast: steady_state(
            broadcast_total(short_phases),
            broadcast_total(long_phases),
            extra,
            n,
        ),
        async_msgs: steady_state(
            async_total(short_phases),
            async_total(long_phases),
            extra,
            n,
        ),
        async_analytic: (2 * (n - 1)) as f64,
    }
}

/// The full E6 table across worker counts.
#[must_use]
pub fn solver_table(ns: &[usize]) -> Vec<SolverRow> {
    ns.iter().map(|&n| solver_row(n, 40 + n as u64)).collect()
}

/// Renders the E6 table in the paper's terms.
#[must_use]
pub fn render_solver_table(rows: &[SolverRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>4} | {:>13} {:>8} | {:>13} {:>8} {:>12} | {:>10} | {:>11} {:>8}",
        "n",
        "causal meas.",
        "2n+6",
        "atomic meas.",
        "3n+5",
        "atomic+acks",
        "broadcast",
        "async meas.",
        "2(n-1)"
    );
    let _ = writeln!(out, "{}", "-".repeat(110));
    for r in rows {
        let _ = writeln!(
            out,
            "{:>4} | {:>13.1} {:>8.0} | {:>13.1} {:>8.0} {:>12.1} | {:>10.1} | {:>11.1} {:>8.0}",
            r.n,
            r.causal,
            r.causal_analytic,
            r.atomic_ff,
            r.atomic_bound,
            r.atomic_acked,
            r.broadcast,
            r.async_msgs,
            r.async_analytic
        );
    }
    out
}

/// One row of the latency sweep: simulated makespan of a fixed solve.
#[derive(Clone, Debug)]
pub struct LatencyRow {
    /// One-way link latency (simulated time units).
    pub latency: u64,
    /// Causal solver makespan.
    pub causal_time: u64,
    /// Atomic (acknowledged) solver makespan.
    pub atomic_time: u64,
    /// Asynchronous solver makespan (same number of rounds).
    pub async_time: u64,
}

/// Sweeps link latency for a fixed problem size — the "high latency
/// favours causal memory" claim of the introduction, quantified.
#[must_use]
pub fn latency_sweep(n: usize, phases: usize, latencies: &[u64]) -> Vec<LatencyRow> {
    let system = LinearSystem::random(n, 77);
    latencies
        .iter()
        .map(|&latency| {
            let cfg = SolverSimConfig {
                workers: n,
                phases,
                latency,
                ..SolverSimConfig::default()
            };
            let causal = run_causal_solver_sim(&system, &cfg);
            let atomic = run_atomic_solver_sim(&system, &cfg, InvalMode::Acknowledged);
            let asynchronous = run_async_solver_sim(&system, n, phases, latency, 0);
            LatencyRow {
                latency,
                causal_time: causal.time,
                atomic_time: atomic.time,
                async_time: asynchronous.time,
            }
        })
        .collect()
}

/// Renders the latency sweep.
#[must_use]
pub fn render_latency_sweep(rows: &[LatencyRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>8} | {:>12} {:>12} {:>12}",
        "latency", "causal", "atomic+acks", "async"
    );
    let _ = writeln!(out, "{}", "-".repeat(52));
    for r in rows {
        let _ = writeln!(
            out,
            "{:>8} | {:>12} {:>12} {:>12}",
            r.latency, r.causal_time, r.atomic_time, r.async_time
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solver_row_matches_paper_formulas() {
        let row = solver_row(3, 1);
        assert!((row.causal - row.causal_analytic).abs() < 1e-9);
        assert!(row.atomic_ff >= row.atomic_bound);
        assert!(row.atomic_acked >= row.atomic_ff);
        assert!((row.async_msgs - row.async_analytic).abs() < 1e-9);
        assert!(row.causal < row.atomic_ff, "causal must win");
    }

    #[test]
    fn gap_grows_with_n() {
        let rows = solver_table(&[3, 6]);
        let gap = |r: &SolverRow| r.atomic_ff - r.causal;
        assert!(gap(&rows[1]) > gap(&rows[0]));
        let text = render_solver_table(&rows);
        assert!(text.contains("2n+6"));
    }

    #[test]
    fn latency_scales_makespan_linearly_ish() {
        let rows = latency_sweep(3, 3, &[1, 10]);
        assert_eq!(rows.len(), 2);
        assert!(rows[1].causal_time > rows[0].causal_time * 5);
        assert!(!render_latency_sweep(&rows).is_empty());
    }
}
