//! The benchmark and reproduction harness: regenerates every figure and
//! quantitative analysis from the paper's evaluation (see `DESIGN.md`'s
//! experiment index) plus the A1–A4 ablations.
//!
//! Run `cargo run -p dsm-bench --bin repro` for the full report, or the
//! Criterion benches (`cargo bench`) for wall-clock measurements.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ablations;
mod costs;
mod experiments;
mod faults_report;
mod figures;
pub mod hotpath;

pub use ablations::{
    ack_mode_ablation, const_segments_ablation, invalidation_mode_ablation, page_size_ablation,
    render_ablations, run_causal_workload, wait_mode_ablation, WorkloadRun,
};
pub use costs::{
    barrier_costs, dictionary_costs, metadata_overhead, render_costs, BarrierRow, DictCosts,
    OverheadRow,
};
pub use experiments::{
    latency_sweep, render_latency_sweep, render_solver_table, solver_row, solver_table, LatencyRow,
    SolverRow,
};
pub use faults_report::{chaos_overhead, render_chaos, ChaosRow};
pub use figures::{
    render_dictionary, render_figure1, render_figure2, render_figure3, render_figure5,
    render_notice_modes, write_figure_dots,
};
