//! The write-ahead log's record vocabulary and its CRC framing.
//!
//! Each record is one protocol-visible durability event. The stream is
//! replayed in order by `causal-dsm`'s recovery to rebuild exactly the
//! state a restarted owner must not lose: page images with their
//! per-slot origin clocks, the owner-epoch table, interest sets, and
//! the node's clock / write-sequence / incarnation frontier.
//!
//! On the wire (well, on the platter) every record is framed as
//!
//! ```text
//! [len: u32 LE] [crc32(payload): u32 LE] [payload: len bytes]
//! ```
//!
//! where `payload` is the record's exact-`encoded_len`
//! [`Wire`](simnet::codec::Wire) encoding. [`decode_stream`] accepts
//! the longest prefix of frames whose header, CRC, and payload decode
//! all agree and stops at the first that does not — a torn tail is
//! data loss bounded by the sync policy, never a panic and never a
//! resurrected half-write.

use std::sync::Arc;

use bytes::{BufMut, Bytes, BytesMut};
use memcore::{Location, NodeId, OwnerEpoch, PageId, WriteId};
use simnet::codec::{CodecError, Wire};
use vclock::VectorClock;

use crate::crc32;

/// Upper bound on a single record's payload (64 MiB). A length header
/// beyond this is treated as corruption, not an allocation request.
pub const MAX_RECORD_LEN: usize = 1 << 26;

/// One durability event in the write-ahead log.
///
/// The generic `V` is the memory's value type, exactly as in
/// `causal_dsm::Msg<V>`; values are `Arc`-shared and wire-transparent.
#[derive(Clone, Debug, PartialEq)]
pub enum WalRecord<V> {
    /// A certified write at this owner: the slot installed (or, when
    /// `applied` is false, the owner-favored reject/stale verdict whose
    /// clock merge must still survive a crash), the origin clock it
    /// carries, and the owner's merged clock right after serving.
    Write {
        /// Location written.
        loc: Location,
        /// Value installed (or proposed, when not applied).
        value: Arc<V>,
        /// The write's globally unique id.
        wid: WriteId,
        /// The writer's timestamp — the slot's origin clock.
        origin: VectorClock,
        /// This node's clock after `VT_i := update(VT_i, VT)`.
        node_vt: VectorClock,
        /// Whether the slot was installed (`false`: rejected/stale —
        /// replay merges the clocks but leaves the page image alone).
        applied: bool,
    },
    /// A full page image with per-slot origin clocks: checkpoint
    /// entries, hot-standby shadows, and failover promotions.
    PageInstall {
        /// Page installed.
        page: PageId,
        /// The page's vector timestamp.
        vt: VectorClock,
        /// Slot values and write ids, in location order.
        slots: Vec<(Arc<V>, WriteId)>,
        /// Per-slot origin clocks (parallel to `slots`).
        origins: Vec<VectorClock>,
        /// `true` for a hot-standby shadow (not served until promoted).
        shadow: bool,
    },
    /// An owner-epoch advance observed for `page`.
    Epoch {
        /// Page whose ownership moved.
        page: PageId,
        /// The epoch now in force.
        epoch: OwnerEpoch,
    },
    /// An interest-set change at this owner: `node` registered for (or
    /// dropped from) `page`'s invalidation fan-out.
    Interest {
        /// Page whose interest set changed.
        page: PageId,
        /// The caching node.
        node: NodeId,
        /// `true` on registration, `false` on an eviction drop.
        registered: bool,
    },
    /// Node watermark: the clock / write-sequence / incarnation
    /// frontier at the moment of the append. Written whenever the
    /// frontier advances without any other record capturing it, and
    /// once at every (re)start so incarnations strictly increase
    /// across process lifetimes.
    Node {
        /// The node's vector clock.
        vt: VectorClock,
        /// Next local write sequence number (duplicate-`WriteId` fence).
        write_seq: u64,
        /// Process incarnation (bumped on every recovery).
        incarnation: u32,
    },
}

impl<V: Wire> Wire for WalRecord<V> {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            WalRecord::Write {
                loc,
                value,
                wid,
                origin,
                node_vt,
                applied,
            } => {
                buf.put_u8(0);
                loc.encode(buf);
                value.encode(buf);
                wid.encode(buf);
                origin.encode(buf);
                node_vt.encode(buf);
                applied.encode(buf);
            }
            WalRecord::PageInstall {
                page,
                vt,
                slots,
                origins,
                shadow,
            } => {
                buf.put_u8(1);
                page.encode(buf);
                vt.encode(buf);
                (slots.len() as u32).encode(buf);
                for (value, wid) in slots {
                    value.encode(buf);
                    wid.encode(buf);
                }
                origins.encode(buf);
                shadow.encode(buf);
            }
            WalRecord::Epoch { page, epoch } => {
                buf.put_u8(2);
                page.encode(buf);
                epoch.encode(buf);
            }
            WalRecord::Interest {
                page,
                node,
                registered,
            } => {
                buf.put_u8(3);
                page.encode(buf);
                node.encode(buf);
                registered.encode(buf);
            }
            WalRecord::Node {
                vt,
                write_seq,
                incarnation,
            } => {
                buf.put_u8(4);
                vt.encode(buf);
                write_seq.encode(buf);
                incarnation.encode(buf);
            }
        }
    }

    fn decode(buf: &mut Bytes) -> Result<Self, CodecError> {
        match u8::decode(buf)? {
            0 => Ok(WalRecord::Write {
                loc: Location::decode(buf)?,
                value: Arc::new(V::decode(buf)?),
                wid: WriteId::decode(buf)?,
                origin: VectorClock::decode(buf)?,
                node_vt: VectorClock::decode(buf)?,
                applied: bool::decode(buf)?,
            }),
            1 => {
                let page = PageId::decode(buf)?;
                let vt = VectorClock::decode(buf)?;
                let len = u32::decode(buf)? as usize;
                let mut slots = Vec::with_capacity(len.min(1 << 16));
                for _ in 0..len {
                    slots.push((Arc::new(V::decode(buf)?), WriteId::decode(buf)?));
                }
                Ok(WalRecord::PageInstall {
                    page,
                    vt,
                    slots,
                    origins: Vec::decode(buf)?,
                    shadow: bool::decode(buf)?,
                })
            }
            2 => Ok(WalRecord::Epoch {
                page: PageId::decode(buf)?,
                epoch: OwnerEpoch::decode(buf)?,
            }),
            3 => Ok(WalRecord::Interest {
                page: PageId::decode(buf)?,
                node: NodeId::decode(buf)?,
                registered: bool::decode(buf)?,
            }),
            4 => Ok(WalRecord::Node {
                vt: VectorClock::decode(buf)?,
                write_seq: u64::decode(buf)?,
                incarnation: u32::decode(buf)?,
            }),
            d => Err(CodecError::BadDiscriminant(d)),
        }
    }

    fn encoded_len(&self) -> usize {
        1 + match self {
            WalRecord::Write {
                loc,
                value,
                wid,
                origin,
                node_vt,
                applied,
            } => {
                loc.encoded_len()
                    + value.encoded_len()
                    + wid.encoded_len()
                    + origin.encoded_len()
                    + node_vt.encoded_len()
                    + applied.encoded_len()
            }
            WalRecord::PageInstall {
                page,
                vt,
                slots,
                origins,
                shadow,
            } => {
                page.encoded_len()
                    + vt.encoded_len()
                    + 4
                    + slots
                        .iter()
                        .map(|(v, w)| v.encoded_len() + w.encoded_len())
                        .sum::<usize>()
                    + origins.encoded_len()
                    + shadow.encoded_len()
            }
            WalRecord::Epoch { page, epoch } => page.encoded_len() + epoch.encoded_len(),
            WalRecord::Interest {
                page,
                node,
                registered,
            } => page.encoded_len() + node.encoded_len() + registered.encoded_len(),
            WalRecord::Node {
                vt,
                write_seq,
                incarnation,
            } => vt.encoded_len() + write_seq.encoded_len() + incarnation.encoded_len(),
        }
    }
}

/// Encodes `records` as a contiguous run of CRC frames.
#[must_use]
pub fn frame_records<V: Wire>(records: &[WalRecord<V>]) -> Vec<u8> {
    let payload_len: usize = records.iter().map(Wire::encoded_len).sum();
    let mut out = Vec::with_capacity(payload_len + 8 * records.len());
    for record in records {
        let mut payload = BytesMut::with_capacity(record.encoded_len());
        record.encode(&mut payload);
        debug_assert_eq!(payload.len(), record.encoded_len(), "encoded_len is exact");
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&crc32(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
    }
    out
}

/// Decodes the longest valid frame prefix of `bytes`.
///
/// Returns the recovered records and the byte offset of the first
/// invalid frame (equal to `bytes.len()` when the whole stream is
/// valid). Never panics: a short header, an oversized length, a CRC
/// mismatch, a payload that fails to decode, or trailing payload bytes
/// all end the scan at the last good record.
#[must_use]
pub fn decode_stream<V: Wire>(bytes: &[u8]) -> (Vec<WalRecord<V>>, usize) {
    let mut records = Vec::new();
    let mut off = 0usize;
    loop {
        let rest = &bytes[off..];
        if rest.len() < 8 {
            break;
        }
        let len = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]) as usize;
        let crc = u32::from_le_bytes([rest[4], rest[5], rest[6], rest[7]]);
        if len > MAX_RECORD_LEN || rest.len() - 8 < len {
            break;
        }
        let payload = &rest[8..8 + len];
        if crc32(payload) != crc {
            break;
        }
        let mut buf = Bytes::from(payload);
        match WalRecord::<V>::decode(&mut buf) {
            Ok(record) if buf.is_empty() => records.push(record),
            _ => break,
        }
        off += 8 + len;
    }
    (records, off)
}

#[cfg(test)]
mod tests {
    use super::*;
    use memcore::Word;

    fn sample() -> Vec<WalRecord<Word>> {
        let mut vt = VectorClock::new(3);
        vt.increment(1);
        vt.increment(1);
        vt.increment(2);
        vec![
            WalRecord::Node {
                vt: vt.clone(),
                write_seq: 7,
                incarnation: 2,
            },
            WalRecord::Write {
                loc: Location::new(5),
                value: Arc::new(Word::Int(42)),
                wid: WriteId::new(NodeId::new(1), 7),
                origin: vt.clone(),
                node_vt: vt.clone(),
                applied: true,
            },
            WalRecord::PageInstall {
                page: PageId::new(1),
                vt: vt.clone(),
                slots: vec![
                    (Arc::new(Word::Int(1)), WriteId::new(NodeId::new(0), 1)),
                    (Arc::new(Word::Bool(true)), WriteId::new(NodeId::new(2), 3)),
                ],
                origins: vec![vt.clone(), VectorClock::new(3)],
                shadow: true,
            },
            WalRecord::Epoch {
                page: PageId::new(1),
                epoch: OwnerEpoch::new(3),
            },
            WalRecord::Interest {
                page: PageId::new(0),
                node: NodeId::new(2),
                registered: false,
            },
        ]
    }

    #[test]
    fn frame_roundtrip() {
        let records = sample();
        let bytes = frame_records(&records);
        let (decoded, consumed) = decode_stream::<Word>(&bytes);
        assert_eq!(decoded, records);
        assert_eq!(consumed, bytes.len());
    }

    #[test]
    fn truncation_at_every_byte_offset_yields_a_prefix() {
        // The satellite task's contract, verbatim: cut the log at every
        // byte offset; recovery must neither panic nor resurrect a
        // record that was not fully certified to disk.
        let records = sample();
        let bytes = frame_records(&records);
        let mut boundaries = vec![0usize];
        for record in &records {
            boundaries.push(boundaries.last().unwrap() + 8 + record.encoded_len());
        }
        for cut in 0..=bytes.len() {
            let (decoded, consumed) = decode_stream::<Word>(&bytes[..cut]);
            // Exactly the records whose frames fit entirely below the cut.
            let whole = boundaries.iter().filter(|&&b| b > 0 && b <= cut).count();
            assert_eq!(decoded.len(), whole, "cut at {cut}");
            assert_eq!(decoded[..], records[..whole], "cut at {cut}");
            assert_eq!(consumed, boundaries[whole], "cut at {cut}");
        }
    }

    #[test]
    fn corruption_at_every_byte_offset_never_panics_or_overreads() {
        let records = sample();
        let bytes = frame_records(&records);
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0xA5;
            let (decoded, consumed) = decode_stream::<Word>(&bad);
            // A flipped byte may shorten the stream but can never
            // produce a record that was not in the original prefix —
            // except in the headers, where it can only end the scan.
            assert!(decoded.len() <= records.len(), "corrupt at {i}");
            assert!(consumed <= bad.len(), "corrupt at {i}");
            for (d, r) in decoded.iter().zip(&records) {
                if d != r {
                    // The only tolerated divergence: a length-header
                    // flip that still frames a CRC-valid payload is
                    // impossible; a payload flip fails its CRC. So any
                    // decoded record must equal the original.
                    panic!("corrupt at {i} resurrected an altered record");
                }
            }
        }
    }

    #[test]
    fn oversized_length_header_is_corruption_not_allocation() {
        let mut bytes = frame_records(&sample());
        bytes[0..4].copy_from_slice(&(u32::MAX).to_le_bytes());
        let (decoded, consumed) = decode_stream::<Word>(&bytes);
        assert!(decoded.is_empty());
        assert_eq!(consumed, 0);
    }
}
