//! Storage backends for the write-ahead log.
//!
//! A [`Store`](crate::Store) keeps two byte streams: a **checkpoint**
//! (the last compacted state image) and a **log** (records appended
//! since). Both carry an 8-byte little-endian *generation* header so a
//! crash between "install new checkpoint" and "reset log" is
//! detectable: a log whose generation differs from the checkpoint's
//! predates it, and everything in it is already reflected in the
//! checkpoint image — recovery ignores it.
//!
//! Two implementations:
//!
//! * [`DirDisk`] — two files in a data directory, `fsync`ed appends and
//!   atomic-rename checkpoint installs. What `dsm-server --data-dir`
//!   uses.
//! * [`MemDisk`] — a shared in-memory disk with an explicit *synced*
//!   watermark and a [`crash`](MemDisk::crash) operator that discards
//!   (or tears mid-record) everything after it. What the deterministic
//!   simulator uses, so chaos plans can crash a node at an injected WAL
//!   offset and restart it against the surviving bytes.

use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use parking_lot::Mutex;

/// What a backend read back at open time.
#[derive(Clone, Debug, Default)]
pub struct DiskImage {
    /// Generation of the checkpoint stream.
    pub checkpoint_seq: u64,
    /// Checkpoint bytes (CRC frames; possibly empty).
    pub checkpoint: Vec<u8>,
    /// Generation the log stream extends.
    pub log_seq: u64,
    /// Log bytes (CRC frames; possibly torn at the tail).
    pub log: Vec<u8>,
}

/// The storage operations a [`Store`](crate::Store) needs.
///
/// Implementations must make [`commit`](Disk::commit) atomic with
/// respect to crashes: after recovery either the old checkpoint and old
/// log generation are visible, or the new checkpoint with an empty log
/// of the new generation. [`append`](Disk::append)ed bytes become
/// crash-durable only once [`sync`](Disk::sync) returns.
pub trait Disk: Send {
    /// Reads both streams (called once, at open).
    fn load(&mut self) -> DiskImage;
    /// Appends raw frame bytes to the log.
    fn append(&mut self, bytes: &[u8]);
    /// Makes all appended bytes crash-durable.
    fn sync(&mut self);
    /// Atomically installs `checkpoint` as generation `seq` and resets
    /// the log to empty under the same generation.
    fn commit(&mut self, checkpoint: &[u8], seq: u64);
}

const CKPT_FILE: &str = "checkpoint.wal";
const LOG_FILE: &str = "log.wal";

/// A real data directory: `checkpoint.wal` + `log.wal`.
///
/// Appends go through a kept-open file handle; [`Disk::sync`] is
/// `fdatasync`; [`Disk::commit`] writes `checkpoint.tmp`, fsyncs it,
/// renames it over `checkpoint.wal`, then truncates the log to a fresh
/// generation header and fsyncs the directory.
#[derive(Debug)]
pub struct DirDisk {
    dir: PathBuf,
    log: File,
}

fn read_stream(path: &Path) -> (u64, Vec<u8>) {
    let Ok(mut f) = File::open(path) else {
        return (0, Vec::new());
    };
    let mut bytes = Vec::new();
    if f.read_to_end(&mut bytes).is_err() || bytes.len() < 8 {
        return (0, Vec::new());
    }
    let seq = u64::from_le_bytes(bytes[..8].try_into().expect("8-byte header"));
    (seq, bytes.split_off(8))
}

impl DirDisk {
    /// Opens (creating if needed) the data directory `dir`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors creating the directory or the log
    /// file.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let log_path = dir.join(LOG_FILE);
        if !log_path.exists() {
            // Fresh log: its generation is whatever checkpoint exists
            // (none ⇒ generation 0).
            let (seq, _) = read_stream(&dir.join(CKPT_FILE));
            let mut f = File::create(&log_path)?;
            f.write_all(&seq.to_le_bytes())?;
            f.sync_all()?;
        }
        let log = OpenOptions::new().append(true).open(&log_path)?;
        Ok(DirDisk { dir, log })
    }

    fn sync_dir(&self) {
        if let Ok(d) = File::open(&self.dir) {
            let _ = d.sync_all();
        }
    }
}

impl Disk for DirDisk {
    fn load(&mut self) -> DiskImage {
        let (checkpoint_seq, checkpoint) = read_stream(&self.dir.join(CKPT_FILE));
        let (log_seq, log) = read_stream(&self.dir.join(LOG_FILE));
        DiskImage {
            checkpoint_seq,
            checkpoint,
            log_seq,
            log,
        }
    }

    fn append(&mut self, bytes: &[u8]) {
        // An append that fails mid-write leaves a torn tail — exactly
        // what CRC framing exists to detect. Nothing useful to do here
        // beyond trying; certification happens at sync.
        let _ = self.log.write_all(bytes);
    }

    fn sync(&mut self) {
        let _ = self.log.sync_data();
    }

    fn commit(&mut self, checkpoint: &[u8], seq: u64) {
        let tmp = self.dir.join("checkpoint.tmp");
        let write_tmp = || -> std::io::Result<()> {
            let mut f = File::create(&tmp)?;
            f.write_all(&seq.to_le_bytes())?;
            f.write_all(checkpoint)?;
            f.sync_all()
        };
        if write_tmp().is_err() {
            return; // Old checkpoint + full log remain valid.
        }
        if fs::rename(&tmp, self.dir.join(CKPT_FILE)).is_err() {
            return;
        }
        self.sync_dir();
        // New checkpoint is durable; now reset the log under the new
        // generation. A crash before this completes leaves a log of the
        // *old* generation, which recovery ignores (its records are all
        // reflected in the checkpoint image).
        let reset = || -> std::io::Result<File> {
            let mut f = File::create(self.dir.join(LOG_FILE))?;
            f.write_all(&seq.to_le_bytes())?;
            f.sync_all()?;
            OpenOptions::new().append(true).open(self.dir.join(LOG_FILE))
        };
        if let Ok(log) = reset() {
            self.log = log;
        }
        self.sync_dir();
    }
}

#[derive(Debug, Default)]
struct MemInner {
    checkpoint_seq: u64,
    checkpoint: Vec<u8>,
    log_seq: u64,
    log: Vec<u8>,
    /// Bytes of `log` guaranteed to survive a crash.
    synced: usize,
}

/// A deterministic in-memory "disk" whose contents survive a simulated
/// process restart (the handle is cloned and kept outside the crashing
/// actor, playing the role of the platter).
///
/// Unsynced bytes survive *until* [`crash`](MemDisk::crash) is called —
/// the crash operator is where the loss (and any torn tail) is decided,
/// which lets a seeded chaos plan choose the exact WAL offset.
#[derive(Clone, Debug, Default)]
pub struct MemDisk(Arc<Mutex<MemInner>>);

impl MemDisk {
    /// A fresh, empty disk.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Simulates the crash: all unsynced log bytes are lost except the
    /// first `torn` of them (a mid-record tear when `torn` lands inside
    /// a frame). Returns the surviving log length.
    pub fn crash(&self, torn: usize) -> usize {
        let mut inner = self.0.lock();
        let keep = (inner.synced + torn).min(inner.log.len());
        inner.log.truncate(keep);
        inner.synced = keep;
        keep
    }

    /// Bytes currently in the log (including unsynced ones).
    #[must_use]
    pub fn log_len(&self) -> usize {
        self.0.lock().log.len()
    }

    /// Bytes of the log guaranteed to survive a crash.
    #[must_use]
    pub fn synced_len(&self) -> usize {
        self.0.lock().synced
    }

    /// Test hook: forges a log generation mismatch, as a crash between
    /// checkpoint install and log reset would leave on a real disk.
    pub fn force_log_seq(&self, seq: u64) {
        self.0.lock().log_seq = seq;
    }
}

impl Disk for MemDisk {
    fn load(&mut self) -> DiskImage {
        let inner = self.0.lock();
        DiskImage {
            checkpoint_seq: inner.checkpoint_seq,
            checkpoint: inner.checkpoint.clone(),
            log_seq: inner.log_seq,
            log: inner.log.clone(),
        }
    }

    fn append(&mut self, bytes: &[u8]) {
        self.0.lock().log.extend_from_slice(bytes);
    }

    fn sync(&mut self) {
        let mut inner = self.0.lock();
        inner.synced = inner.log.len();
    }

    fn commit(&mut self, checkpoint: &[u8], seq: u64) {
        // Atomic in the simulation model: commit happens within one
        // scheduler event, and simulated crashes fall between events.
        let mut inner = self.0.lock();
        inner.checkpoint_seq = seq;
        inner.checkpoint = checkpoint.to_vec();
        inner.log_seq = seq;
        inner.log.clear();
        inner.synced = 0;
    }
}
