//! # dsm-durable — write-ahead logging and crash recovery
//!
//! The paper's protocol assumes processes either run forever or
//! fail-stop; `causal-dsm`'s failover layer (PR 4) honors exactly that —
//! a crashed owner's certified state is gone and a restarted process
//! rejoins cache-only. This crate supplies the stronger model:
//! **detectable recoverability**, where a restarted process replays
//! persisted state deterministically and rejoins as a full peer.
//!
//! The pieces, bottom to top:
//!
//! * [`crc32`] — the IEEE CRC-32 used to frame every log record, so a
//!   torn or corrupted tail is *detected* rather than replayed.
//! * [`WalRecord`] — the record vocabulary: certified writes,
//!   origin-clock page installs, owner-epoch advances, interest-set
//!   changes, and node watermarks (clock / write-sequence /
//!   incarnation frontiers). Records reuse the workspace's
//!   exact-`encoded_len` [`Wire`](simnet::codec::Wire) codec.
//! * [`Disk`] — the tiny storage abstraction a [`Store`] writes
//!   through: [`DirDisk`] (two files in a directory, `fsync` +
//!   atomic-rename checkpointing) for real processes, [`MemDisk`] (a
//!   shared in-memory "disk" with an explicit synced watermark and a
//!   seeded crash operator) for deterministic simulation.
//! * [`Store`] — the write-ahead log proper: CRC-framed appends, a
//!   tunable [`SyncPolicy`] (`None` / `Interval(n)` / `EveryOp`), and
//!   periodic checkpoint + log compaction. [`Store::open`] replays
//!   checkpoint + log tail into a [`Recovered`] record stream for the
//!   protocol layer (`causal-dsm`) to rebuild page images, origin
//!   clocks, and the owner-epoch table from.
//!
//! What this crate deliberately does **not** know: the causal-memory
//! state machine. Replaying a [`Recovered`] stream into protocol state
//! lives in `causal-dsm` (`CausalState::recover`), keeping the
//! dependency arrow pointing one way.
//!
//! ## Torn tails
//!
//! A record is only recovered if its length header, CRC, and payload
//! decode all agree; recovery stops at the first frame that fails any
//! of those checks. A write whose record was torn by the crash was, by
//! construction, never certified (the protocol syncs *before* replying)
//! — so stopping at the tear can never lose a certified write under
//! [`SyncPolicy::EveryOp`]. Weaker policies trade exactly this
//! guarantee for fewer `fsync`s; `docs/FAULTS.md` §5 spells out the
//! trade.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod crc;
mod disk;
mod record;
mod store;

pub use crc::crc32;
pub use disk::{DirDisk, Disk, DiskImage, MemDisk};
pub use record::{decode_stream, frame_records, WalRecord, MAX_RECORD_LEN};
pub use store::{DurableConfig, Recovered, Store, SyncPolicy};
