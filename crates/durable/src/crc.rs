//! CRC-32 (IEEE 802.3, reflected polynomial `0xEDB8_8320`), the framing
//! checksum for every log record.
//!
//! Implemented here because the build environment is offline; the table
//! is computed at compile time and the byte-at-a-time loop is plenty for
//! log bandwidth (the log is `fsync`-bound, not checksum-bound).

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// The IEEE CRC-32 of `data` (the same polynomial as zip, PNG, and
/// Ethernet — chosen so external tooling can validate a log file).
#[must_use]
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::crc32;

    #[test]
    fn known_vectors() {
        // The canonical check value for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn sensitive_to_single_bit_flips() {
        let base = crc32(b"causal memory");
        let mut data = b"causal memory".to_vec();
        for i in 0..data.len() * 8 {
            data[i / 8] ^= 1 << (i % 8);
            assert_ne!(crc32(&data), base, "flip at bit {i} went undetected");
            data[i / 8] ^= 1 << (i % 8);
        }
    }
}
