//! The write-ahead log proper: policy-driven syncs, checkpointing, and
//! recovery.

use std::marker::PhantomData;

use simnet::codec::Wire;

use crate::record::{decode_stream, frame_records};
use crate::{Disk, WalRecord};

/// When appended records become crash-durable.
///
/// The protocol layer replies to a write *after* its append returns, so
/// the policy is exactly the durability/latency dial:
///
/// * [`EveryOp`](SyncPolicy::EveryOp) — sync before returning from
///   every append: a certified write can never be lost. The recovery
///   oracle's batch runs under this policy.
/// * [`Interval`](SyncPolicy::Interval)`(n)` — sync every `n` appends:
///   a crash loses at most the last `n` operations, certified or not.
/// * [`None`](SyncPolicy::None) — never sync explicitly; only
///   checkpoints (and the OS, eventually) persist anything.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SyncPolicy {
    /// Never fsync on the append path.
    None,
    /// Fsync every `n` append batches (`Interval(1)` ≡ `EveryOp`).
    Interval(u32),
    /// Fsync before every append returns.
    EveryOp,
}

impl SyncPolicy {
    fn stride(self) -> Option<u32> {
        match self {
            SyncPolicy::None => None,
            SyncPolicy::Interval(n) => Some(n.max(1)),
            SyncPolicy::EveryOp => Some(1),
        }
    }
}

/// Tuning for a [`Store`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DurableConfig {
    /// When appends become crash-durable.
    pub sync: SyncPolicy,
    /// Checkpoint + compact after this many appended records.
    pub checkpoint_every: u64,
}

impl Default for DurableConfig {
    fn default() -> Self {
        DurableConfig {
            sync: SyncPolicy::EveryOp,
            checkpoint_every: 4096,
        }
    }
}

/// What [`Store::open`] recovered from disk.
#[derive(Clone, Debug)]
pub struct Recovered<V> {
    /// Checkpoint records followed by the valid log tail, in append
    /// order — replay them in order to rebuild protocol state.
    pub records: Vec<WalRecord<V>>,
    /// Highest incarnation seen in any [`WalRecord::Node`] record, or
    /// `None` on a virgin disk.
    pub incarnation: Option<u32>,
    /// Bytes of log tail that survived CRC validation (diagnostic).
    pub valid_log_bytes: usize,
}

impl<V> Recovered<V> {
    /// The incarnation the recovering process should run as: one past
    /// the highest persisted one (0 on a virgin disk, matching
    /// never-crashed peers).
    #[must_use]
    pub fn next_incarnation(&self) -> u32 {
        match self.incarnation {
            Some(i) => i.saturating_add(1),
            // Records with no Node watermark still prove a previous
            // life existed (it opened the store and wrote) — never hand
            // out incarnation 0 twice.
            None if self.records.is_empty() => 0,
            None => 1,
        }
    }

    /// Whether the disk held any state at all.
    #[must_use]
    pub fn is_virgin(&self) -> bool {
        self.records.is_empty() && self.incarnation.is_none()
    }
}

/// A CRC-framed write-ahead log over some [`Disk`].
///
/// `V` is the memory's value type. The store is single-writer: the
/// engine serializes appends per node (they happen under the node's
/// state lock's shadow, before the reply is sent).
pub struct Store<V> {
    disk: Box<dyn Disk>,
    cfg: DurableConfig,
    generation: u64,
    appends_unsynced: u32,
    records_since_ckpt: u64,
    _values: PhantomData<fn() -> V>,
}

impl<V> std::fmt::Debug for Store<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Store")
            .field("cfg", &self.cfg)
            .field("generation", &self.generation)
            .field("records_since_ckpt", &self.records_since_ckpt)
            .finish_non_exhaustive()
    }
}

impl<V: Wire> Store<V> {
    /// Opens the store, replaying checkpoint + valid log tail.
    ///
    /// A log whose generation header differs from the checkpoint's was
    /// reset-interrupted (crash between checkpoint install and log
    /// reset); its records are already reflected in the checkpoint
    /// image and are ignored.
    pub fn open(mut disk: Box<dyn Disk>, cfg: DurableConfig) -> (Self, Recovered<V>) {
        let image = disk.load();
        let (mut records, _) = decode_stream::<V>(&image.checkpoint);
        let valid_log_bytes = if image.log_seq == image.checkpoint_seq {
            let (tail, consumed) = decode_stream::<V>(&image.log);
            records.extend(tail);
            consumed
        } else {
            0
        };
        let incarnation = records
            .iter()
            .filter_map(|r| match r {
                WalRecord::Node { incarnation, .. } => Some(*incarnation),
                _ => None,
            })
            .max();
        let store = Store {
            disk,
            cfg,
            generation: image.checkpoint_seq,
            appends_unsynced: 0,
            records_since_ckpt: 0,
            _values: PhantomData,
        };
        (
            store,
            Recovered {
                records,
                incarnation,
                valid_log_bytes,
            },
        )
    }

    /// Appends one operation's records, syncing per policy. Returns
    /// once the records are as durable as the policy promises — the
    /// caller may then certify (reply to) the operation.
    pub fn append(&mut self, records: &[WalRecord<V>]) {
        if records.is_empty() {
            return;
        }
        self.disk.append(&frame_records(records));
        self.records_since_ckpt += records.len() as u64;
        self.appends_unsynced += 1;
        if let Some(stride) = self.cfg.sync.stride() {
            if self.appends_unsynced >= stride {
                self.sync();
            }
        }
    }

    /// Forces all appended records durable regardless of policy.
    pub fn sync(&mut self) {
        if self.appends_unsynced > 0 {
            self.disk.sync();
            self.appends_unsynced = 0;
        }
    }

    /// Whether enough records accumulated that the owner should take a
    /// checkpoint (cheap to call; the engine checks after each append).
    #[must_use]
    pub fn wants_checkpoint(&self) -> bool {
        self.records_since_ckpt >= self.cfg.checkpoint_every
    }

    /// Installs `image` (a full state snapshot as a record stream) as
    /// the new checkpoint and compacts the log to empty.
    pub fn checkpoint(&mut self, image: &[WalRecord<V>]) {
        self.generation += 1;
        self.disk.commit(&frame_records(image), self.generation);
        self.records_since_ckpt = 0;
        self.appends_unsynced = 0;
    }

    /// The store's tuning.
    #[must_use]
    pub fn config(&self) -> DurableConfig {
        self.cfg
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use memcore::{Location, NodeId, Word, WriteId};
    use vclock::VectorClock;

    use super::*;
    use crate::MemDisk;

    fn write(seq: u64) -> WalRecord<Word> {
        let mut vt = VectorClock::new(2);
        for _ in 0..=seq {
            vt.increment(0);
        }
        WalRecord::Write {
            loc: Location::new(seq as u32 % 4),
            value: Arc::new(Word::Int(seq as i64)),
            wid: WriteId::new(NodeId::new(0), seq),
            origin: vt.clone(),
            node_vt: vt,
            applied: true,
        }
    }

    fn node(incarnation: u32) -> WalRecord<Word> {
        WalRecord::Node {
            vt: VectorClock::new(2),
            write_seq: 0,
            incarnation,
        }
    }

    #[test]
    fn reopen_replays_everything_synced() {
        let disk = MemDisk::new();
        let (mut store, rec) =
            Store::<Word>::open(Box::new(disk.clone()), DurableConfig::default());
        assert!(rec.is_virgin());
        assert_eq!(rec.next_incarnation(), 0);
        let records: Vec<_> = (0..5).map(write).collect();
        for r in &records {
            store.append(std::slice::from_ref(r));
        }
        disk.crash(0); // EveryOp ⇒ nothing to lose.
        let (_, rec) = Store::<Word>::open(Box::new(disk), DurableConfig::default());
        assert_eq!(rec.records, records);
        assert!(rec.valid_log_bytes > 0);
    }

    #[test]
    fn sync_none_loses_unsynced_tail_on_crash() {
        let disk = MemDisk::new();
        let cfg = DurableConfig {
            sync: SyncPolicy::None,
            ..DurableConfig::default()
        };
        let (mut store, _) = Store::<Word>::open(Box::new(disk.clone()), cfg);
        for i in 0..5 {
            store.append(&[write(i)]);
        }
        disk.crash(0);
        let (_, rec) = Store::<Word>::open(Box::new(disk), cfg);
        assert!(rec.records.is_empty(), "nothing was ever synced");
    }

    #[test]
    fn interval_policy_bounds_the_loss() {
        let disk = MemDisk::new();
        let cfg = DurableConfig {
            sync: SyncPolicy::Interval(3),
            ..DurableConfig::default()
        };
        let (mut store, _) = Store::<Word>::open(Box::new(disk.clone()), cfg);
        for i in 0..8 {
            store.append(&[write(i)]);
        }
        // Appends 0..6 synced (two strides of 3); 6 and 7 are exposed.
        disk.crash(0);
        let (_, rec) = Store::<Word>::open(Box::new(disk), cfg);
        assert_eq!(rec.records.len(), 6);
        assert_eq!(rec.records, (0..6).map(write).collect::<Vec<_>>());
    }

    #[test]
    fn torn_tail_is_dropped_not_panicked() {
        let disk = MemDisk::new();
        let cfg = DurableConfig {
            sync: SyncPolicy::Interval(4),
            ..DurableConfig::default()
        };
        let (mut store, _) = Store::<Word>::open(Box::new(disk.clone()), cfg);
        for i in 0..6 {
            store.append(&[write(i)]);
        }
        // Crash keeps the 4 synced records plus 3 bytes of record 4's
        // frame — a mid-record tear.
        disk.crash(3);
        let (_, rec) = Store::<Word>::open(Box::new(disk), cfg);
        assert_eq!(rec.records, (0..4).map(write).collect::<Vec<_>>());
    }

    #[test]
    fn checkpoint_compacts_and_survives_reopen() {
        let disk = MemDisk::new();
        let (mut store, _) =
            Store::<Word>::open(Box::new(disk.clone()), DurableConfig::default());
        for i in 0..4 {
            store.append(&[write(i)]);
        }
        // The protocol would pass its full state image here; any record
        // stream works for the store.
        store.checkpoint(&[node(1), write(3)]);
        assert_eq!(disk.log_len(), 0, "log compacted");
        store.append(&[write(4)]);
        let (_, rec) = Store::<Word>::open(Box::new(disk), DurableConfig::default());
        assert_eq!(rec.records, vec![node(1), write(3), write(4)]);
        assert_eq!(rec.next_incarnation(), 2);
    }

    #[test]
    fn stale_generation_log_is_ignored() {
        let disk = MemDisk::new();
        let (mut store, _) =
            Store::<Word>::open(Box::new(disk.clone()), DurableConfig::default());
        store.checkpoint(&[node(0)]);
        store.append(&[write(9)]);
        // Forge the crash window between checkpoint install and log
        // reset: the log claims an older generation.
        disk.force_log_seq(0);
        let (_, rec) = Store::<Word>::open(Box::new(disk), DurableConfig::default());
        assert_eq!(rec.records, vec![node(0)], "stale log tail ignored");
    }

    #[test]
    fn wants_checkpoint_after_threshold() {
        let disk = MemDisk::new();
        let cfg = DurableConfig {
            checkpoint_every: 3,
            ..DurableConfig::default()
        };
        let (mut store, _) = Store::<Word>::open(Box::new(disk), cfg);
        store.append(&[write(0), write(1)]);
        assert!(!store.wants_checkpoint());
        store.append(&[write(2)]);
        assert!(store.wants_checkpoint());
        store.checkpoint(&[write(2)]);
        assert!(!store.wants_checkpoint());
    }

    #[test]
    fn dir_disk_roundtrip_and_compaction() {
        let dir = std::env::temp_dir().join(format!(
            "dsm-durable-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let disk = crate::DirDisk::open(&dir).expect("open dir disk");
            let (mut store, rec) =
                Store::<Word>::open(Box::new(disk), DurableConfig::default());
            assert!(rec.is_virgin());
            for i in 0..4 {
                store.append(&[write(i)]);
            }
            store.checkpoint(&[node(3), write(3)]);
            store.append(&[write(4)]);
        }
        {
            let disk = crate::DirDisk::open(&dir).expect("reopen dir disk");
            let (_, rec) = Store::<Word>::open(Box::new(disk), DurableConfig::default());
            assert_eq!(rec.records, vec![node(3), write(3), write(4)]);
            assert_eq!(rec.next_incarnation(), 4);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
