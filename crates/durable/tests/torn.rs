//! Torn-write handling, exhaustively: a log truncated at *every* byte
//! offset — and corrupted by a bit-flip at every byte offset — must
//! recover without panicking, recover exactly the frames that survived
//! intact, and never resurrect a record past the tear.
//!
//! The durability contract this pins down: under `every_op` sync a
//! write is certified only after its frame is fully synced, so a record
//! that recovery drops at the tear was by construction never certified
//! — "recovery never resurrects an uncertified write" is exactly
//! "recovery returns a prefix of the fully-contained frames".

use std::sync::Arc;

use dsm_durable::{decode_stream, frame_records, Disk, DurableConfig, MemDisk, Store, WalRecord};
use memcore::{Location, NodeId, PageId, Word, WriteId};
use vclock::VectorClock;

/// A mixed record stream touching every WAL record kind.
fn sample_records() -> Vec<WalRecord<Word>> {
    let mut records = Vec::new();
    let mut vt = VectorClock::new(3);
    records.push(WalRecord::Node {
        vt: vt.clone(),
        write_seq: 0,
        incarnation: 0,
    });
    for seq in 0..6u64 {
        vt.increment(0);
        records.push(WalRecord::Write {
            loc: Location::new((seq % 4) as u32),
            value: Arc::new(Word::Int(seq as i64 * 11)),
            wid: WriteId::new(NodeId::new(0), seq),
            origin: vt.clone(),
            node_vt: vt.clone(),
            applied: seq % 3 != 2,
        });
    }
    records.push(WalRecord::Epoch {
        page: PageId::new(1),
        epoch: memcore::OwnerEpoch::new(1),
    });
    records.push(WalRecord::Interest {
        page: PageId::new(0),
        node: NodeId::new(1),
        registered: true,
    });
    records.push(WalRecord::PageInstall {
        page: PageId::new(0),
        vt: vt.clone(),
        slots: vec![
            (Arc::new(Word::Int(7)), WriteId::new(NodeId::new(0), 3)),
            (Arc::new(Word::Int(0)), WriteId::initial(Location::new(1))),
        ],
        origins: vec![vt.clone(), VectorClock::new(3)],
        shadow: false,
    });
    records
}

/// Byte offsets at which each frame ends (frame boundaries), so the
/// expected recovery at any truncation point is computable exactly.
fn frame_boundaries(records: &[WalRecord<Word>]) -> Vec<usize> {
    let mut ends = Vec::with_capacity(records.len());
    let mut total = 0;
    for r in records {
        total += frame_records(std::slice::from_ref(r)).len();
        ends.push(total);
    }
    ends
}

#[test]
fn truncation_at_every_offset_recovers_exactly_the_intact_prefix() {
    let records = sample_records();
    let bytes = frame_records(&records);
    let ends = frame_boundaries(&records);
    assert_eq!(*ends.last().unwrap(), bytes.len(), "framing is per-record");
    for cut in 0..=bytes.len() {
        let (got, consumed) = decode_stream::<Word>(&bytes[..cut]);
        // Exactly the frames fully contained before the cut — never a
        // record whose frame the tear bisected, never one past it.
        let intact = ends.iter().filter(|&&e| e <= cut).count();
        assert_eq!(got, records[..intact], "cut at {cut}");
        assert_eq!(consumed, ends[..intact].last().copied().unwrap_or(0));
    }
}

#[test]
fn truncation_at_every_offset_reopens_through_the_store() {
    let records = sample_records();
    let bytes = frame_records(&records);
    let ends = frame_boundaries(&records);
    for cut in 0..=bytes.len() {
        // Prime a disk with the torn log exactly as a crash would leave
        // it, and run the full open path.
        let mut disk = MemDisk::new();
        Disk::append(&mut disk, &bytes[..cut]);
        Disk::sync(&mut disk);
        let (_, rec) = Store::<Word>::open(Box::new(disk), DurableConfig::default());
        let intact = ends.iter().filter(|&&e| e <= cut).count();
        assert_eq!(rec.records, records[..intact], "cut at {cut}");
        // The incarnation watermark survives iff its Node frame did.
        assert_eq!(rec.incarnation, (intact >= 1).then_some(0));
    }
}

#[test]
fn bit_flip_at_every_offset_never_panics_and_never_invents_records() {
    let records = sample_records();
    let bytes = frame_records(&records);
    for pos in 0..bytes.len() {
        let mut corrupt = bytes.clone();
        corrupt[pos] ^= 0x10;
        let (got, consumed) = decode_stream::<Word>(&corrupt);
        assert!(consumed <= corrupt.len());
        // CRC framing turns any single-bit corruption into a clean stop:
        // everything recovered is an untouched prefix of what was
        // appended — corrupted or fabricated records never replay.
        assert!(got.len() <= records.len(), "flip at {pos}");
        assert_eq!(got[..], records[..got.len()], "flip at {pos}");
    }
}
